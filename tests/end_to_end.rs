//! Cross-crate integration tests: the full Flock lifecycle of Figure 1 —
//! data → training → deployment → in-DB scoring → policies → provenance.

use flock::core::{FlockDb, Lineage, XOptConfig};
use flock::corpus::tabular::TabularDataset;
use flock::ml::{ColumnPipeline, LinearModel, Model, Pipeline};
use flock::policy::{DecisionContext, Outcome, Policy, PolicyAction, PolicyEngine};
use flock::provenance::{
    backward_lineage, capture_log, capture_models, dependent_models, NodeKind, ProvCatalog,
};
use flock::pyprov::{analyze, ingest, KnowledgeBase};
use flock::sql::Value;

/// The canonical lifecycle: gather data, train in-engine, score in SQL,
/// gate through policies, and audit the provenance end to end.
#[test]
fn full_lifecycle_from_data_to_governed_decision() {
    let db = FlockDb::new();
    db.execute(
        "CREATE TABLE txns (amount DOUBLE, merchant_risk DOUBLE, hour DOUBLE, fraud INT)",
    )
    .unwrap();
    // deterministic, separable data
    let mut rows = Vec::new();
    for i in 0..200 {
        let amount = 10.0 + (i % 50) as f64 * 20.0;
        let risk = (i % 10) as f64 / 10.0;
        let hour = (i % 24) as f64;
        let fraud = if risk > 0.6 && amount > 500.0 { 1 } else { 0 };
        rows.push(format!("({amount}, {risk}, {hour}, {fraud})"));
    }
    db.execute(&format!("INSERT INTO txns VALUES {}", rows.join(", ")))
        .unwrap();

    // 1. train + deploy with lineage
    db.execute("CREATE MODEL fraud_detector KIND gbt FROM txns TARGET fraud").unwrap();
    let md = db.model_metadata("fraud_detector").unwrap();
    assert_eq!(md.lineage.training_table.as_deref(), Some("txns"));
    assert!(md.lineage.metrics["accuracy"] > 0.9);

    // 2. score in SQL, composing with filters and aggregates
    let hot = db
        .query(
            "SELECT COUNT(*) FROM txns \
             WHERE PREDICT(fraud_detector, amount, merchant_risk, hour) > 0.5",
        )
        .unwrap();
    let flagged = hot.column(0).get(0).as_i64().unwrap();
    assert!(flagged > 0, "the model should flag some transactions");

    // 3. policies gate the model's output
    let mut engine = PolicyEngine::new();
    engine.add(
        Policy::new(
            "manual-review-band",
            "p_fraud BETWEEN 0.4 AND 0.8",
            PolicyAction::Escalate { to: "analyst".into() },
        )
        .unwrap(),
    );
    let scored = db
        .query(
            "SELECT amount, PREDICT(fraud_detector, amount, merchant_risk, hour) AS p \
             FROM txns LIMIT 50",
        )
        .unwrap();
    let mut escalations = 0;
    for r in 0..scored.num_rows() {
        let ctx = DecisionContext::new()
            .with_number("p_fraud", scored.column(1).get(r).as_f64().unwrap());
        if matches!(engine.decide(ctx).unwrap().outcome, Outcome::Escalated { .. }) {
            escalations += 1;
        }
    }
    assert_eq!(engine.history().len(), 50);
    let _ = escalations; // band may be empty for a well-separated model

    // 4. provenance: replay the query log + model catalog into the graph
    let mut prov = ProvCatalog::new();
    capture_log(&mut prov, &db.database().query_log());
    capture_models(&mut prov, &db.database().catalog(), "model");
    let g = prov.graph();
    let mv = g
        .find(NodeKind::ModelVersion, "fraud_detector", Some(1))
        .expect("model version captured");
    let lineage = backward_lineage(g, mv);
    let names: Vec<&str> = lineage.iter().map(|i| g.node(*i).name.as_str()).collect();
    assert!(names.contains(&"txns"), "lineage reaches the training table: {names:?}");
}

#[test]
fn tpch_populated_queries_run_and_are_captured() {
    let db = flock::sql::Database::new();
    flock::corpus::tpch::populate(&db, 100, 7).unwrap();

    // a few executable TPC-H-flavored queries against the populated subset
    let q10ish = db
        .query(
            "SELECT c.c_custkey, c.c_name, COUNT(*) AS orders FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey GROUP BY c.c_custkey, c.c_name \
             ORDER BY orders DESC LIMIT 5",
        )
        .unwrap();
    assert_eq!(q10ish.num_rows(), 5);

    let seg = db
        .query(
            "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment \
             ORDER BY c_mktsegment",
        )
        .unwrap();
    assert!(seg.num_rows() >= 3);

    // lazy provenance over everything the engine logged
    let mut prov = ProvCatalog::new();
    let reports = capture_log(&mut prov, &db.query_log());
    assert!(reports.len() >= 10);
    let g = prov.graph();
    assert!(g.find(NodeKind::Table, "customer", None).is_some());
    assert!(g
        .find(NodeKind::Column, "customer.c_mktsegment", None)
        .is_some());
    // bulk loads minted table versions
    assert!(g.nodes_of_kind(NodeKind::TableVersion).len() >= 4);
}

#[test]
fn cross_optimizer_is_semantics_preserving_on_generated_data() {
    let data = TabularDataset::generate(4_000, 11);
    let queries = [
        "SELECT AVG(PREDICT(good_model, age, income, debt, tenure, noise1, noise2, city)) FROM customers",
        "SELECT COUNT(*) FROM customers WHERE PREDICT(good_model, age, income, debt, tenure, noise1, noise2, city) > 0.5",
        "SELECT city, MAX(PREDICT(good_model, age, income, debt, tenure, noise1, noise2, city)) \
         FROM customers GROUP BY city ORDER BY city",
    ];
    let build = |cfg: XOptConfig| {
        let db = FlockDb::with_config(cfg);
        data.load_into(db.database()).unwrap();
        let p = data.train_pipeline(10, 3);
        db.session("admin").deploy_model("good_model", &p, Lineage::default()).unwrap();
        db
    };
    let on = build(XOptConfig::default());
    let off = build(XOptConfig::disabled());
    for q in queries {
        let a = on.query(q).unwrap();
        let b = off.query(q).unwrap();
        assert_eq!(a.num_rows(), b.num_rows(), "{q}");
        for r in 0..a.num_rows() {
            for c in 0..a.num_columns() {
                let (x, y) = (a.column(c).get(r), b.column(c).get(r));
                match (x.as_f64(), y.as_f64()) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{q}: {x} vs {y}"),
                    _ => assert_eq!(x, y, "{q}"),
                }
            }
        }
    }
}

#[test]
fn python_and_sql_provenance_join_in_one_catalog() {
    let mut prov = ProvCatalog::new();
    flock::provenance::capture_sql(
        &mut prov,
        "INSERT INTO features SELECT user_id, spend FROM events WHERE valid = 1",
        "etl",
    )
    .unwrap();
    let analysis = analyze(
        "import pandas as pd\nfrom sklearn.linear_model import LogisticRegression\n\
         df = pd.read_sql('SELECT user_id, spend FROM features', conn)\n\
         m = LogisticRegression(C=0.5)\nm.fit(df, df['label'])\n",
        &KnowledgeBase::standard(),
    );
    assert_eq!(analysis.models.len(), 1);
    ingest(&mut prov, "churn.py", &analysis);

    let g = prov.graph();
    let model = g
        .nodes_of_kind(NodeKind::Model)
        .into_iter()
        .find(|n| n.name.contains("churn.py"))
        .unwrap();
    let lineage = backward_lineage(g, model.id);
    let names: Vec<&str> = lineage.iter().map(|i| g.node(*i).name.as_str()).collect();
    assert!(names.contains(&"features"));
    assert!(names.contains(&"events"), "cross-system lineage: {names:?}");

    // impact: events feeds the model
    let events = g.find(NodeKind::Table, "events", None).unwrap();
    assert_eq!(dependent_models(g, events).len(), 1);
}

#[test]
fn concurrent_sessions_score_while_models_update() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE pts (x DOUBLE)").unwrap();
    db.execute("INSERT INTO pts VALUES (1.0), (2.0), (3.0)").unwrap();
    let v1 = Pipeline::new(
        vec![ColumnPipeline::numeric("x")],
        Model::Linear(LinearModel::new(vec![1.0], 0.0)),
        "y",
    );
    db.session("admin").deploy_model("m", &v1, Lineage::default()).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let db = db.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    if i == 0 {
                        // writer: bump model version
                        let v2 = Pipeline::new(
                            vec![ColumnPipeline::numeric("x")],
                            Model::Linear(LinearModel::new(vec![2.0], 0.0)),
                            "y",
                        );
                        let _ = db.session("admin").update_model("m", &v2, Lineage::default());
                    } else {
                        // readers: scores are always from a consistent model
                        let b = db
                            .query("SELECT PREDICT(m, x) FROM pts ORDER BY x")
                            .unwrap();
                        let first = b.column(0).get(0).as_f64().unwrap();
                        let last = b.column(0).get(2).as_f64().unwrap();
                        assert!((last - 3.0 * first).abs() < 1e-9, "torn model read");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let obj_version = db
        .database()
        .catalog()
        .extension("model", "m")
        .unwrap()
        .current()
        .version;
    assert!(obj_version > 1, "writer committed updates");
}

#[test]
fn figure_tables_are_regenerable_at_reduced_scale() {
    // Fig 2
    let f2 = flock_bench_smoke::fig2();
    assert!(f2 > 0.0);
    // coverage tables come from the pyprov harness
    let kaggle = flock::pyprov::evaluate(
        &flock::corpus::kaggle_corpus(3)
            .iter()
            .map(|s| {
                (
                    analyze(&s.source, &KnowledgeBase::standard()),
                    flock::pyprov::ScriptGroundTruth {
                        models: s.truth.models,
                        training_datasets: s.truth.training_datasets.clone(),
                    },
                )
            })
            .collect::<Vec<_>>(),
    );
    assert!(kaggle.pct_models() >= 90.0);
    assert!(kaggle.pct_datasets() < kaggle.pct_models());
}

/// Minimal stand-ins so this test does not depend on the bench crate
/// (which is a workspace member but not a library dependency of `flock`).
mod flock_bench_smoke {
    pub fn fig2() -> f64 {
        use flock::corpus::notebooks::{NotebookCorpus, SnapshotParams};
        let c = NotebookCorpus::generate(SnapshotParams::year_2019(2_000));
        c.coverage(10)
    }
}

#[test]
fn audit_spans_data_models_and_denials() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let p = Pipeline::new(
        vec![ColumnPipeline::numeric("x")],
        Model::Linear(LinearModel::new(vec![1.0], 0.0)),
        "y",
    );
    db.session("admin").deploy_model("m", &p, Lineage::default()).unwrap();
    db.execute("CREATE USER eve").unwrap();
    let mut eve = db.session("eve");
    assert!(eve.query("SELECT PREDICT(m, x) FROM t").is_err());

    let audit = db.database().audit_log();
    let actions: Vec<&str> = audit.iter().map(|a| a.action.as_str()).collect();
    assert!(actions.contains(&"CREATE TABLE"));
    assert!(actions.contains(&"INSERT"));
    assert!(actions.contains(&"CREATE MODEL"));
    assert!(actions.contains(&"ACCESS DENIED"));
}

#[test]
fn model_values_survive_catalog_roundtrip_and_time_travel() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE obs (x DOUBLE, y INT)").unwrap();
    db.execute("INSERT INTO obs VALUES (1.0, 0), (10.0, 1), (2.0, 0), (9.0, 1)").unwrap();
    db.execute("CREATE MODEL clf KIND logistic FROM obs TARGET y").unwrap();

    let before = db.query("SELECT PREDICT(clf, x) FROM obs ORDER BY x").unwrap();

    // data changes after training; the model (pinned to v2) is unaffected
    db.execute("INSERT INTO obs VALUES (100.0, 1)").unwrap();
    let md = db.model_metadata("clf").unwrap();
    assert_eq!(md.lineage.training_table_version, Some(2));
    let again = db.query("SELECT PREDICT(clf, x) FROM obs VERSION 2 ORDER BY x").unwrap();
    for r in 0..before.num_rows() {
        assert_eq!(before.column(0).get(r), again.column(0).get(r));
    }
    assert_eq!(
        db.query("SELECT COUNT(*) FROM obs").unwrap().column(0).get(0),
        Value::Int(5)
    );
}

#[test]
fn schema_change_breaks_models_exactly_as_impact_analysis_predicts() {
    use flock::provenance::{capture_log, capture_models, NodeKind};
    let db = FlockDb::new();
    db.execute("CREATE TABLE visits (age DOUBLE, cost DOUBLE, readmit INT)").unwrap();
    db.execute(
        "INSERT INTO visits VALUES (70.0, 900.0, 1), (30.0, 100.0, 0), \
         (65.0, 800.0, 1), (25.0, 50.0, 0)",
    )
    .unwrap();
    db.execute("CREATE MODEL readmit_risk KIND logistic FROM visits TARGET readmit")
        .unwrap();
    db.query("SELECT PREDICT(readmit_risk, age, cost) FROM visits").unwrap();

    // 1. provenance says: the 'cost' column feeds this model
    let mut prov = ProvCatalog::new();
    capture_log(&mut prov, &db.database().query_log());
    capture_models(&mut prov, &db.database().catalog(), "model");
    let g = prov.graph();
    let cost = g.find(NodeKind::Column, "visits.cost", None).unwrap();
    let impacted = dependent_models(g, cost);
    assert!(
        !impacted.is_empty(),
        "impact analysis should flag the model before the change"
    );

    // 2. the schema change happens anyway
    db.execute("ALTER TABLE visits DROP COLUMN cost").unwrap();

    // 3. the model breaks exactly where predicted — cleanly, not silently
    let err = db.query("SELECT PREDICT(readmit_risk, age, cost) FROM visits");
    assert!(err.is_err());

    // 4. and the recovery path works: retrain on the new schema
    db.execute("DROP MODEL readmit_risk").unwrap();
    db.execute("CREATE MODEL readmit_risk KIND logistic FROM visits TARGET readmit")
        .unwrap();
    let b = db
        .query("SELECT PREDICT(readmit_risk, age) FROM visits")
        .unwrap();
    assert_eq!(b.num_rows(), 4);
    let md = db.model_metadata("readmit_risk").unwrap();
    assert_eq!(md.inputs.len(), 1, "retrained on the surviving column only");
}
