//! # Flock
//!
//! Umbrella crate for the Flock reference architecture — a Rust
//! reproduction of *"Cloudy with high chance of DBMS: A 10-year prediction
//! for Enterprise-Grade ML"* (CIDR 2020).
//!
//! Flock's thesis: models are **software derived from data** — so they must
//! be stored, scored, versioned, secured and audited inside managed data
//! platforms, with provenance collected across every phase of the ML
//! lifecycle. This crate re-exports the subsystem crates:
//!
//! * [`sql`] — the columnar DBMS substrate (parser, optimizer, executor,
//!   versioned tables, transactions, access control).
//! * [`ml`] — the ML substrate (featurizers, models, pipelines, and the
//!   standalone scoring runtime used as the paper's "ONNX Runtime"
//!   baseline).
//! * [`core`] — the paper's contribution: models as first-class catalog
//!   objects, `PREDICT` as a relational operator, and the SQL×ML
//!   cross-optimizer.
//! * [`provenance`] — the Atlas-like catalog and SQL provenance capture.
//! * [`pyprov`] — static-analysis provenance for Python-style scripts.
//! * [`policy`] — the business-rule policy module that closes the loop
//!   from model prediction to application decision.
//! * [`corpus`] — workload generators used by the paper's experiments.

pub use flock_core as core;
pub use flock_corpus as corpus;
pub use flock_ml as ml;
pub use flock_policy as policy;
pub use flock_provenance as provenance;
pub use flock_pyprov as pyprov;
pub use flock_sql as sql;
