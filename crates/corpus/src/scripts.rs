//! Python-script corpus generator (for the Python-provenance coverage
//! table).
//!
//! The paper evaluated its Python provenance module on 49 Kaggle scripts
//! (95% of models, 61% of training datasets identified) and 37 internal
//! Microsoft scripts (100% / 100%). The controlling variable is corpus
//! difficulty: public notebooks use exotic libraries and indirect data
//! loading that fall outside the knowledge base, while enterprise scripts
//! follow standard patterns. The generator reproduces those difficulty
//! mixes, with exact ground truth for scoring.

use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};

/// Ground truth for one generated script.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    pub models: usize,
    /// Origin descriptions (`file:train.csv`, `sql:orders,customers`).
    pub training_datasets: Vec<String>,
}

/// A generated script plus its truth.
#[derive(Debug, Clone)]
pub struct GeneratedScript {
    pub name: String,
    pub source: String,
    pub truth: GroundTruth,
}

const SKLEARN_MODELS: [(&str, &str, &str); 6] = [
    ("sklearn.linear_model", "LogisticRegression", "C=1.0"),
    ("sklearn.ensemble", "RandomForestClassifier", "n_estimators=100"),
    ("sklearn.ensemble", "GradientBoostingClassifier", "max_depth=3"),
    ("sklearn.svm", "SVC", "C=2.0"),
    ("sklearn.tree", "DecisionTreeClassifier", "max_depth=5"),
    ("sklearn.neighbors", "KNeighborsClassifier", "n_neighbors=5"),
];

const EXOTIC_MODELS: [(&str, &str); 3] = [
    ("fancynets", "HyperNet"),
    ("autodeep", "AutoDeepClassifier"),
    ("proprietaryml", "BoostedMixture"),
];

const CSV_FILES: [&str; 6] = [
    "train.csv", "customers.csv", "transactions.csv", "claims.csv", "sensors.csv",
    "housing.csv",
];

const SQL_SOURCES: [(&str, &str); 3] = [
    ("SELECT age, income, label FROM customers", "customers"),
    (
        "SELECT p.age, v.cost FROM patients p JOIN visits v ON p.id = v.pid",
        "patients,visits",
    ),
    ("SELECT amount, risk FROM loans WHERE approved = 1", "loans"),
];

/// How one script loads and models its data.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ScriptShape {
    /// Standard sklearn + read_csv — fully analyzable.
    StandardCsv,
    /// Standard sklearn + read_sql — fully analyzable, SQL-linked.
    StandardSql,
    /// Known model, but data loaded through a helper function — the
    /// model is found, the dataset origin is not.
    IndirectData,
    /// Exotic model library outside the knowledge base — model missed.
    ExoticModel,
}

fn render(shape: ScriptShape, idx: usize, rng: &mut StdRng) -> GeneratedScript {
    let name = format!("script_{idx:03}.py");
    match shape {
        ScriptShape::StandardCsv => {
            let (module, class, params) = SKLEARN_MODELS[rng.gen_range(0..SKLEARN_MODELS.len())];
            let file = CSV_FILES[rng.gen_range(0..CSV_FILES.len())];
            let source = format!(
                "import pandas as pd\nfrom {module} import {class}\n\
                 from sklearn.model_selection import train_test_split\n\
                 from sklearn.metrics import accuracy_score\n\n\
                 df = pd.read_csv('{file}')\n\
                 X = df[['f1', 'f2', 'f3']]\n\
                 y = df['label']\n\
                 X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25)\n\
                 model = {class}({params})\n\
                 model.fit(X_train, y_train)\n\
                 pred = model.predict(X_test)\n\
                 acc = accuracy_score(y_test, pred)\n"
            );
            GeneratedScript {
                name,
                source,
                truth: GroundTruth {
                    models: 1,
                    training_datasets: vec![format!("file:{file}")],
                },
            }
        }
        ScriptShape::StandardSql => {
            let (module, class, params) = SKLEARN_MODELS[rng.gen_range(0..SKLEARN_MODELS.len())];
            let (sql, tables) = SQL_SOURCES[rng.gen_range(0..SQL_SOURCES.len())];
            let source = format!(
                "import pandas as pd\nfrom {module} import {class}\n\n\
                 conn = get_connection()\n\
                 df = pd.read_sql('{sql}', conn)\n\
                 features = df.drop('label')\n\
                 model = {class}({params})\n\
                 model.fit(features, df['label'])\n"
            );
            GeneratedScript {
                name,
                source,
                truth: GroundTruth {
                    models: 1,
                    training_datasets: vec![format!("sql:{tables}")],
                },
            }
        }
        ScriptShape::IndirectData => {
            let (module, class, params) = SKLEARN_MODELS[rng.gen_range(0..SKLEARN_MODELS.len())];
            let file = CSV_FILES[rng.gen_range(0..CSV_FILES.len())];
            // the data goes through a custom loader the analyzer cannot see
            let source = format!(
                "import pandas as pd\nfrom {module} import {class}\n\
                 from mytools.data import load_dataset\n\n\
                 df = load_dataset('{file}', cache=True)\n\
                 X = df[['f1', 'f2']]\n\
                 model = {class}({params})\n\
                 model.fit(X, df['y'])\n"
            );
            GeneratedScript {
                name,
                source,
                truth: GroundTruth {
                    models: 1,
                    training_datasets: vec![format!("file:{file}")],
                },
            }
        }
        ScriptShape::ExoticModel => {
            let (module, class) = EXOTIC_MODELS[rng.gen_range(0..EXOTIC_MODELS.len())];
            let file = CSV_FILES[rng.gen_range(0..CSV_FILES.len())];
            let source = format!(
                "import pandas as pd\nimport {module}\n\n\
                 df = pd.read_csv('{file}')\n\
                 model = {module}.{class}(depth=4)\n\
                 model.fit(df, df['target'])\n"
            );
            GeneratedScript {
                name,
                source,
                truth: GroundTruth {
                    models: 1,
                    training_datasets: vec![format!("file:{file}")],
                },
            }
        }
    }
}

/// The "Kaggle" corpus: 49 scripts with the public-notebook difficulty
/// mix — a couple of exotic model libraries (model coverage ~95%) and a
/// large share of indirect data loading (dataset coverage ~61%).
pub fn kaggle_corpus(seed: u64) -> Vec<GeneratedScript> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shapes = Vec::with_capacity(49);
    shapes.extend(std::iter::repeat_n(ScriptShape::ExoticModel, 2));
    shapes.extend(std::iter::repeat_n(ScriptShape::IndirectData, 17));
    shapes.extend(std::iter::repeat_n(ScriptShape::StandardSql, 8));
    shapes.extend(std::iter::repeat_n(ScriptShape::StandardCsv, 22));
    assert_eq!(shapes.len(), 49);
    // deterministic shuffle
    for i in (1..shapes.len()).rev() {
        let j = rng.gen_range(0..=i);
        shapes.swap(i, j);
    }
    shapes
        .into_iter()
        .enumerate()
        .map(|(i, s)| render(s, i, &mut rng))
        .collect()
}

/// The "enterprise" corpus: 37 scripts following standard production
/// patterns — everything analyzable (100% / 100%).
pub fn enterprise_corpus(seed: u64) -> Vec<GeneratedScript> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..37)
        .map(|i| {
            let shape = if i % 3 == 0 {
                ScriptShape::StandardSql
            } else {
                ScriptShape::StandardCsv
            };
            render(shape, i, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_have_paper_sizes() {
        assert_eq!(kaggle_corpus(1).len(), 49);
        assert_eq!(enterprise_corpus(1).len(), 37);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = kaggle_corpus(5);
        let b = kaggle_corpus(5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].source, b[0].source);
    }

    #[test]
    fn every_script_has_one_model_truth() {
        for s in kaggle_corpus(2).iter().chain(enterprise_corpus(2).iter()) {
            assert_eq!(s.truth.models, 1, "{}", s.name);
            assert_eq!(s.truth.training_datasets.len(), 1);
        }
    }

    #[test]
    fn kaggle_mix_contains_all_difficulty_shapes() {
        let corpus = kaggle_corpus(3);
        let exotic = corpus
            .iter()
            .filter(|s| s.source.contains("fancynets") || s.source.contains("autodeep")
                || s.source.contains("proprietaryml"))
            .count();
        let indirect = corpus
            .iter()
            .filter(|s| s.source.contains("load_dataset"))
            .count();
        assert_eq!(exotic, 2);
        assert_eq!(indirect, 17);
    }

    #[test]
    fn enterprise_scripts_are_all_standard() {
        for s in enterprise_corpus(4) {
            assert!(
                s.source.contains("read_csv") || s.source.contains("read_sql"),
                "{}",
                s.name
            );
            assert!(!s.source.contains("load_dataset"));
        }
    }
}
