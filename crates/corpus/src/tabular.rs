//! Tabular dataset + model generator for the inference experiment
//! (Figure 4).
//!
//! Produces a realistic scoring scenario: a customer-style table with
//! numeric and categorical columns (some irrelevant — giving the feature
//! pruning rule something to prune), a trained classification pipeline,
//! and loaders into both the DBMS and the standalone runtime's frame
//! format.

use flock_ml::{
    train, ColumnPipeline, Frame, FrameCol, Matrix, Model, NumericStep, Pipeline,
};
use flock_sql::{ColumnVector, Database, DataType, RecordBatch, Schema, Value};
use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};
use std::sync::Arc;

const CITIES: [&str; 6] = ["nyc", "sf", "chi", "aus", "sea", "mia"];

/// One generated dataset, in both representations.
pub struct TabularDataset {
    /// Column-major numeric data.
    pub age: Vec<f64>,
    pub income: Vec<f64>,
    pub debt: Vec<f64>,
    pub tenure: Vec<f64>,
    /// Irrelevant numeric noise columns (pruning targets).
    pub noise1: Vec<f64>,
    pub noise2: Vec<f64>,
    pub city: Vec<String>,
    /// Free-text remarks (expensive to featurize; signal-free). The
    /// feature-pruning ablation uses this column.
    pub comment: Vec<String>,
    /// Binary label derived from a noisy ground-truth function.
    pub label: Vec<f64>,
}

const WORDS: [&str; 12] = [
    "called", "about", "billing", "support", "upgrade", "renewal", "issue", "resolved",
    "escalated", "pending", "callback", "satisfied",
];

impl TabularDataset {
    /// Generate `n` rows.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = TabularDataset {
            age: Vec::with_capacity(n),
            income: Vec::with_capacity(n),
            debt: Vec::with_capacity(n),
            tenure: Vec::with_capacity(n),
            noise1: Vec::with_capacity(n),
            noise2: Vec::with_capacity(n),
            city: Vec::with_capacity(n),
            comment: Vec::with_capacity(n),
            label: Vec::with_capacity(n),
        };
        for _ in 0..n {
            let age = rng.gen_range(18.0..80.0f64);
            let income = rng.gen_range(10.0..250.0f64);
            let debt = rng.gen_range(0.0..120.0f64);
            let tenure = rng.gen_range(0.0..30.0f64);
            let city = CITIES[rng.gen_range(0..CITIES.len())];
            let score = 0.03 * income - 0.05 * debt + 0.02 * tenure
                + if city == "nyc" { 0.5 } else { 0.0 }
                + rng.gen_range(-0.8..0.8);
            d.age.push(age);
            d.income.push(income);
            d.debt.push(debt);
            d.tenure.push(tenure);
            d.noise1.push(rng.gen_range(-1.0..1.0));
            d.noise2.push(rng.gen_range(0.0..100.0));
            d.city.push(city.to_string());
            let n_words = rng.gen_range(4..10);
            let comment: Vec<&str> = (0..n_words)
                .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
                .collect();
            d.comment.push(comment.join(" "));
            d.label.push(if score > 0.5 { 1.0 } else { 0.0 });
        }
        d
    }

    pub fn len(&self) -> usize {
        self.age.len()
    }

    pub fn is_empty(&self) -> bool {
        self.age.is_empty()
    }

    /// The feature frame (inputs only) for standalone runtimes.
    pub fn frame(&self) -> Frame<'_> {
        Frame::new()
            .with("age", FrameCol::F64(self.age.clone()))
            .unwrap()
            .with("income", FrameCol::F64(self.income.clone()))
            .unwrap()
            .with("debt", FrameCol::F64(self.debt.clone()))
            .unwrap()
            .with("tenure", FrameCol::F64(self.tenure.clone()))
            .unwrap()
            .with("noise1", FrameCol::F64(self.noise1.clone()))
            .unwrap()
            .with("noise2", FrameCol::F64(self.noise2.clone()))
            .unwrap()
            .with("city", FrameCol::Str(self.city.clone()))
            .unwrap()
            .with("comment", FrameCol::Str(self.comment.clone()))
            .unwrap()
    }

    /// DDL + bulk load into the database. Table: `customers`.
    pub fn load_into(&self, db: &Database) -> flock_sql::Result<()> {
        db.execute(
            "CREATE TABLE customers (age DOUBLE, income DOUBLE, debt DOUBLE, \
             tenure DOUBLE, noise1 DOUBLE, noise2 DOUBLE, city VARCHAR, \
             comment VARCHAR, label INT)",
        )?;
        let schema = Arc::new(Schema::from_pairs(&[
            ("age", DataType::Float),
            ("income", DataType::Float),
            ("debt", DataType::Float),
            ("tenure", DataType::Float),
            ("noise1", DataType::Float),
            ("noise2", DataType::Float),
            ("city", DataType::Text),
            ("comment", DataType::Text),
            ("label", DataType::Int),
        ]));
        let city_vals: Vec<Value> = self
            .city
            .iter()
            .map(|c| Value::Text(c.clone()))
            .collect();
        let comment_vals: Vec<Value> = self
            .comment
            .iter()
            .map(|c| Value::Text(c.clone()))
            .collect();
        let columns = vec![
            ColumnVector::from_f64(self.age.iter().copied()),
            ColumnVector::from_f64(self.income.iter().copied()),
            ColumnVector::from_f64(self.debt.iter().copied()),
            ColumnVector::from_f64(self.tenure.iter().copied()),
            ColumnVector::from_f64(self.noise1.iter().copied()),
            ColumnVector::from_f64(self.noise2.iter().copied()),
            ColumnVector::from_values(DataType::Text, &city_vals)?,
            ColumnVector::from_values(DataType::Text, &comment_vals)?,
            ColumnVector::from_i64(self.label.iter().map(|l| *l as i64)),
        ];
        let batch = RecordBatch::new(schema, columns)?;
        db.session("admin").append_batch("customers", batch)?;
        Ok(())
    }

    /// Train the Figure-4 pipeline on this dataset: standardized numeric
    /// features + one-hot city into a GBT classifier. `noise1`/`noise2`
    /// are *declared* as inputs but carry no signal; with shallow trees
    /// they end up unused — the sparsity the pruning rule exploits.
    pub fn train_pipeline(&self, trees: usize, max_depth: usize) -> Pipeline {
        let columns = vec![
            numeric_col("age", &self.age),
            numeric_col("income", &self.income),
            numeric_col("debt", &self.debt),
            numeric_col("tenure", &self.tenure),
            ColumnPipeline::numeric("noise1"),
            ColumnPipeline::numeric("noise2"),
            ColumnPipeline::one_hot("city", CITIES.iter().map(|c| c.to_string()).collect()),
        ];
        let draft = Pipeline::new(
            columns.clone(),
            Model::Linear(flock_ml::LinearModel::new(vec![], 0.0)),
            "p_good",
        );
        let x = draft.featurize(&self.frame()).expect("featurize");
        let model = train_gbt_restricted(&x, &self.label, trees, max_depth);
        Pipeline::new(columns, model, "p_good")
    }

    /// A logistic pipeline over the numeric columns only (used by the
    /// predicate push-up experiments).
    pub fn train_logistic(&self) -> Pipeline {
        let columns = vec![
            numeric_col("income", &self.income),
            numeric_col("debt", &self.debt),
            numeric_col("tenure", &self.tenure),
        ];
        let draft = Pipeline::new(
            columns.clone(),
            Model::Linear(flock_ml::LinearModel::new(vec![], 0.0)),
            "p_good",
        );
        let frame = Frame::new()
            .with("income", FrameCol::F64(self.income.clone()))
            .unwrap()
            .with("debt", FrameCol::F64(self.debt.clone()))
            .unwrap()
            .with("tenure", FrameCol::F64(self.tenure.clone()))
            .unwrap();
        let x = draft.featurize(&frame).expect("featurize");
        let lm = train::fit_logistic(&x, &self.label, 80, 0.8).expect("fit");
        Pipeline::new(columns, Model::Logistic(lm), "p_good")
    }
}

impl TabularDataset {
    /// A churn pipeline whose text column went through feature selection:
    /// the `comment` field is declared as a hashed-text input (`buckets`
    /// features) but carries **zero weight** — feature selection kept only
    /// the numeric signals. Scoring it naively still tokenizes and hashes
    /// every comment; the cross-optimizer's pruning rule removes the
    /// column entirely. This is the paper's "automatic pruning of unused
    /// input feature-columns exploiting model-sparsity" in its
    /// highest-payoff form.
    pub fn train_text_pipeline(&self, buckets: usize) -> Pipeline {
        // fit the numeric part
        let numeric_cols = vec![
            numeric_col("income", &self.income),
            numeric_col("debt", &self.debt),
        ];
        let draft = Pipeline::new(
            numeric_cols.clone(),
            Model::Linear(flock_ml::LinearModel::new(vec![], 0.0)),
            "p_churn",
        );
        let frame = Frame::new()
            .with("income", FrameCol::F64(self.income.clone()))
            .unwrap()
            .with("debt", FrameCol::F64(self.debt.clone()))
            .unwrap();
        let x = draft.featurize(&frame).expect("featurize");
        let cap = 2000.min(x.rows());
        let rows: Vec<Vec<f64>> = (0..cap).map(|r| x.row(r).to_vec()).collect();
        let lm = train::fit_logistic(
            &Matrix::from_rows(&rows),
            &self.label[..cap],
            60,
            0.8,
        )
        .expect("fit");
        // widen to include the hashed text features at weight 0
        let mut weights = lm.weights.clone();
        weights.extend(std::iter::repeat_n(0.0, buckets));
        let mut columns = numeric_cols;
        columns.push(ColumnPipeline {
            input: "comment".into(),
            steps: vec![],
            encoder: flock_ml::Encoder::Hashing { buckets },
        });
        Pipeline::new(
            columns,
            Model::Logistic(flock_ml::LinearModel::new(weights, lm.bias)),
            "p_churn",
        )
    }
}

fn numeric_col(name: &str, values: &[f64]) -> ColumnPipeline {
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let std = (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / values.len().max(1) as f64)
        .sqrt();
    ColumnPipeline::numeric(name)
        .with_step(NumericStep::Impute { fill: mean })
        .with_step(NumericStep::Standardize {
            mean,
            std: if std == 0.0 { 1.0 } else { std },
        })
}

/// Fit a GBT on a training subsample (training cost does not scale with
/// the scoring-set sizes benchmarked).
fn train_gbt_restricted(x: &Matrix, y: &[f64], trees: usize, max_depth: usize) -> Model {
    let cap = 2000.min(x.rows());
    let rows: Vec<Vec<f64>> = (0..cap).map(|r| x.row(r).to_vec()).collect();
    let sub = Matrix::from_rows(&rows);
    let suby = &y[..cap];
    let params = train::TreeParams {
        max_depth,
        min_samples_split: 8,
        feature_subsample: None,
        seed: 17,
    };
    Model::Gbt(
        train::fit_gbt(&sub, suby, trees, 0.3, &params, true).expect("gbt training"),
    )
}

/// The dataset sizes in the paper's Figure 4.
pub const FIGURE4_SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes() {
        let d = TabularDataset::generate(500, 1);
        assert_eq!(d.len(), 500);
        assert_eq!(d.frame().num_rows(), 500);
        let positives = d.label.iter().filter(|l| **l > 0.5).count();
        assert!(positives > 50 && positives < 450, "label balance: {positives}");
    }

    #[test]
    fn loads_into_database() {
        let d = TabularDataset::generate(200, 2);
        let db = Database::new();
        d.load_into(&db).unwrap();
        let b = db.query("SELECT COUNT(*), AVG(income) FROM customers").unwrap();
        assert_eq!(b.column(0).get(0), Value::Int(200));
    }

    #[test]
    fn trained_pipeline_beats_chance_and_has_sparsity() {
        let d = TabularDataset::generate(1500, 3);
        let p = d.train_pipeline(15, 3);
        let scores = p.score(&d.frame()).unwrap();
        let acc = flock_ml::metrics::accuracy(&scores, &d.label, 0.5);
        assert!(acc > 0.75, "accuracy {acc}");
        // noise columns unused -> input pruning has something to do
        let usage = p.input_usage();
        assert!(usage[0] || usage[1] || usage[2], "signal columns used");
        assert!(
            !usage[4] || !usage[5],
            "at least one noise column should be unused: {usage:?}"
        );
    }

    #[test]
    fn logistic_pipeline_is_affine_inlinable() {
        let d = TabularDataset::generate(800, 4);
        let p = d.train_logistic();
        assert!(matches!(p.model, Model::Logistic(_)));
        let scores = p.score(&d.frame()).unwrap();
        let acc = flock_ml::metrics::accuracy(&scores, &d.label, 0.5);
        assert!(acc > 0.7, "accuracy {acc}");
    }
}
