//! Synthetic GitHub-notebook corpus (Figure 2 substitute).
//!
//! The paper crawled >4M public notebooks and plotted the fraction fully
//! supported by the top-K most popular packages, for 2017 and 2019
//! snapshots. We model package imports with a Zipf distribution whose
//! parameters are calibrated to the two published observations: 2019 has
//! roughly **3× more packages** in total, yet the **top-10 coverage is ~5
//! points higher** (the ecosystem expands while the head consolidates).

use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};

/// Parameters of one corpus snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotParams {
    pub year: u32,
    pub notebooks: usize,
    pub packages: usize,
    /// Zipf exponent: larger = more concentrated on popular packages.
    pub zipf_exponent: f64,
    /// Mean number of imports per notebook.
    pub mean_imports: f64,
    pub seed: u64,
}

impl SnapshotParams {
    /// The 2017 snapshot: smaller ecosystem, flatter popularity.
    pub fn year_2017(notebooks: usize) -> Self {
        SnapshotParams {
            year: 2017,
            notebooks,
            packages: 1_000,
            zipf_exponent: 1.55,
            mean_imports: 3.5,
            seed: 2017,
        }
    }

    /// The 2019 snapshot: 3× the packages, but a more dominant head
    /// (numpy/pandas/sklearn "solidifying their position").
    pub fn year_2019(notebooks: usize) -> Self {
        SnapshotParams {
            year: 2019,
            notebooks,
            packages: 3_000,
            zipf_exponent: 1.64,
            mean_imports: 3.5,
            seed: 2019,
        }
    }
}

/// A generated corpus: per-notebook package-id import sets (ids are
/// popularity ranks: 0 = most popular).
#[derive(Debug, Clone)]
pub struct NotebookCorpus {
    pub params: SnapshotParams,
    pub notebooks: Vec<Vec<u32>>,
}

/// Zipf sampler over ranks `0..n` with exponent `s`.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u) as u32
    }
}

impl NotebookCorpus {
    /// Generate a corpus.
    pub fn generate(params: SnapshotParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let zipf = Zipf::new(params.packages, params.zipf_exponent);
        let notebooks = (0..params.notebooks)
            .map(|_| {
                // 1 + geometric-ish number of imports around the mean
                let extra = params.mean_imports - 1.0;
                let mut n = 1usize;
                while rng.gen::<f64>() < extra / (extra + 1.0) && n < 30 {
                    n += 1;
                }
                let mut imports: Vec<u32> = (0..n).map(|_| zipf.sample(&mut rng)).collect();
                imports.sort_unstable();
                imports.dedup();
                imports
            })
            .collect();
        NotebookCorpus { params, notebooks }
    }

    /// Fraction (%) of notebooks whose imports all fall in the top-K
    /// packages — the paper's Figure-2 metric.
    pub fn coverage(&self, k: usize) -> f64 {
        if self.notebooks.is_empty() {
            return 0.0;
        }
        let covered = self
            .notebooks
            .iter()
            .filter(|nb| nb.iter().all(|&p| (p as usize) < k))
            .count();
        100.0 * covered as f64 / self.notebooks.len() as f64
    }

    /// Coverage at each K in `ks` — one Figure-2 curve.
    pub fn coverage_curve(&self, ks: &[usize]) -> Vec<(usize, f64)> {
        ks.iter().map(|&k| (k, self.coverage(k))).collect()
    }

    /// Total number of distinct packages actually imported.
    pub fn distinct_packages(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for nb in &self.notebooks {
            seen.extend(nb.iter().copied());
        }
        seen.len()
    }
}

/// The K values plotted in the paper's figure.
pub const FIGURE2_KS: [usize; 8] = [1, 2, 5, 10, 20, 50, 100, 500];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[50]);
    }

    #[test]
    fn coverage_is_monotone_in_k() {
        let c = NotebookCorpus::generate(SnapshotParams::year_2017(5_000));
        let curve = c.coverage_curve(&FIGURE2_KS);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "{curve:?}");
        }
        assert!(c.coverage(1_000) > 99.0);
    }

    #[test]
    fn snapshots_reproduce_paper_shape() {
        let c2017 = NotebookCorpus::generate(SnapshotParams::year_2017(20_000));
        let c2019 = NotebookCorpus::generate(SnapshotParams::year_2019(20_000));
        // 3x more packages overall...
        assert_eq!(c2019.params.packages, 3 * c2017.params.packages);
        // ...but higher top-10 coverage (paper: ~5 points more)
        let t10_2017 = c2017.coverage(10);
        let t10_2019 = c2019.coverage(10);
        assert!(
            t10_2019 - t10_2017 > 2.0 && t10_2019 - t10_2017 < 12.0,
            "top-10 shift: {t10_2017:.1} -> {t10_2019:.1}"
        );
        // both land in a plausible coverage band
        assert!(t10_2017 > 30.0 && t10_2017 < 85.0, "{t10_2017}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NotebookCorpus::generate(SnapshotParams::year_2017(100));
        let b = NotebookCorpus::generate(SnapshotParams::year_2017(100));
        assert_eq!(a.notebooks, b.notebooks);
    }

    #[test]
    fn notebooks_have_deduped_imports() {
        let c = NotebookCorpus::generate(SnapshotParams::year_2017(500));
        for nb in &c.notebooks {
            assert!(!nb.is_empty());
            let mut sorted = nb.clone();
            sorted.dedup();
            assert_eq!(&sorted, nb);
        }
    }
}
