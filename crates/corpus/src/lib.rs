//! # flock-corpus
//!
//! Workload and dataset generators backing every experiment in the
//! reproduction:
//!
//! * [`notebooks`] — synthetic GitHub-notebook corpora with calibrated
//!   2017/2019 package-popularity distributions (Figure 2);
//! * [`landscape`] — the ML-systems feature-support matrix (Figure 3);
//! * [`tpch`] / [`tpcc`] — query/transaction stream generators for the
//!   SQL-provenance capture experiment (2,208 / 2,200 statements);
//! * [`scripts`] — Python script corpora with ground truth for the
//!   provenance-coverage table (49 "Kaggle" / 37 "enterprise" scripts);
//! * [`tabular`] — the tabular datasets and trained pipelines scored in
//!   the in-DB inference experiment (Figure 4);
//! * [`nexmark`] — the NEXMark-style three-stream auction workload
//!   (persons/auctions/bids) with q3/q6/q13-shaped continuous queries
//!   for the streaming-ingestion experiments.

pub mod landscape;
pub mod nexmark;
pub mod notebooks;
pub mod scripts;
pub mod tabular;
pub mod tpcc;
pub mod tpch;

pub use notebooks::{NotebookCorpus, SnapshotParams};
pub use scripts::{enterprise_corpus, kaggle_corpus, GeneratedScript, GroundTruth};
pub use tabular::{TabularDataset, FIGURE4_SIZES};
