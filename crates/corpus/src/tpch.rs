//! TPC-H query-stream generator (for the SQL-provenance experiment).
//!
//! The paper's table reports eager provenance capture over "queries
//! generated out of all query templates in TPC-H" (2,208 queries). We
//! reproduce all 22 templates — lightly adapted to the engine's dialect
//! (date literals precomputed instead of INTERVAL arithmetic, WITH/VIEW
//! rewritten as derived tables) — and generate parameterized instances.

use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};

/// The TPC-H schema (8 tables).
pub fn schema_ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE region (r_regionkey INT NOT NULL, r_name VARCHAR, r_comment VARCHAR)",
        "CREATE TABLE nation (n_nationkey INT NOT NULL, n_name VARCHAR, n_regionkey INT, n_comment VARCHAR)",
        "CREATE TABLE supplier (s_suppkey INT NOT NULL, s_name VARCHAR, s_address VARCHAR, s_nationkey INT, s_phone VARCHAR, s_acctbal DOUBLE, s_comment VARCHAR)",
        "CREATE TABLE customer (c_custkey INT NOT NULL, c_name VARCHAR, c_address VARCHAR, c_nationkey INT, c_phone VARCHAR, c_acctbal DOUBLE, c_mktsegment VARCHAR, c_comment VARCHAR)",
        "CREATE TABLE part (p_partkey INT NOT NULL, p_name VARCHAR, p_mfgr VARCHAR, p_brand VARCHAR, p_type VARCHAR, p_size INT, p_container VARCHAR, p_retailprice DOUBLE, p_comment VARCHAR)",
        "CREATE TABLE partsupp (ps_partkey INT NOT NULL, ps_suppkey INT NOT NULL, ps_availqty INT, ps_supplycost DOUBLE, ps_comment VARCHAR)",
        "CREATE TABLE orders (o_orderkey INT NOT NULL, o_custkey INT, o_orderstatus VARCHAR, o_totalprice DOUBLE, o_orderdate DATE, o_orderpriority VARCHAR, o_clerk VARCHAR, o_shippriority INT, o_comment VARCHAR)",
        "CREATE TABLE lineitem (l_orderkey INT NOT NULL, l_partkey INT, l_suppkey INT, l_linenumber INT, l_quantity DOUBLE, l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE, l_returnflag VARCHAR, l_linestatus VARCHAR, l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR, l_shipmode VARCHAR, l_comment VARCHAR)",
    ]
}

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [&str; 10] = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "FRANCE", "GERMANY", "INDIA",
    "JAPAN", "UNITED STATES",
];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "MEDIUM POLISHED COPPER",
    "PROMO BURNISHED NICKEL", "SMALL PLATED TIN", "STANDARD POLISHED STEEL",
];
const BRANDS: [&str; 5] = ["Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#51"];
const CONTAINERS: [&str; 4] = ["SM CASE", "MED BOX", "LG CONTAINER", "JUMBO PKG"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

fn date(rng: &mut StdRng, y0: i32, y1: i32) -> String {
    let y = rng.gen_range(y0..=y1);
    let m = rng.gen_range(1..=12);
    let d = rng.gen_range(1..=28);
    format!("{y:04}-{m:02}-{d:02}")
}

fn pick<'a>(rng: &mut StdRng, xs: &[&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Generate one instance of template `t` (1-based, 1..=22).
pub fn query(t: usize, rng: &mut StdRng) -> String {
    match t {
        1 => format!(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
             SUM(l_extendedprice) AS sum_base_price, \
             SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
             SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
             AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, \
             AVG(l_discount) AS avg_disc, COUNT(*) AS count_order \
             FROM lineitem WHERE l_shipdate <= DATE '{}' \
             GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
            date(rng, 1998, 1998)
        ),
        2 => format!(
            "SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr, s.s_address, \
             s.s_phone, s.s_comment \
             FROM part p, supplier s, partsupp ps, nation n, region r \
             WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey \
             AND p.p_size = {} AND p.p_type LIKE '%{}' \
             AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
             AND r.r_name = '{}' \
             AND ps.ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp) \
             ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey LIMIT 100",
            rng.gen_range(1..=50),
            pick(rng, &["STEEL", "BRASS", "COPPER", "NICKEL", "TIN"]),
            pick(rng, &REGIONS)
        ),
        3 => format!(
            "SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, \
             o.o_orderdate, o.o_shippriority \
             FROM customer c, orders o, lineitem l \
             WHERE c.c_mktsegment = '{seg}' AND c.c_custkey = o.o_custkey \
             AND l.l_orderkey = o.o_orderkey AND o.o_orderdate < DATE '{d}' \
             AND l.l_shipdate > DATE '{d}' \
             GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority \
             ORDER BY revenue DESC, o_orderdate LIMIT 10",
            seg = pick(rng, &SEGMENTS),
            d = date(rng, 1995, 1995)
        ),
        4 => format!(
            "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders \
             WHERE o_orderdate >= DATE '{}' AND o_orderdate < DATE '{}' \
             AND EXISTS (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate) \
             GROUP BY o_orderpriority ORDER BY o_orderpriority",
            date(rng, 1993, 1994),
            date(rng, 1995, 1996)
        ),
        5 => format!(
            "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
             FROM customer c, orders o, lineitem l, supplier s, nation n, region r \
             WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
             AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey \
             AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
             AND r.r_name = '{}' AND o.o_orderdate >= DATE '{}' \
             GROUP BY n.n_name ORDER BY revenue DESC",
            pick(rng, &REGIONS),
            date(rng, 1994, 1997)
        ),
        6 => format!(
            "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
             WHERE l_shipdate >= DATE '{}' AND l_discount BETWEEN {:.2} AND {:.2} \
             AND l_quantity < {}",
            date(rng, 1994, 1997),
            rng.gen_range(0.02..0.05),
            rng.gen_range(0.06..0.09),
            rng.gen_range(24..25)
        ),
        7 => format!(
            "SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue FROM \
             (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
             YEAR(l.l_shipdate) AS l_year, l.l_extendedprice * (1 - l.l_discount) AS volume \
             FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2 \
             WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey \
             AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey \
             AND c.c_nationkey = n2.n_nationkey AND n1.n_name = '{}' AND n2.n_name = '{}') shipping \
             GROUP BY supp_nation, cust_nation, l_year \
             ORDER BY supp_nation, cust_nation, l_year",
            pick(rng, &NATIONS),
            pick(rng, &NATIONS)
        ),
        8 => format!(
            "SELECT o_year, SUM(CASE WHEN nation = '{nat}' THEN volume ELSE 0 END) / SUM(volume) AS mkt_share \
             FROM (SELECT YEAR(o.o_orderdate) AS o_year, \
             l.l_extendedprice * (1 - l.l_discount) AS volume, n2.n_name AS nation \
             FROM part p, supplier s, lineitem l, orders o, customer c, nation n1, nation n2, region r \
             WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey \
             AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey \
             AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey \
             AND r.r_name = '{reg}' AND s.s_nationkey = n2.n_nationkey \
             AND p.p_type = '{ty}') all_nations \
             GROUP BY o_year ORDER BY o_year",
            nat = pick(rng, &NATIONS),
            reg = pick(rng, &REGIONS),
            ty = pick(rng, &TYPES)
        ),
        9 => format!(
            "SELECT nation, o_year, SUM(amount) AS sum_profit FROM \
             (SELECT n.n_name AS nation, YEAR(o.o_orderdate) AS o_year, \
             l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity AS amount \
             FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n \
             WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey \
             AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey \
             AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey \
             AND p.p_name LIKE '%{}%') profit \
             GROUP BY nation, o_year ORDER BY nation, o_year DESC",
            pick(rng, &["green", "blue", "red", "ivory", "azure"])
        ),
        10 => format!(
            "SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, \
             c.c_acctbal, n.n_name, c.c_address, c.c_phone, c.c_comment \
             FROM customer c, orders o, lineitem l, nation n \
             WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
             AND o.o_orderdate >= DATE '{}' AND l.l_returnflag = 'R' \
             AND c.c_nationkey = n.n_nationkey \
             GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, n.n_name, c.c_address, c.c_comment \
             ORDER BY revenue DESC LIMIT 20",
            date(rng, 1993, 1994)
        ),
        11 => format!(
            "SELECT ps.ps_partkey, SUM(ps.ps_supplycost * ps.ps_availqty) AS value \
             FROM partsupp ps, supplier s, nation n \
             WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
             AND n.n_name = '{}' \
             GROUP BY ps.ps_partkey HAVING SUM(ps.ps_supplycost * ps.ps_availqty) > {} \
             ORDER BY value DESC",
            pick(rng, &NATIONS),
            rng.gen_range(100..10000)
        ),
        12 => format!(
            "SELECT l.l_shipmode, \
             SUM(CASE WHEN o.o_orderpriority = '1-URGENT' OR o.o_orderpriority = '2-HIGH' \
             THEN 1 ELSE 0 END) AS high_line_count, \
             SUM(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority <> '2-HIGH' \
             THEN 1 ELSE 0 END) AS low_line_count \
             FROM orders o, lineitem l \
             WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('{}', '{}') \
             AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < l.l_commitdate \
             AND l.l_receiptdate >= DATE '{}' \
             GROUP BY l.l_shipmode ORDER BY l_shipmode",
            pick(rng, &SHIPMODES),
            pick(rng, &SHIPMODES),
            date(rng, 1994, 1997)
        ),
        13 => "SELECT c_count, COUNT(*) AS custdist FROM \
             (SELECT c.c_custkey AS c_custkey, COUNT(o.o_orderkey) AS c_count \
             FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey \
             GROUP BY c.c_custkey) c_orders \
             GROUP BY c_count ORDER BY custdist DESC, c_count DESC".to_string(),
        14 => format!(
            "SELECT 100.00 * SUM(CASE WHEN p.p_type LIKE 'PROMO%' \
             THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / \
             SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue \
             FROM lineitem l, part p \
             WHERE l.l_partkey = p.p_partkey AND l.l_shipdate >= DATE '{}'",
            date(rng, 1994, 1997)
        ),
        15 => format!(
            "SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone, r.total_revenue \
             FROM supplier s, \
             (SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
             FROM lineitem WHERE l_shipdate >= DATE '{}' GROUP BY l_suppkey) r \
             WHERE s.s_suppkey = r.supplier_no ORDER BY s.s_suppkey",
            date(rng, 1995, 1997)
        ),
        16 => format!(
            "SELECT p.p_brand, p.p_type, p.p_size, COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt \
             FROM partsupp ps, part p \
             WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> '{}' \
             AND p.p_type NOT LIKE 'MEDIUM POLISHED%' AND p.p_size IN ({}, {}, {}) \
             GROUP BY p.p_brand, p.p_type, p.p_size \
             ORDER BY supplier_cnt DESC, p_brand, p_type, p_size",
            pick(rng, &BRANDS),
            rng.gen_range(1..=15),
            rng.gen_range(16..=30),
            rng.gen_range(31..=50)
        ),
        17 => format!(
            "SELECT SUM(l.l_extendedprice) / 7.0 AS avg_yearly FROM lineitem l, part p \
             WHERE p.p_partkey = l.l_partkey AND p.p_brand = '{}' AND p.p_container = '{}' \
             AND l.l_quantity < (SELECT 0.2 * AVG(l_quantity) FROM lineitem)",
            pick(rng, &BRANDS),
            pick(rng, &CONTAINERS)
        ),
        18 => format!(
            "SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice, \
             SUM(l.l_quantity) \
             FROM customer c, orders o, lineitem l \
             WHERE o.o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey \
             HAVING SUM(l_quantity) > {}) \
             AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
             GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice \
             ORDER BY o_totalprice DESC, o_orderdate LIMIT 100",
            rng.gen_range(300..315)
        ),
        19 => format!(
            "SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
             FROM lineitem l, part p WHERE p.p_partkey = l.l_partkey \
             AND ((p.p_brand = '{}' AND l.l_quantity BETWEEN {q1} AND {q1} + 10) \
             OR (p.p_brand = '{}' AND l.l_quantity BETWEEN {q2} AND {q2} + 10)) \
             AND l.l_shipmode IN ('AIR', 'REG AIR')",
            pick(rng, &BRANDS),
            pick(rng, &BRANDS),
            q1 = rng.gen_range(1..=10),
            q2 = rng.gen_range(10..=20)
        ),
        20 => format!(
            "SELECT s.s_name, s.s_address FROM supplier s, nation n \
             WHERE s.s_suppkey IN (SELECT ps_suppkey FROM partsupp \
             WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE '{}%')) \
             AND s.s_nationkey = n.n_nationkey AND n.n_name = '{}' ORDER BY s.s_name",
            pick(rng, &["forest", "lace", "olive", "powder"]),
            pick(rng, &NATIONS)
        ),
        21 => format!(
            "SELECT s.s_name, COUNT(*) AS numwait FROM supplier s, lineitem l1, orders o, nation n \
             WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey \
             AND o.o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
             AND EXISTS (SELECT l_orderkey FROM lineitem WHERE l_receiptdate > l_commitdate) \
             AND s.s_nationkey = n.n_nationkey AND n.n_name = '{}' \
             GROUP BY s.s_name ORDER BY numwait DESC, s_name LIMIT 100",
            pick(rng, &NATIONS)
        ),
        22 => format!(
            "SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal FROM \
             (SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, c_acctbal FROM customer \
             WHERE SUBSTR(c_phone, 1, 2) IN ('{}', '{}', '{}') \
             AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.0)) custsale \
             GROUP BY cntrycode ORDER BY cntrycode",
            rng.gen_range(10..20),
            rng.gen_range(20..30),
            rng.gen_range(30..40)
        ),
        other => panic!("TPC-H has 22 templates, got {other}"),
    }
}

/// Generate `per_template` instances of every template — the paper ran
/// 2,208 queries, i.e. ~100 per template (plus DDL).
pub fn query_stream(per_template: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(22 * per_template);
    for round in 0..per_template {
        for t in 1..=22 {
            let _ = round;
            out.push(query(t, &mut rng));
        }
    }
    out
}

/// Tiny data population (for examples that execute queries; the
/// provenance experiment only parses them).
pub fn populate(db: &flock_sql::Database, scale_rows: usize, seed: u64) -> flock_sql::Result<()> {
    use flock_sql::{RecordBatch, Value};
    let mut rng = StdRng::seed_from_u64(seed);
    for ddl in schema_ddl() {
        db.execute(ddl)?;
    }
    let mut session = db.session("admin");
    let catalog = db.catalog();

    // regions and nations are fixed small
    let mut rows: Vec<Vec<Value>> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, r)| vec![Value::Int(i as i64), Value::Text(r.to_string()), Value::Text(String::new())])
        .collect();
    let schema = catalog.table("region")?.schema().clone();
    session.append_batch("region", RecordBatch::from_rows(schema, &rows)?)?;

    rows = NATIONS
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                Value::Int(i as i64),
                Value::Text(n.to_string()),
                Value::Int((i % REGIONS.len()) as i64),
                Value::Text(String::new()),
            ]
        })
        .collect();
    let schema = catalog.table("nation")?.schema().clone();
    session.append_batch("nation", RecordBatch::from_rows(schema, &rows)?)?;

    // customers and orders at the requested scale
    rows = (0..scale_rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Text(format!("Customer#{i}")),
                Value::Text(format!("addr {i}")),
                Value::Int(rng.gen_range(0..NATIONS.len() as i64)),
                Value::Text(format!("{}-555", rng.gen_range(10..40))),
                Value::Float(rng.gen_range(-999.0..9999.0)),
                Value::Text(pick(&mut rng, &SEGMENTS).to_string()),
                Value::Text(String::new()),
            ]
        })
        .collect();
    let schema = catalog.table("customer")?.schema().clone();
    session.append_batch("customer", RecordBatch::from_rows(schema, &rows)?)?;

    rows = (0..scale_rows * 2)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..scale_rows as i64)),
                Value::Text(if rng.gen_bool(0.5) { "F" } else { "O" }.into()),
                Value::Float(rng.gen_range(100.0..100000.0)),
                Value::Text(date(&mut rng, 1992, 1998)),
                Value::Text(pick(&mut rng, &PRIORITIES).to_string()),
                Value::Text(format!("Clerk#{}", rng.gen_range(1..100))),
                Value::Int(0),
                Value::Text(String::new()),
            ]
        })
        .collect();
    let schema = catalog.table("orders")?.schema().clone();
    session.append_batch("orders", RecordBatch::from_rows(schema, &rows)?)?;

    // suppliers
    let n_supp = (scale_rows / 10).max(5);
    rows = (0..n_supp)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Text(format!("Supplier#{i}")),
                Value::Text(format!("saddr {i}")),
                Value::Int(rng.gen_range(0..NATIONS.len() as i64)),
                Value::Text(format!("{}-777", rng.gen_range(10..40))),
                Value::Float(rng.gen_range(-999.0..9999.0)),
                Value::Text(String::new()),
            ]
        })
        .collect();
    let schema = catalog.table("supplier")?.schema().clone();
    session.append_batch("supplier", RecordBatch::from_rows(schema, &rows)?)?;

    // parts
    let n_part = (scale_rows / 5).max(10);
    let colors = ["green", "blue", "red", "ivory", "azure"];
    rows = (0..n_part)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Text(format!(
                    "{} burnished {}",
                    pick(&mut rng, &colors),
                    pick(&mut rng, &["steel", "brass", "tin"])
                )),
                Value::Text(format!("Manufacturer#{}", rng.gen_range(1..6))),
                Value::Text(pick(&mut rng, &BRANDS).to_string()),
                Value::Text(pick(&mut rng, &TYPES).to_string()),
                Value::Int(rng.gen_range(1..=50)),
                Value::Text(pick(&mut rng, &CONTAINERS).to_string()),
                Value::Float(rng.gen_range(900.0..2000.0)),
                Value::Text(String::new()),
            ]
        })
        .collect();
    let schema = catalog.table("part")?.schema().clone();
    session.append_batch("part", RecordBatch::from_rows(schema, &rows)?)?;

    // partsupp: each part stocked by ~2 suppliers
    rows = (0..n_part * 2)
        .map(|i| {
            vec![
                Value::Int((i / 2) as i64),
                Value::Int(rng.gen_range(0..n_supp as i64)),
                Value::Int(rng.gen_range(1..10_000)),
                Value::Float(rng.gen_range(1.0..1000.0)),
                Value::Text(String::new()),
            ]
        })
        .collect();
    let schema = catalog.table("partsupp")?.schema().clone();
    session.append_batch("partsupp", RecordBatch::from_rows(schema, &rows)?)?;

    // lineitems: ~3 per order
    rows = (0..scale_rows * 6)
        .map(|i| {
            let ship = date(&mut rng, 1992, 1998);
            let commit = date(&mut rng, 1992, 1998);
            let receipt = date(&mut rng, 1992, 1998);
            vec![
                Value::Int((i / 3) as i64),
                Value::Int(rng.gen_range(0..n_part as i64)),
                Value::Int(rng.gen_range(0..n_supp as i64)),
                Value::Int((i % 3) as i64 + 1),
                Value::Float(rng.gen_range(1.0..50.0)),
                Value::Float(rng.gen_range(900.0..100_000.0)),
                Value::Float(rng.gen_range(0.0..0.1)),
                Value::Float(rng.gen_range(0.0..0.08)),
                Value::Text(if rng.gen_bool(0.3) { "R" } else { "N" }.into()),
                Value::Text(if rng.gen_bool(0.5) { "O" } else { "F" }.into()),
                Value::Text(ship),
                Value::Text(commit),
                Value::Text(receipt),
                Value::Text("DELIVER IN PERSON".into()),
                Value::Text(pick(&mut rng, &SHIPMODES).to_string()),
                Value::Text(String::new()),
            ]
        })
        .collect();
    let schema = catalog.table("lineitem")?.schema().clone();
    session.append_batch("lineitem", RecordBatch::from_rows(schema, &rows)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_sql::parser::parse_statement;

    #[test]
    fn all_templates_parse() {
        let mut rng = StdRng::seed_from_u64(1);
        for t in 1..=22 {
            let q = query(t, &mut rng);
            parse_statement(&q).unwrap_or_else(|e| panic!("Q{t} failed: {e}\n{q}"));
        }
    }

    #[test]
    fn stream_size_matches_paper_scale() {
        let qs = query_stream(100, 42);
        assert_eq!(qs.len(), 2200);
        // plus the 8 DDL statements ≈ the paper's 2,208
        assert_eq!(qs.len() + schema_ddl().len(), 2208);
    }

    #[test]
    fn stream_is_deterministic_and_parameterized() {
        let a = query_stream(2, 7);
        let b = query_stream(2, 7);
        assert_eq!(a, b);
        let c = query_stream(2, 8);
        assert_ne!(a, c, "different seeds produce different parameters");
    }

    #[test]
    fn populate_loads_data() {
        let db = flock_sql::Database::new();
        populate(&db, 50, 3).unwrap();
        let b = db.query("SELECT COUNT(*) FROM orders").unwrap();
        assert_eq!(b.column(0).get(0), flock_sql::Value::Int(100));
        // an actual template executes against the populated schema
        let b = db
            .query(
                "SELECT c.c_mktsegment, COUNT(*) FROM customer c, orders o \
                 WHERE c.c_custkey = o.o_custkey GROUP BY c.c_mktsegment",
            )
            .unwrap();
        assert!(b.num_rows() >= 1);
    }
}

#[cfg(test)]
mod exec_tests {
    use super::*;

    /// Every one of the 22 templates must actually *execute* against a
    /// populated database — not just parse.
    #[test]
    fn all_22_templates_execute() {
        let db = flock_sql::Database::new();
        populate(&db, 60, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for t in 1..=22 {
            let q = query(t, &mut rng);
            let result = db.query(&q);
            assert!(result.is_ok(), "Q{t} failed: {:?}\n{q}", result.err());
        }
    }
}
