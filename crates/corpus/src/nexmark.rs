//! NEXMark-style streaming workload generator (ROADMAP item 1).
//!
//! Produces the classic three-stream auction workload — persons,
//! auctions, bids, in the standard 1:3:46 proportions — as rate-
//! controlled `INSERT`-path events for flock-sql stream tables, plus
//! adapted q3/q6/q13-shaped continuous queries:
//!
//! * **q3-shaped** — filtered per-state person arrivals per tumbling
//!   window (the selection+group core of NEXMark's "local item" query);
//! * **q6-shaped** — per-auction average/best bid price over a sliding
//!   window (the windowed-average core of "avg selling price by seller");
//! * **q13-shaped** — per-bidder window aggregates enriched through
//!   `PREDICT` (NEXMark's side-input enrichment, re-expressed as
//!   continuous model scoring) with a policy threshold that holds the
//!   model on breach.
//!
//! Rate control is in *event time*: the generator spaces events
//! `1000 / events_per_sec` ms apart deterministically, so a driver can
//! replay them as fast as the engine ingests while windows still close
//! on the modeled clock.

use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};

/// US states the person generator draws from (q3 filters a subset).
const STATES: [&str; 8] = ["OR", "ID", "CA", "WA", "NV", "AZ", "UT", "NY"];

/// q3's filter set, kept small so the filter is selective.
pub const Q3_STATES: [&str; 3] = ["OR", "ID", "CA"];

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    pub et: i64,
    pub id: i64,
    pub name: String,
    pub state: &'static str,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Auction {
    pub et: i64,
    pub id: i64,
    pub seller: i64,
    pub category: i64,
    pub initial_bid: i64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bid {
    pub et: i64,
    pub auction: i64,
    pub bidder: i64,
    pub price: i64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    Person(Person),
    Auction(Auction),
    Bid(Bid),
}

impl Event {
    pub fn event_time(&self) -> i64 {
        match self {
            Event::Person(p) => p.et,
            Event::Auction(a) => a.et,
            Event::Bid(b) => b.et,
        }
    }
}

/// Deterministic, rate-controlled NEXMark event generator.
pub struct NexmarkGen {
    rng: StdRng,
    events_per_sec: u32,
    emitted: u64,
    /// Event-time accumulator in microseconds (keeps integer pacing exact
    /// for rates that don't divide 1000).
    et_us: i64,
    next_person: i64,
    next_auction: i64,
    people: Vec<i64>,
    auctions: Vec<i64>,
}

impl NexmarkGen {
    pub fn new(seed: u64, events_per_sec: u32) -> Self {
        assert!(events_per_sec > 0, "rate must be positive");
        NexmarkGen {
            rng: StdRng::seed_from_u64(seed),
            events_per_sec,
            emitted: 0,
            et_us: 0,
            next_person: 1000,
            next_auction: 5000,
            people: Vec::new(),
            auctions: Vec::new(),
        }
    }

    /// Current event time in milliseconds.
    fn et_ms(&self) -> i64 {
        self.et_us / 1000
    }

    /// The next event: persons, auctions and bids interleave 1:3:46 per
    /// 50 events (the NEXMark standard mix), event times spaced by the
    /// configured rate.
    pub fn next_event(&mut self) -> Event {
        let slot = self.emitted % 50;
        self.emitted += 1;
        let et = self.et_ms();
        self.et_us += 1_000_000 / i64::from(self.events_per_sec);
        if slot == 0 || self.people.is_empty() {
            let id = self.next_person;
            self.next_person += 1;
            self.people.push(id);
            let state = STATES[self.rng.gen_range(0..STATES.len())];
            return Event::Person(Person {
                et,
                id,
                name: format!("p{id}"),
                state,
            });
        }
        if slot <= 3 || self.auctions.is_empty() {
            let id = self.next_auction;
            self.next_auction += 1;
            self.auctions.push(id);
            let seller = self.people[self.rng.gen_range(0..self.people.len())];
            return Event::Auction(Auction {
                et,
                id,
                seller,
                category: self.rng.gen_range(0..10),
                initial_bid: self.rng.gen_range(1..100),
            });
        }
        let auction = self.auctions[self.rng.gen_range(0..self.auctions.len())];
        let bidder = self.people[self.rng.gen_range(0..self.people.len())];
        Event::Bid(Bid {
            et,
            auction,
            bidder,
            price: self.rng.gen_range(1..10_000),
        })
    }

    /// Generate the next `n` events in event-time order.
    pub fn batch(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

/// `CREATE STREAM` DDL for the three NEXMark streams, all watermarked on
/// their event-time column with the given lag allowance.
pub fn schema_ddl(lag_ms: i64) -> Vec<String> {
    vec![
        format!(
            "CREATE STREAM person (et INT NOT NULL, id INT NOT NULL, \
             name VARCHAR, state VARCHAR) WATERMARK (et, {lag_ms})"
        ),
        format!(
            "CREATE STREAM auction (et INT NOT NULL, id INT NOT NULL, \
             seller INT, category INT, initial_bid INT) WATERMARK (et, {lag_ms})"
        ),
        format!(
            "CREATE STREAM bid (et INT NOT NULL, auction INT NOT NULL, \
             bidder INT, price INT) WATERMARK (et, {lag_ms})"
        ),
    ]
}

/// Render a slice of events as multi-row INSERT statements, one per
/// stream, preserving event-time order within each stream.
pub fn insert_statements(events: &[Event]) -> Vec<String> {
    let mut persons = Vec::new();
    let mut auctions = Vec::new();
    let mut bids = Vec::new();
    for e in events {
        match e {
            Event::Person(p) => persons.push(format!(
                "({}, {}, '{}', '{}')",
                p.et, p.id, p.name, p.state
            )),
            Event::Auction(a) => auctions.push(format!(
                "({}, {}, {}, {}, {})",
                a.et, a.id, a.seller, a.category, a.initial_bid
            )),
            Event::Bid(b) => bids.push(format!(
                "({}, {}, {}, {})",
                b.et, b.auction, b.bidder, b.price
            )),
        }
    }
    let mut out = Vec::new();
    if !persons.is_empty() {
        out.push(format!("INSERT INTO person VALUES {}", persons.join(", ")));
    }
    if !auctions.is_empty() {
        out.push(format!("INSERT INTO auction VALUES {}", auctions.join(", ")));
    }
    if !bids.is_empty() {
        out.push(format!("INSERT INTO bid VALUES {}", bids.join(", ")));
    }
    out
}

/// q3-shaped continuous query: per-state person arrivals, filtered to
/// [`Q3_STATES`], per tumbling window.
pub fn q3_ddl(window_ms: i64) -> String {
    format!(
        "CREATE CONTINUOUS QUERY nex_q3 ON person WINDOW TUMBLING ({window_ms}) \
         EMIT INTO q3_out AS \
         SELECT state, COUNT(*) AS arrivals FROM person \
         WHERE state = '{}' OR state = '{}' OR state = '{}' GROUP BY state",
        Q3_STATES[0], Q3_STATES[1], Q3_STATES[2]
    )
}

/// q6-shaped continuous query: average and best bid price per auction
/// over a sliding window.
pub fn q6_ddl(size_ms: i64, slide_ms: i64) -> String {
    format!(
        "CREATE CONTINUOUS QUERY nex_q6 ON bid WINDOW SLIDING ({size_ms}, {slide_ms}) \
         EMIT INTO q6_out AS \
         SELECT auction, COUNT(*) AS bids, AVG(price) AS avg_price, MAX(price) AS best \
         FROM bid GROUP BY auction"
    )
}

/// q13-shaped continuous query: per-bidder window aggregates enriched
/// through `PREDICT`, with a policy threshold that holds the model when
/// the score breaches. The model must accept two numeric features
/// (average price, bid count).
pub fn q13_ddl(window_ms: i64, model: &str, threshold: f64) -> String {
    format!(
        "CREATE CONTINUOUS QUERY nex_q13 ON bid WINDOW TUMBLING ({window_ms}) \
         EMIT INTO q13_out AS \
         SELECT bidder, COUNT(*) AS n, AVG(price) AS avg_price, \
                PREDICT({model}, AVG(price), COUNT(*)) AS score \
         FROM bid GROUP BY bidder \
         WHEN score > {threshold} THEN HOLD MODEL {model}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_rate_paced() {
        let a: Vec<Event> = NexmarkGen::new(7, 1000).batch(500);
        let b: Vec<Event> = NexmarkGen::new(7, 1000).batch(500);
        assert_eq!(a, b);
        // 1000 events/sec -> 1 ms spacing, monotone non-decreasing
        assert_eq!(a[0].event_time(), 0);
        assert_eq!(a[499].event_time(), 499);
        for w in a.windows(2) {
            assert!(w[0].event_time() <= w[1].event_time());
        }
        // a different seed moves the payloads
        let c: Vec<Event> = NexmarkGen::new(8, 1000).batch(500);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_is_one_three_fortysix() {
        let events = NexmarkGen::new(1, 500).batch(1000);
        let persons = events.iter().filter(|e| matches!(e, Event::Person(_))).count();
        let auctions = events.iter().filter(|e| matches!(e, Event::Auction(_))).count();
        let bids = events.iter().filter(|e| matches!(e, Event::Bid(_))).count();
        assert_eq!(persons, 20);
        assert_eq!(auctions, 60);
        assert_eq!(bids, 920);
    }

    #[test]
    fn bids_reference_live_auctions_and_people() {
        let mut g = NexmarkGen::new(3, 2000);
        let mut auction_ids = std::collections::HashSet::new();
        let mut person_ids = std::collections::HashSet::new();
        for e in g.batch(2000) {
            match e {
                Event::Person(p) => {
                    person_ids.insert(p.id);
                }
                Event::Auction(a) => {
                    assert!(person_ids.contains(&a.seller));
                    auction_ids.insert(a.id);
                }
                Event::Bid(b) => {
                    assert!(auction_ids.contains(&b.auction));
                    assert!(person_ids.contains(&b.bidder));
                }
            }
        }
    }

    #[test]
    fn workload_runs_end_to_end_on_the_engine() {
        let db = flock_sql::Database::new();
        for ddl in schema_ddl(0) {
            db.execute(&ddl).unwrap();
        }
        db.execute(&q3_ddl(1000)).unwrap();
        db.execute(&q6_ddl(2000, 1000)).unwrap();
        let mut g = NexmarkGen::new(42, 1000);
        for _ in 0..5 {
            let events = g.batch(1000);
            for stmt in insert_statements(&events) {
                db.execute(&stmt).unwrap();
            }
            db.stream_tick_now();
        }
        // 5 s of modeled traffic at 1 ms spacing closes at least 3 q3
        // windows and emits q6 rows
        let q3 = db.query("SELECT * FROM q3_out").unwrap();
        assert!(q3.num_rows() >= 3, "q3 emitted {} rows", q3.num_rows());
        let q6 = db.query("SELECT * FROM q6_out").unwrap();
        assert!(q6.num_rows() > 0);
    }
}
