//! TPC-C statement-stream generator (for the SQL-provenance experiment's
//! second row: 2,200 queries, 124 s, 34,785 nodes+edges).
//!
//! TPC-C is write-heavy: its five transactions mix SELECTs with many
//! INSERT/UPDATE statements, which is why the paper's provenance graph is
//! *larger* for TPC-C than TPC-H despite similar query counts — every
//! write mints a new table-version node.

use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};

/// The TPC-C schema (9 tables).
pub fn schema_ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE warehouse (w_id INT NOT NULL, w_name VARCHAR, w_street VARCHAR, w_city VARCHAR, w_state VARCHAR, w_zip VARCHAR, w_tax DOUBLE, w_ytd DOUBLE)",
        "CREATE TABLE district (d_id INT NOT NULL, d_w_id INT NOT NULL, d_name VARCHAR, d_street VARCHAR, d_city VARCHAR, d_state VARCHAR, d_zip VARCHAR, d_tax DOUBLE, d_ytd DOUBLE, d_next_o_id INT)",
        "CREATE TABLE customer3 (c_id INT NOT NULL, c_d_id INT NOT NULL, c_w_id INT NOT NULL, c_first VARCHAR, c_last VARCHAR, c_balance DOUBLE, c_ytd_payment DOUBLE, c_payment_cnt INT, c_delivery_cnt INT, c_credit VARCHAR, c_discount DOUBLE)",
        "CREATE TABLE history (h_c_id INT, h_c_d_id INT, h_c_w_id INT, h_d_id INT, h_w_id INT, h_date DATE, h_amount DOUBLE, h_data VARCHAR)",
        "CREATE TABLE orders3 (o_id INT NOT NULL, o_d_id INT NOT NULL, o_w_id INT NOT NULL, o_c_id INT, o_entry_d DATE, o_carrier_id INT, o_ol_cnt INT, o_all_local INT)",
        "CREATE TABLE new_order (no_o_id INT NOT NULL, no_d_id INT NOT NULL, no_w_id INT NOT NULL)",
        "CREATE TABLE order_line (ol_o_id INT NOT NULL, ol_d_id INT NOT NULL, ol_w_id INT NOT NULL, ol_number INT NOT NULL, ol_i_id INT, ol_supply_w_id INT, ol_delivery_d DATE, ol_quantity INT, ol_amount DOUBLE, ol_dist_info VARCHAR)",
        "CREATE TABLE item (i_id INT NOT NULL, i_im_id INT, i_name VARCHAR, i_price DOUBLE, i_data VARCHAR)",
        "CREATE TABLE stock (s_i_id INT NOT NULL, s_w_id INT NOT NULL, s_quantity INT, s_ytd DOUBLE, s_order_cnt INT, s_remote_cnt INT, s_data VARCHAR)",
    ]
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transaction {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

/// Generate the statement sequence of one transaction instance.
pub fn transaction(kind: Transaction, rng: &mut StdRng) -> Vec<String> {
    let w = rng.gen_range(1..=10);
    let d = rng.gen_range(1..=10);
    let c = rng.gen_range(1..=3000);
    match kind {
        Transaction::NewOrder => {
            let o = rng.gen_range(1..=100_000);
            let mut stmts = vec![
                format!("SELECT w_tax FROM warehouse WHERE w_id = {w}"),
                format!("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"),
                format!("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = {w} AND d_id = {d}"),
                format!("SELECT c_discount, c_last, c_credit FROM customer3 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"),
                format!("INSERT INTO orders3 VALUES ({o}, {d}, {w}, {c}, '1998-01-01', 0, 5, 1)"),
                format!("INSERT INTO new_order VALUES ({o}, {d}, {w})"),
            ];
            for line in 1..=rng.gen_range(2..=4) {
                let i = rng.gen_range(1..=100_000);
                stmts.push(format!(
                    "SELECT i_price, i_name, i_data FROM item WHERE i_id = {i}"
                ));
                stmts.push(format!(
                    "UPDATE stock SET s_quantity = s_quantity - {q}, s_ytd = s_ytd + {q}, \
                     s_order_cnt = s_order_cnt + 1 WHERE s_i_id = {i} AND s_w_id = {w}",
                    q = rng.gen_range(1..=10)
                ));
                stmts.push(format!(
                    "INSERT INTO order_line VALUES ({o}, {d}, {w}, {line}, {i}, {w}, NULL, 5, {:.2}, 'dist')",
                    rng.gen_range(10.0..500.0)
                ));
            }
            stmts
        }
        Transaction::Payment => {
            let amount = rng.gen_range(1.0..5000.0);
            vec![
                format!("UPDATE warehouse SET w_ytd = w_ytd + {amount:.2} WHERE w_id = {w}"),
                format!("SELECT w_name, w_street, w_city FROM warehouse WHERE w_id = {w}"),
                format!("UPDATE district SET d_ytd = d_ytd + {amount:.2} WHERE d_w_id = {w} AND d_id = {d}"),
                format!(
                    "UPDATE customer3 SET c_balance = c_balance - {amount:.2}, \
                     c_ytd_payment = c_ytd_payment + {amount:.2}, c_payment_cnt = c_payment_cnt + 1 \
                     WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
                ),
                format!(
                    "INSERT INTO history VALUES ({c}, {d}, {w}, {d}, {w}, '1998-02-03', {amount:.2}, 'payment')"
                ),
            ]
        }
        Transaction::OrderStatus => vec![
            format!(
                "SELECT c_balance, c_first, c_last FROM customer3 \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
            format!(
                "SELECT o_id, o_entry_d, o_carrier_id FROM orders3 \
                 WHERE o_w_id = {w} AND o_d_id = {d} AND o_c_id = {c} \
                 ORDER BY o_id DESC LIMIT 1"
            ),
            format!(
                "SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d \
                 FROM order_line WHERE ol_w_id = {w} AND ol_d_id = {d}"
            ),
        ],
        Transaction::Delivery => {
            let o = rng.gen_range(1..=100_000);
            vec![
                format!(
                    "SELECT MIN(no_o_id) FROM new_order WHERE no_d_id = {d} AND no_w_id = {w}"
                ),
                format!("DELETE FROM new_order WHERE no_o_id = {o} AND no_d_id = {d} AND no_w_id = {w}"),
                format!("UPDATE orders3 SET o_carrier_id = {} WHERE o_id = {o} AND o_d_id = {d} AND o_w_id = {w}", rng.gen_range(1..=10)),
                format!("UPDATE order_line SET ol_delivery_d = '1998-03-04' WHERE ol_o_id = {o} AND ol_d_id = {d} AND ol_w_id = {w}"),
                format!(
                    "SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = {o} AND ol_d_id = {d} AND ol_w_id = {w}"
                ),
                format!(
                    "UPDATE customer3 SET c_balance = c_balance + 100.0, c_delivery_cnt = c_delivery_cnt + 1 \
                     WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
                ),
            ]
        }
        Transaction::StockLevel => vec![
            format!("SELECT d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"),
            format!(
                "SELECT COUNT(DISTINCT s.s_i_id) FROM order_line ol, stock s \
                 WHERE ol.ol_w_id = {w} AND ol.ol_d_id = {d} \
                 AND s.s_i_id = ol.ol_i_id AND s.s_w_id = {w} AND s.s_quantity < {}",
                rng.gen_range(10..=20)
            ),
        ],
    }
}

/// The standard TPC-C transaction mix.
pub fn pick_transaction(rng: &mut StdRng) -> Transaction {
    match rng.gen_range(0..100) {
        0..=44 => Transaction::NewOrder,
        45..=87 => Transaction::Payment,
        88..=91 => Transaction::OrderStatus,
        92..=95 => Transaction::Delivery,
        _ => Transaction::StockLevel,
    }
}

/// Generate a stream of ~`n_statements` statements following the standard
/// mix (the paper processed 2,200 TPC-C queries).
pub fn statement_stream(n_statements: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_statements);
    while out.len() < n_statements {
        let t = pick_transaction(&mut rng);
        out.extend(transaction(t, &mut rng));
    }
    out.truncate(n_statements);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_sql::parser::parse_statement;

    #[test]
    fn all_transaction_statements_parse() {
        let mut rng = StdRng::seed_from_u64(5);
        for kind in [
            Transaction::NewOrder,
            Transaction::Payment,
            Transaction::OrderStatus,
            Transaction::Delivery,
            Transaction::StockLevel,
        ] {
            for stmt in transaction(kind, &mut rng) {
                parse_statement(&stmt)
                    .unwrap_or_else(|e| panic!("{kind:?} failed: {e}\n{stmt}"));
            }
        }
    }

    #[test]
    fn stream_hits_requested_size() {
        let s = statement_stream(2200, 11);
        assert_eq!(s.len(), 2200);
    }

    #[test]
    fn mix_is_write_heavy() {
        let s = statement_stream(2000, 13);
        let writes = s
            .iter()
            .filter(|q| {
                let u = q.to_ascii_uppercase();
                u.starts_with("INSERT") || u.starts_with("UPDATE") || u.starts_with("DELETE")
            })
            .count();
        // TPC-C is dominated by NewOrder/Payment writes
        assert!(
            writes * 2 > s.len(),
            "expected write-heavy mix, got {writes}/{} writes",
            s.len()
        );
    }

    #[test]
    fn ddl_parses() {
        for ddl in schema_ddl() {
            parse_statement(ddl).unwrap();
        }
    }
}

#[cfg(test)]
mod exec_tests {
    use super::*;

    /// TPC-C transactions must *execute* against the schema, not just
    /// parse — writes included.
    #[test]
    fn transactions_execute_against_schema() {
        let db = flock_sql::Database::new();
        for ddl in schema_ddl() {
            db.execute(ddl).unwrap();
        }
        // seed minimal rows the UPDATE/SELECT statements will touch
        db.execute("INSERT INTO warehouse VALUES (1, 'w1', 's', 'c', 'st', 'z', 0.05, 0.0)")
            .unwrap();
        db.execute(
            "INSERT INTO district VALUES (1, 1, 'd1', 's', 'c', 'st', 'z', 0.04, 0.0, 1)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO customer3 VALUES (1, 1, 1, 'Ann', 'Smith', 100.0, 0.0, 0, 0, 'GC', 0.1)",
        )
        .unwrap();
        db.execute("INSERT INTO item VALUES (1, 1, 'widget', 9.99, 'data')").unwrap();
        db.execute("INSERT INTO stock VALUES (1, 1, 50, 0.0, 0, 0, 'sdata')").unwrap();

        let mut rng = StdRng::seed_from_u64(3);
        let mut session = db.session("admin");
        let mut executed = 0;
        for kind in [
            Transaction::NewOrder,
            Transaction::Payment,
            Transaction::OrderStatus,
            Transaction::Delivery,
            Transaction::StockLevel,
        ] {
            for stmt in transaction(kind, &mut rng) {
                session
                    .execute(&stmt)
                    .unwrap_or_else(|e| panic!("{kind:?} failed: {e}\n{stmt}"));
                executed += 1;
            }
        }
        assert!(executed >= 15);
        // the write-heavy mix produced table versions
        let warehouse_versions = db.catalog().table("warehouse").unwrap().current_version();
        assert!(warehouse_versions >= 3, "payment bumped warehouse twice");
    }
}
