//! The ML-systems competitive landscape (Figure 3 substitute).
//!
//! The paper's Figure 3 is a qualitative feature matrix over proprietary
//! "unicorn" stacks (Bing, Uber Michelangelo, LinkedIn ProML) and public
//! cloud services (Azure ML, Google AI Platform, SageMaker), judged from
//! public material. We encode a matrix consistent with the two trends the
//! paper reports: (1) mature proprietary solutions have stronger data
//! management support, and (2) in-DB ML is nearly absent everywhere.

use serde::Serialize;

/// Support level of a system for a feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Support {
    Good,
    Ok,
    No,
    Unknown,
}

impl Support {
    pub fn glyph(self) -> &'static str {
        match self {
            Support::Good => "●",
            Support::Ok => "◐",
            Support::No => "○",
            Support::Unknown => "?",
        }
    }

    pub fn score(self) -> f64 {
        match self {
            Support::Good => 1.0,
            Support::Ok => 0.5,
            Support::No | Support::Unknown => 0.0,
        }
    }
}

/// Feature areas from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Area {
    Training,
    Serving,
    DataManagement,
}

/// One system column of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct System {
    pub name: &'static str,
    pub proprietary: bool,
}

/// The features (rows), grouped by area, in the paper's order.
pub const FEATURES: [(&str, Area); 17] = [
    ("Experiment Tracking", Area::Training),
    ("Managed Notebooks", Area::Training),
    ("Pipelines / Projects", Area::Training),
    ("Multi-Framework", Area::Training),
    ("Proprietary Algos", Area::Training),
    ("Distributed Training", Area::Training),
    ("Auto ML", Area::Training),
    ("Serving", Area::Serving),
    ("Batch prediction", Area::Serving),
    ("On-prem deployment", Area::Serving),
    ("Model Monitoring", Area::Serving),
    ("Model Validation", Area::Serving),
    ("Data Provenance", Area::DataManagement),
    ("Data testing", Area::DataManagement),
    ("Feature Store", Area::DataManagement),
    ("Featurization DSL", Area::DataManagement),
    ("In-DB ML", Area::DataManagement),
];

pub const SYSTEMS: [System; 6] = [
    System { name: "Bing", proprietary: true },
    System { name: "Uber", proprietary: true },
    System { name: "LinkedIn", proprietary: true },
    System { name: "AzureML", proprietary: false },
    System { name: "GoogleAI", proprietary: false },
    System { name: "SageMaker", proprietary: false },
];

use Support::{Good, No, Ok as Mid, Unknown};

/// The matrix: `MATRIX[feature][system]`, aligned with [`FEATURES`] and
/// [`SYSTEMS`].
pub const MATRIX: [[Support; 6]; 17] = [
    // Training
    [Mid, Good, Good, Good, Good, Good],      // experiment tracking
    [No, Good, Mid, Good, Good, Good],        // managed notebooks
    [Good, Good, Good, Good, Good, Good],     // pipelines / projects
    [Mid, Good, Mid, Good, Good, Good],       // multi-framework
    [Good, Mid, Good, Mid, Good, Good],       // proprietary algos
    [Good, Good, Good, Good, Good, Good],     // distributed training
    [Mid, Unknown, Mid, Good, Good, Good],    // auto ml
    // Serving
    [Good, Good, Good, Good, Good, Good],     // serving
    [Good, Good, Good, Good, Good, Good],     // batch prediction
    [Good, Good, Good, Mid, No, No],          // on-prem deployment
    [Good, Good, Good, Mid, Mid, Good],       // model monitoring
    [Good, Good, Good, Mid, Unknown, Mid],    // model validation
    // Data management
    [Good, Good, Good, Mid, No, No],          // data provenance
    [Good, Good, Mid, No, Mid, No],           // data testing
    [Good, Good, Good, No, No, No],           // feature store
    [Good, Good, Good, No, No, Mid],          // featurization DSL
    [No, No, No, Mid, No, No],                // in-db ml
];

/// Mean support score of one system over one area.
pub fn area_score(system_idx: usize, area: Area) -> f64 {
    let rows: Vec<usize> = FEATURES
        .iter()
        .enumerate()
        .filter(|(_, (_, a))| *a == area)
        .map(|(i, _)| i)
        .collect();
    let sum: f64 = rows.iter().map(|&r| MATRIX[r][system_idx].score()).sum();
    sum / rows.len() as f64
}

/// The two headline trends the paper reads from the figure.
pub struct Trends {
    /// Mean data-management score: proprietary vs cloud systems.
    pub proprietary_data_mgmt: f64,
    pub cloud_data_mgmt: f64,
    /// Fraction of systems with at least OK in-DB ML support.
    pub in_db_ml_share: f64,
}

pub fn trends() -> Trends {
    let (mut prop, mut cloud) = (vec![], vec![]);
    for (i, s) in SYSTEMS.iter().enumerate() {
        let score = area_score(i, Area::DataManagement);
        if s.proprietary {
            prop.push(score);
        } else {
            cloud.push(score);
        }
    }
    let in_db_row = FEATURES.iter().position(|(n, _)| *n == "In-DB ML").unwrap();
    let in_db = MATRIX[in_db_row]
        .iter()
        .filter(|s| s.score() > 0.0)
        .count() as f64
        / SYSTEMS.len() as f64;
    Trends {
        proprietary_data_mgmt: prop.iter().sum::<f64>() / prop.len() as f64,
        cloud_data_mgmt: cloud.iter().sum::<f64>() / cloud.len() as f64,
        in_db_ml_share: in_db,
    }
}

/// Render the matrix as the paper's figure (text form).
pub fn render_matrix() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", ""));
    for s in &SYSTEMS {
        out.push_str(&format!("{:>10}", s.name));
    }
    out.push('\n');
    let mut current_area = None;
    for (r, (name, area)) in FEATURES.iter().enumerate() {
        if current_area != Some(*area) {
            current_area = Some(*area);
            out.push_str(&format!(
                "-- {} --\n",
                match area {
                    Area::Training => "Training",
                    Area::Serving => "Serving",
                    Area::DataManagement => "Data Management",
                }
            ));
        }
        out.push_str(&format!("{name:<22}"));
        for cell in MATRIX[r].iter() {
            out.push_str(&format!("{:>10}", cell.glyph()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trend_1_proprietary_leads_data_management() {
        let t = trends();
        assert!(
            t.proprietary_data_mgmt > t.cloud_data_mgmt + 0.2,
            "proprietary {:.2} vs cloud {:.2}",
            t.proprietary_data_mgmt,
            t.cloud_data_mgmt
        );
    }

    #[test]
    fn paper_trend_2_in_db_ml_is_rare() {
        let t = trends();
        assert!(t.in_db_ml_share <= 0.2, "{}", t.in_db_ml_share);
    }

    #[test]
    fn matrix_dimensions_consistent() {
        assert_eq!(MATRIX.len(), FEATURES.len());
        for row in MATRIX.iter() {
            assert_eq!(row.len(), SYSTEMS.len());
        }
    }

    #[test]
    fn render_includes_all_systems_and_sections() {
        let s = render_matrix();
        for sys in &SYSTEMS {
            assert!(s.contains(sys.name));
        }
        assert!(s.contains("Data Management"));
        assert!(s.contains("In-DB ML"));
    }
}
