//! Error type shared across the SQL engine.

use std::fmt;

/// Errors produced by the SQL engine.
///
/// Every layer (lexer, parser, planner, optimizer, executor, catalog,
/// transaction manager) reports failures through this single enum so that
/// callers can match on the failure class without knowing which layer
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error: unexpected character or malformed literal.
    Lex(String),
    /// Syntax error from the parser.
    Parse(String),
    /// Name-resolution or semantic analysis error (unknown table/column,
    /// type mismatch, ambiguous reference, ...).
    Plan(String),
    /// Runtime error raised during execution (division by zero, cast
    /// failure, overflow, ...).
    Execution(String),
    /// Catalog error: object already exists / not found / version missing.
    Catalog(String),
    /// Transaction error: conflicts, invalid state transitions.
    Transaction(String),
    /// Permission denied by the access-control layer.
    AccessDenied(String),
    /// Constraint violation (arity/type mismatch on INSERT, ...).
    Constraint(String),
    /// Durability I/O failure (WAL append/fsync, checkpoint write) or an
    /// unrecoverable inconsistency found during recovery.
    Io(String),
    /// Query aborted by an explicit `Session::cancel()` (cooperative — the
    /// executor notices at the next morsel/row-stride boundary).
    Cancelled(String),
    /// Query aborted because its `statement_timeout` deadline passed.
    Timeout(String),
    /// Query rejected up front by the admission controller (too many
    /// concurrent queries on this database).
    Admission(String),
    /// Query aborted mid-run because it exceeded its per-query row or
    /// memory budget.
    Budget(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lexical error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
            SqlError::Catalog(m) => write!(f, "catalog error: {m}"),
            SqlError::Transaction(m) => write!(f, "transaction error: {m}"),
            SqlError::AccessDenied(m) => write!(f, "access denied: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Io(m) => write!(f, "io error: {m}"),
            SqlError::Cancelled(m) => write!(f, "query cancelled: {m}"),
            SqlError::Timeout(m) => write!(f, "statement timeout: {m}"),
            SqlError::Admission(m) => write!(f, "admission rejected: {m}"),
            SqlError::Budget(m) => write!(f, "budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = SqlError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        let e = SqlError::AccessDenied("user bob lacks SELECT on t".into());
        assert!(e.to_string().starts_with("access denied"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SqlError::Lex("x".into()), SqlError::Lex("x".into()));
        assert_ne!(SqlError::Lex("x".into()), SqlError::Parse("x".into()));
    }
}
