//! Error type shared across the SQL engine.

use std::fmt;

/// Errors produced by the SQL engine.
///
/// Every layer (lexer, parser, planner, optimizer, executor, catalog,
/// transaction manager) reports failures through this single enum so that
/// callers can match on the failure class without knowing which layer
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error: unexpected character or malformed literal.
    Lex(String),
    /// Syntax error from the parser.
    Parse(String),
    /// Name-resolution or semantic analysis error (unknown table/column,
    /// type mismatch, ambiguous reference, ...).
    Plan(String),
    /// Runtime error raised during execution (division by zero, cast
    /// failure, overflow, ...).
    Execution(String),
    /// Catalog error: object already exists / not found / version missing.
    Catalog(String),
    /// Transaction error: conflicts, invalid state transitions.
    Transaction(String),
    /// Permission denied by the access-control layer.
    AccessDenied(String),
    /// Constraint violation (arity/type mismatch on INSERT, ...).
    Constraint(String),
    /// Durability I/O failure (WAL append/fsync, checkpoint write) or an
    /// unrecoverable inconsistency found during recovery.
    Io(String),
    /// Query aborted by an explicit `Session::cancel()` (cooperative — the
    /// executor notices at the next morsel/row-stride boundary).
    Cancelled(String),
    /// Query aborted because its `statement_timeout` deadline passed.
    Timeout(String),
    /// Query rejected up front by the admission controller (too many
    /// concurrent queries on this database).
    Admission(String),
    /// Query aborted mid-run because it exceeded its per-query row or
    /// memory budget.
    Budget(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lexical error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
            SqlError::Catalog(m) => write!(f, "catalog error: {m}"),
            SqlError::Transaction(m) => write!(f, "transaction error: {m}"),
            SqlError::AccessDenied(m) => write!(f, "access denied: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Io(m) => write!(f, "io error: {m}"),
            SqlError::Cancelled(m) => write!(f, "query cancelled: {m}"),
            SqlError::Timeout(m) => write!(f, "statement timeout: {m}"),
            SqlError::Admission(m) => write!(f, "admission rejected: {m}"),
            SqlError::Budget(m) => write!(f, "budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl SqlError {
    /// Stable, machine-readable error code — one per variant. This is the
    /// contract network clients program against: codes never change once
    /// shipped, while `Display` messages may be reworded freely.
    pub fn code(&self) -> &'static str {
        match self {
            SqlError::Lex(_) => "lex",
            SqlError::Parse(_) => "parse",
            SqlError::Plan(_) => "plan",
            SqlError::Execution(_) => "execution",
            SqlError::Catalog(_) => "catalog",
            SqlError::Transaction(_) => "transaction",
            SqlError::AccessDenied(_) => "access_denied",
            SqlError::Constraint(_) => "constraint",
            SqlError::Io(_) => "io",
            SqlError::Cancelled(_) => "cancelled",
            SqlError::Timeout(_) => "timeout",
            SqlError::Admission(_) => "admission",
            SqlError::Budget(_) => "budget",
        }
    }

    /// Whether re-submitting the identical statement may succeed without
    /// any client-side change. Only [`SqlError::Admission`] qualifies: the
    /// database was merely full at that instant. A `timeout` or `budget`
    /// failure will recur until the client changes its limits, and a
    /// `cancelled` statement was aborted on purpose.
    pub fn retryable(&self) -> bool {
        matches!(self, SqlError::Admission(_))
    }

    /// The variant's inner message, without the `Display` layer prefix.
    pub fn message(&self) -> &str {
        match self {
            SqlError::Lex(m)
            | SqlError::Parse(m)
            | SqlError::Plan(m)
            | SqlError::Execution(m)
            | SqlError::Catalog(m)
            | SqlError::Transaction(m)
            | SqlError::AccessDenied(m)
            | SqlError::Constraint(m)
            | SqlError::Io(m)
            | SqlError::Cancelled(m)
            | SqlError::Timeout(m)
            | SqlError::Admission(m)
            | SqlError::Budget(m) => m,
        }
    }

    /// Wire-safe form: `{code, message, retryable}`.
    pub fn to_wire(&self) -> WireError {
        WireError {
            code: self.code().to_string(),
            message: self.message().to_string(),
            retryable: self.retryable(),
        }
    }

    /// Rebuild the typed error from a stable code + message (the client
    /// side of the wire contract). Unknown codes — a newer server talking
    /// to an older client — degrade to [`SqlError::Execution`] rather than
    /// failing, so old clients keep working.
    pub fn from_code(code: &str, message: &str) -> SqlError {
        let m = message.to_string();
        match code {
            "lex" => SqlError::Lex(m),
            "parse" => SqlError::Parse(m),
            "plan" => SqlError::Plan(m),
            "execution" => SqlError::Execution(m),
            "catalog" => SqlError::Catalog(m),
            "transaction" => SqlError::Transaction(m),
            "access_denied" => SqlError::AccessDenied(m),
            "constraint" => SqlError::Constraint(m),
            "io" => SqlError::Io(m),
            "cancelled" => SqlError::Cancelled(m),
            "timeout" => SqlError::Timeout(m),
            "admission" => SqlError::Admission(m),
            "budget" => SqlError::Budget(m),
            other => SqlError::Execution(format!("[{other}] {message}")),
        }
    }
}

/// A [`SqlError`] serialized for the wire: stable `code`, human `message`,
/// and a `retryable` hint so clients can shed or retry load without
/// string-matching error text.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    pub code: String,
    pub message: String,
    pub retryable: bool,
}

impl WireError {
    /// Reconstruct the typed error (inverse of [`SqlError::to_wire`]).
    pub fn to_sql_error(&self) -> SqlError {
        SqlError::from_code(&self.code, &self.message)
    }

    /// Explicit JSON form, `{"code","message","retryable"}`. The wire
    /// protocol builds documents by hand at the `serde_json::Value` level
    /// so the byte layout is pinned by this code, not by derive internals.
    pub fn to_json(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        m.insert("code".to_string(), serde_json::Value::String(self.code.clone()));
        m.insert(
            "message".to_string(),
            serde_json::Value::String(self.message.clone()),
        );
        m.insert("retryable".to_string(), serde_json::Value::Bool(self.retryable));
        serde_json::Value::Object(m)
    }

    /// Parse the JSON form; `None` if any field is missing or mistyped.
    pub fn from_json(v: &serde_json::Value) -> Option<WireError> {
        Some(WireError {
            code: v.get("code")?.as_str()?.to_string(),
            message: v.get("message")?.as_str()?.to_string(),
            retryable: v.get("retryable")?.as_bool()?,
        })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render through the reconstructed typed error so a round-tripped
        // error displays exactly like the original did on the server.
        write!(f, "{}", self.to_sql_error())
    }
}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = SqlError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        let e = SqlError::AccessDenied("user bob lacks SELECT on t".into());
        assert!(e.to_string().starts_with("access denied"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SqlError::Lex("x".into()), SqlError::Lex("x".into()));
        assert_ne!(SqlError::Lex("x".into()), SqlError::Parse("x".into()));
    }

    /// Every variant, for exhaustive sweeps over the wire contract.
    fn all_variants() -> Vec<SqlError> {
        vec![
            SqlError::Lex("m".into()),
            SqlError::Parse("m".into()),
            SqlError::Plan("m".into()),
            SqlError::Execution("m".into()),
            SqlError::Catalog("m".into()),
            SqlError::Transaction("m".into()),
            SqlError::AccessDenied("m".into()),
            SqlError::Constraint("m".into()),
            SqlError::Io("m".into()),
            SqlError::Cancelled("m".into()),
            SqlError::Timeout("m".into()),
            SqlError::Admission("m".into()),
            SqlError::Budget("m".into()),
        ]
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let variants = all_variants();
        let codes: std::collections::HashSet<_> =
            variants.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), variants.len(), "codes must be distinct");
        // The shipped contract: these exact strings, forever.
        assert_eq!(SqlError::Admission("x".into()).code(), "admission");
        assert_eq!(SqlError::Plan("x".into()).code(), "plan");
        assert_eq!(SqlError::AccessDenied("x".into()).code(), "access_denied");
    }

    #[test]
    fn wire_roundtrip_preserves_variant_message_and_display() {
        for e in all_variants() {
            let wire = e.to_wire();
            let back = wire.to_sql_error();
            assert_eq!(back, e, "round-trip must reproduce the variant");
            assert_eq!(back.to_string(), e.to_string());
            assert_eq!(wire.to_string(), e.to_string());
            // And through JSON text, as the server actually ships it.
            let json = wire.to_json().to_string();
            let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
            let parsed = WireError::from_json(&doc).unwrap();
            assert_eq!(parsed, wire);
            assert_eq!(parsed.to_sql_error(), e);
        }
    }

    #[test]
    fn only_admission_is_retryable() {
        for e in all_variants() {
            assert_eq!(
                e.retryable(),
                matches!(e, SqlError::Admission(_)),
                "{e:?}"
            );
        }
    }

    #[test]
    fn malformed_wire_json_is_rejected_not_panicked() {
        for bad in [
            "null",
            "{}",
            r#"{"code":"plan"}"#,
            r#"{"code":1,"message":"m","retryable":false}"#,
            r#"{"code":"plan","message":"m","retryable":"yes"}"#,
        ] {
            let doc: serde_json::Value = serde_json::from_str(bad).unwrap();
            assert!(WireError::from_json(&doc).is_none(), "{bad}");
        }
    }

    #[test]
    fn unknown_code_degrades_to_execution() {
        let e = SqlError::from_code("fancy_new_code", "details");
        assert!(matches!(&e, SqlError::Execution(m) if m.contains("fancy_new_code")));
        assert!(e.to_string().contains("details"));
    }
}
