//! Logical plans and the AST→plan translator (name resolution, wildcard
//! expansion, aggregate extraction, subquery flattening, type inference).

use crate::ast::{
    Expr, JoinType, OrderItem, Query, Select, SelectItem, TableRef,
};
use crate::batch::RecordBatch;
use crate::catalog::Catalog;
use crate::error::{Result, SqlError};
use crate::schema::{ColumnDef, Schema};
use crate::types::{DataType, Value};
use crate::udf::InferenceProvider;
use std::fmt::Write as _;
use std::sync::Arc;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Population variance.
    Variance,
    /// Population standard deviation.
    StdDev,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "VARIANCE" | "VAR" | "VAR_POP" => Some(AggFunc::Variance),
            "STDDEV" | "STDDEV_POP" | "STD" => Some(AggFunc::StdDev),
            _ => None,
        }
    }
}

/// One aggregate call within an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// `None` for COUNT(*).
    pub arg: Option<Expr>,
    pub distinct: bool,
}

/// A relational logical plan. All embedded expressions are *resolved*:
/// every `Expr::Column` has no qualifier and names exactly one column of
/// the node's input schema.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Table (or table-version) scan. `projection` is set by the
    /// projection-pruning optimizer rule; `schema` always describes the
    /// node output (post-projection, possibly with scope-renamed labels).
    Scan {
        table: String,
        version: Option<u64>,
        projection: Option<Vec<usize>>,
        schema: Arc<Schema>,
    },
    /// Literal rows (used for FROM-less SELECT).
    Values {
        schema: Arc<Schema>,
        rows: Vec<Vec<Expr>>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        schema: Arc<Schema>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group: Vec<Expr>,
        aggs: Vec<AggCall>,
        schema: Arc<Schema>,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        join_type: JoinType,
        /// Equi-join key pairs (left expr, right expr).
        on: Vec<(Expr, Expr)>,
        /// Residual non-equi condition evaluated on joined rows.
        filter: Option<Expr>,
        schema: Arc<Schema>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(Expr, bool)>,
    },
    Limit {
        input: Box<LogicalPlan>,
        limit: Option<u64>,
        offset: u64,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
    /// UNION ALL of inputs with identical arity and unified column types
    /// (plain UNION is planned as Distinct(Union)). Output schema takes
    /// the first input's column names.
    Union {
        inputs: Vec<LogicalPlan>,
        schema: Arc<Schema>,
    },
}

impl LogicalPlan {
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Values { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Union { schema, .. }
            | LogicalPlan::Join { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// Pre-order traversal over plan nodes.
    pub fn visit(&self, f: &mut impl FnMut(&LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.visit(f),
            LogicalPlan::Join { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            LogicalPlan::Union { inputs, .. } => {
                for i in inputs {
                    i.visit(f);
                }
            }
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => {}
        }
    }

    /// Visit every expression embedded in this plan (and children).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.visit(&mut |node| match node {
            LogicalPlan::Filter { predicate, .. } => f(predicate),
            LogicalPlan::Project { exprs, .. } => exprs.iter().for_each(&mut *f),
            LogicalPlan::Aggregate { group, aggs, .. } => {
                group.iter().for_each(&mut *f);
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        f(arg);
                    }
                }
            }
            LogicalPlan::Join { on, filter, .. } => {
                for (l, r) in on {
                    f(l);
                    f(r);
                }
                if let Some(x) = filter {
                    f(x);
                }
            }
            LogicalPlan::Sort { keys, .. } => {
                for (e, _) in keys {
                    f(e);
                }
            }
            LogicalPlan::Values { rows, .. } => {
                for row in rows {
                    row.iter().for_each(&mut *f);
                }
            }
            LogicalPlan::Scan { .. }
            | LogicalPlan::Limit { .. }
            | LogicalPlan::Distinct { .. }
            | LogicalPlan::Union { .. } => {}
        });
    }

    /// Multi-line indented EXPLAIN rendering.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan {
                table,
                version,
                projection,
                schema,
            } => {
                let _ = write!(out, "{pad}Scan: {table}");
                if let Some(v) = version {
                    let _ = write!(out, " VERSION {v}");
                }
                if let Some(p) = projection {
                    let _ = write!(out, " projection={p:?}");
                }
                let _ = writeln!(out, " -> {}", schema.names().join(", "));
            }
            LogicalPlan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}Values: {} row(s)", rows.len());
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter: {predicate}");
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(schema.names())
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect();
                let _ = writeln!(out, "{pad}Project: {}", items.join(", "));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group,
                aggs,
                ..
            } => {
                let g: Vec<String> = group.iter().map(|e| e.to_string()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|c| {
                        format!(
                            "{:?}({})",
                            c.func,
                            c.arg.as_ref().map_or("*".into(), |e| e.to_string())
                        )
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate: group=[{}] aggs=[{}]",
                    g.join(", "),
                    a.join(", ")
                );
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                on,
                filter,
                ..
            } => {
                let keys: Vec<String> =
                    on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                let _ = write!(out, "{pad}Join({join_type:?}): on=[{}]", keys.join(", "));
                if let Some(f) = filter {
                    let _ = write!(out, " filter={f}");
                }
                out.push('\n');
                left.explain_into(out, indent + 1);
                right.explain_into(out, indent + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, asc)| format!("{e} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort: {}", ks.join(", "));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                let _ = writeln!(out, "{pad}Limit: {limit:?} offset={offset}");
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Union { inputs, .. } => {
                let _ = writeln!(out, "{pad}Union: {} arm(s)", inputs.len());
                for i in inputs {
                    i.explain_into(out, indent + 1);
                }
            }
        }
    }
}

/// Bottom-up expression rewrite.
pub fn rewrite_expr(expr: Expr, f: &mut impl FnMut(Expr) -> Result<Expr>) -> Result<Expr> {
    let rewritten = match expr {
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_expr(*left, f)?),
            op,
            right: Box::new(rewrite_expr(*right, f)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(rewrite_expr(*expr, f)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_expr(*expr, f)?),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_expr(*expr, f)?),
            list: list
                .into_iter()
                .map(|e| rewrite_expr(e, f))
                .collect::<Result<_>>()?,
            negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_expr(*expr, f)?),
            low: Box::new(rewrite_expr(*low, f)?),
            high: Box::new(rewrite_expr(*high, f)?),
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_expr(*expr, f)?),
            pattern: Box::new(rewrite_expr(*pattern, f)?),
            negated,
        },
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(rewrite_expr(*o, f)?)),
                None => None,
            },
            when_then: when_then
                .into_iter()
                .map(|(w, t)| Ok((rewrite_expr(w, f)?, rewrite_expr(t, f)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(rewrite_expr(*e, f)?)),
                None => None,
            },
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => Expr::Function {
            name,
            args: args
                .into_iter()
                .map(|e| rewrite_expr(e, f))
                .collect::<Result<_>>()?,
            distinct,
        },
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(rewrite_expr(*expr, f)?),
            to,
        },
        Expr::Predict {
            model,
            args,
            strategy,
        } => Expr::Predict {
            model,
            args: args
                .into_iter()
                .map(|e| rewrite_expr(e, f))
                .collect::<Result<_>>()?,
            strategy,
        },
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(rewrite_expr(*expr, f)?),
            query,
            negated,
        },
        leaf @ (Expr::Column { .. }
        | Expr::Literal(_)
        | Expr::Exists { .. }
        | Expr::Subquery(_)
        | Expr::Wildcard
        | Expr::Parameter(_)) => leaf,
    };
    f(rewritten)
}

/// Runs nested (uncorrelated) subqueries for the planner.
pub trait SubqueryRunner {
    fn run(&self, query: &Query) -> Result<RecordBatch>;
}

/// A plan-rewriting extension, applied by the engine after planning and
/// before the relational optimizer. Flock's SQL×ML cross-optimizer is
/// registered through this hook.
pub trait PlanRewriter: Send + Sync {
    fn rewrite(&self, plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan>;
}

/// Everything the planner needs from its environment.
pub struct PlanContext<'a> {
    pub catalog: &'a Catalog,
    pub provider: &'a dyn InferenceProvider,
    pub subqueries: Option<&'a dyn SubqueryRunner>,
    /// View-expansion recursion guard.
    pub view_depth: usize,
}

impl<'a> PlanContext<'a> {
    pub fn new(catalog: &'a Catalog, provider: &'a dyn InferenceProvider) -> Self {
        PlanContext {
            catalog,
            provider,
            subqueries: None,
            view_depth: 0,
        }
    }

    pub fn with_subqueries(mut self, runner: &'a dyn SubqueryRunner) -> Self {
        self.subqueries = Some(runner);
        self
    }
}

/// One visible column in the current name-resolution scope.
#[derive(Debug, Clone)]
struct Field {
    /// Table alias / table name / subquery alias.
    qualifier: Option<String>,
    /// Name the user refers to.
    base_name: String,
    /// Unique column name in the plan's output schema.
    out_name: String,
}

struct Scope {
    fields: Vec<Field>,
}

impl Scope {
    fn resolve(&self, qualifier: &Option<String>, name: &str) -> Result<&Field> {
        let matches: Vec<&Field> = self
            .fields
            .iter()
            .filter(|f| {
                let qual_ok = match qualifier {
                    Some(q) => f
                        .qualifier
                        .as_deref()
                        .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
                    None => true,
                };
                qual_ok
                    && (f.base_name.eq_ignore_ascii_case(name)
                        || f.out_name.eq_ignore_ascii_case(name))
            })
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(SqlError::Plan(format!(
                "unknown column '{}{name}'",
                qualifier
                    .as_deref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            ))),
            _ => Err(SqlError::Plan(format!("ambiguous column '{name}'"))),
        }
    }
}

/// Plan a query into a logical plan.
pub fn plan_query(query: &Query, ctx: &PlanContext) -> Result<LogicalPlan> {
    Planner { ctx }.plan_query(query)
}

struct Planner<'a, 'b> {
    ctx: &'b PlanContext<'a>,
}

impl<'a, 'b> Planner<'a, 'b> {
    fn plan_query(&self, query: &Query) -> Result<LogicalPlan> {
        let (mut plan, scope) = self.plan_select(&query.select, &query.order_by)?;

        if !query.unions.is_empty() {
            plan = self.plan_union(plan, &query.unions)?;
        }

        // ORDER BY: resolve against output schema (aliases + ordinals),
        // falling back to hidden sort columns computed over the input of
        // the final projection.
        if !query.order_by.is_empty() {
            plan = self.plan_order_by(plan, &scope, query)?;
        }

        if query.limit.is_some() || query.offset.is_some() {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                limit: query.limit,
                offset: query.offset.unwrap_or(0),
            };
        }
        Ok(plan)
    }

    /// Returns the plan plus the scope of the *final projection's input*
    /// (used for hidden sort keys).
    fn plan_select(
        &self,
        select: &Select,
        order_by: &[OrderItem],
    ) -> Result<(LogicalPlan, SelectScopes)> {
        // 1. FROM
        let (mut plan, scope) = if select.from.is_empty() {
            // A unit row: RecordBatch cannot represent 0 columns × 1 row,
            // so FROM-less SELECT scans a one-row dummy relation.
            let schema = Arc::new(Schema::from_pairs(&[("#dummy", DataType::Int)]));
            (
                LogicalPlan::Values {
                    schema,
                    rows: vec![vec![Expr::Literal(Value::Int(0))]],
                },
                Scope { fields: vec![] },
            )
        } else {
            let mut iter = select.from.iter();
            let first = self.plan_table_ref(iter.next().unwrap())?;
            iter.try_fold(first, |acc, tr| {
                let right = self.plan_table_ref(tr)?;
                self.combine(acc, right, JoinType::Cross, &None)
            })?
        };

        // 2. WHERE
        if let Some(pred) = &select.selection {
            let resolved = self.resolve(pred.clone(), &scope)?;
            self.reject_aggregates(&resolved, "WHERE")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: resolved,
            };
        }

        // 3. expand projection wildcards
        let mut items: Vec<(Expr, String)> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    for f in &scope.fields {
                        items.push((Expr::col(&f.out_name), f.base_name.clone()));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut found = false;
                    for f in &scope.fields {
                        if f.qualifier
                            .as_deref()
                            .is_some_and(|fq| fq.eq_ignore_ascii_case(q))
                        {
                            items.push((Expr::col(&f.out_name), f.base_name.clone()));
                            found = true;
                        }
                    }
                    if !found {
                        return Err(SqlError::Plan(format!("unknown table alias '{q}'")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let display = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => other.to_string(),
                    });
                    let resolved = self.resolve(expr.clone(), &scope)?;
                    items.push((resolved, display));
                }
            }
        }
        if items.is_empty() {
            return Err(SqlError::Plan("empty SELECT list".into()));
        }

        // 4. aggregate handling
        let has_aggs = !select.group_by.is_empty()
            || items.iter().any(|(e, _)| contains_aggregate(e))
            || select.having.as_ref().is_some_and(contains_aggregate);

        let mut having = match &select.having {
            Some(h) => Some(self.resolve(h.clone(), &scope)?),
            None => None,
        };

        let mut agg_info: Option<(Vec<Expr>, Vec<AggCall>)> = None;
        if has_aggs || select.having.is_some() {
            let group: Vec<Expr> = select
                .group_by
                .iter()
                .map(|e| self.resolve(e.clone(), &scope))
                .collect::<Result<_>>()?;

            // Collect aggregate calls from projection + having.
            let mut aggs: Vec<AggCall> = Vec::new();
            let mut collect = |e: &Expr| collect_aggregates(e, &mut aggs);
            for (e, _) in &items {
                collect(e)?;
            }
            if let Some(h) = &having {
                collect_aggregates(h, &mut aggs)?;
            }
            // ORDER BY may sort on an aggregate that is not in the SELECT
            // list; collect those too so the sort key can be computed.
            for item in order_by {
                if contains_aggregate(&item.expr) {
                    if let Ok(resolved) = self.resolve(item.expr.clone(), &scope) {
                        collect_aggregates(&resolved, &mut aggs)?;
                    }
                }
            }

            // Output schema of the aggregate node: #g0..#gN, #a0..#aM.
            let input_schema = plan.schema().clone();
            let mut agg_cols: Vec<ColumnDef> = Vec::new();
            for (i, g) in group.iter().enumerate() {
                let ty = expr_type(g, &input_schema, self.ctx.provider)?
                    .unwrap_or(DataType::Text);
                agg_cols.push(ColumnDef::new(format!("#g{i}"), ty));
            }
            for (i, a) in aggs.iter().enumerate() {
                let ty = agg_output_type(a, &input_schema, self.ctx.provider)?;
                agg_cols.push(ColumnDef::new(format!("#a{i}"), ty));
            }
            let agg_schema = Arc::new(Schema::new(agg_cols));
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group: group.clone(),
                aggs: aggs.clone(),
                schema: agg_schema.clone(),
            };

            // Rewrite projection + having over the aggregate output.
            let rewrite = |e: Expr| -> Result<Expr> {
                substitute_agg_refs(e, &group, &aggs)
            };
            let mut new_items = Vec::with_capacity(items.len());
            for (e, name) in items {
                let e = rewrite(e)?;
                ensure_fully_aggregated(&e, &agg_schema)?;
                new_items.push((e, name));
            }
            items = new_items;
            if let Some(h) = having.take() {
                let h = rewrite(h)?;
                ensure_fully_aggregated(&h, &agg_schema)?;
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: h,
                };
            }

            agg_info = Some((group, aggs));
        }

        // 5. final projection
        let input_schema = plan.schema().clone();
        let names = unique_names(items.iter().map(|(_, n)| n.clone()).collect());
        let mut cols = Vec::with_capacity(items.len());
        for ((e, _), name) in items.iter().zip(&names) {
            let ty = expr_type(e, &input_schema, self.ctx.provider)?.unwrap_or(DataType::Text);
            cols.push(ColumnDef::new(name.clone(), ty));
        }
        let proj_schema = Arc::new(Schema::new(cols));
        let exprs: Vec<Expr> = items.into_iter().map(|(e, _)| e).collect();
        let input_of_project = plan;
        let plan = LogicalPlan::Project {
            input: Box::new(input_of_project),
            exprs: exprs.clone(),
            schema: proj_schema,
        };

        let mut plan = plan;
        if select.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        Ok((
            plan,
            SelectScopes {
                from_scope: scope,
                agg_info,
            },
        ))
    }

    /// Combine UNION arms: equal arity, per-column type unification with
    /// inserted casts; plain UNION gets a Distinct on top.
    fn plan_union(
        &self,
        first: LogicalPlan,
        arms: &[crate::ast::UnionArm],
    ) -> Result<LogicalPlan> {
        let mut inputs = vec![first];
        let mut all_flags = vec![true];
        for arm in arms {
            let (plan, _) = self.plan_select(&arm.select, &[])?;
            inputs.push(plan);
            all_flags.push(arm.all);
        }
        let arity = inputs[0].schema().len();
        for (i, p) in inputs.iter().enumerate() {
            if p.schema().len() != arity {
                return Err(SqlError::Plan(format!(
                    "UNION arm {i} has {} columns, expected {arity}",
                    p.schema().len()
                )));
            }
        }
        // unify column types
        let mut types = Vec::with_capacity(arity);
        for c in 0..arity {
            let mut ty = inputs[0].schema().column(c).data_type;
            for p in &inputs[1..] {
                let other = p.schema().column(c).data_type;
                ty = ty.unify(other).ok_or_else(|| {
                    SqlError::Plan(format!(
                        "UNION column {c} has incompatible types {ty} and {other}"
                    ))
                })?;
            }
            types.push(ty);
        }
        let names: Vec<String> = inputs[0]
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out_schema = Arc::new(Schema::new(
            names
                .iter()
                .zip(&types)
                .map(|(n, t)| ColumnDef::new(n.clone(), *t))
                .collect(),
        ));
        // insert casting/renaming projections where needed
        let inputs: Vec<LogicalPlan> = inputs
            .into_iter()
            .map(|p| {
                let needs_work = (0..arity).any(|c| {
                    p.schema().column(c).data_type != types[c]
                        || p.schema().column(c).name != names[c]
                });
                if !needs_work {
                    return p;
                }
                let exprs: Vec<Expr> = (0..arity)
                    .map(|c| {
                        let col = Expr::col(p.schema().column(c).name.as_str());
                        if p.schema().column(c).data_type == types[c] {
                            col
                        } else {
                            Expr::Cast {
                                expr: Box::new(col),
                                to: types[c],
                            }
                        }
                    })
                    .collect();
                LogicalPlan::Project {
                    input: Box::new(p),
                    exprs,
                    schema: out_schema.clone(),
                }
            })
            .collect();
        let union = LogicalPlan::Union {
            inputs,
            schema: out_schema,
        };
        // SQL: any non-ALL arm makes the whole result set-distinct
        if all_flags.iter().skip(1).any(|all| !all) {
            Ok(LogicalPlan::Distinct {
                input: Box::new(union),
            })
        } else {
            Ok(union)
        }
    }

    fn plan_order_by(
        &self,
        plan: LogicalPlan,
        scopes: &SelectScopes,
        query: &Query,
    ) -> Result<LogicalPlan> {
        // The plan ends with (Distinct?)(Project(...)). We sort above when
        // keys resolve to output columns; otherwise we extend the project
        // with hidden columns, sort, and re-project.
        let out_schema = plan.schema().clone();
        let mut direct_keys: Vec<(Expr, bool)> = Vec::new();
        let mut hidden: Vec<(Expr, bool)> = Vec::new();
        for item in &query.order_by {
            // ordinal?
            if let Expr::Literal(Value::Int(i)) = item.expr {
                let idx = i as usize;
                if idx == 0 || idx > out_schema.len() {
                    return Err(SqlError::Plan(format!(
                        "ORDER BY position {idx} is out of range"
                    )));
                }
                direct_keys.push((
                    Expr::col(out_schema.column(idx - 1).name.as_str()),
                    item.asc,
                ));
                continue;
            }
            // output column / alias?
            if let Expr::Column { qualifier: None, name } = &item.expr {
                if out_schema.index_of(name).is_some() {
                    direct_keys.push((Expr::col(name), item.asc));
                    continue;
                }
            }
            // hidden key computed over the final projection's input
            let resolved = self.resolve(item.expr.clone(), &scopes.from_scope)?;
            let resolved = match &scopes.agg_info {
                Some((group, aggs)) => {
                    let e = substitute_agg_refs(resolved, group, aggs)?;
                    // any leftover raw column is a non-grouped reference
                    if contains_aggregate(&e) {
                        return Err(SqlError::Plan(
                            "ORDER BY aggregate must also appear in the SELECT list or \
                             GROUP BY"
                                .into(),
                        ));
                    }
                    e
                }
                None => resolved,
            };
            hidden.push((resolved, item.asc));
        }

        if hidden.is_empty() {
            return Ok(LogicalPlan::Sort {
                input: Box::new(plan),
                keys: direct_keys,
            });
        }

        // Rebuild: extend the final Project with hidden sort columns.
        let (distinct, project) = match plan {
            LogicalPlan::Distinct { input } => (true, *input),
            other => (false, other),
        };
        let LogicalPlan::Project {
            input,
            mut exprs,
            schema,
        } = project
        else {
            return Err(SqlError::Plan(
                "ORDER BY expression does not reference the output".into(),
            ));
        };
        if distinct {
            return Err(SqlError::Plan(
                "ORDER BY expressions must appear in the SELECT list when DISTINCT is used"
                    .into(),
            ));
        }
        let visible = schema.len();
        let mut cols: Vec<ColumnDef> = schema.columns().to_vec();
        let mut keys = direct_keys;
        let input_schema = input.schema().clone();
        for (i, (e, asc)) in hidden.into_iter().enumerate() {
            // For aggregate queries the hidden key may reference #g/#a
            // columns; those exist in the input schema already.
            let name = format!("#s{i}");
            let ty = expr_type(&e, &input_schema, self.ctx.provider)?.unwrap_or(DataType::Text);
            cols.push(ColumnDef::new(name.clone(), ty));
            exprs.push(e);
            keys.push((Expr::col(&name), asc));
        }
        let extended = LogicalPlan::Project {
            input,
            exprs,
            schema: Arc::new(Schema::new(cols)),
        };
        let sorted = LogicalPlan::Sort {
            input: Box::new(extended),
            keys,
        };
        // final re-projection to visible columns
        let final_exprs: Vec<Expr> = (0..visible)
            .map(|i| Expr::col(schema.column(i).name.as_str()))
            .collect();
        Ok(LogicalPlan::Project {
            input: Box::new(sorted),
            exprs: final_exprs,
            schema,
        })
    }

    fn plan_table_ref(&self, tr: &TableRef) -> Result<(LogicalPlan, Scope)> {
        match tr {
            TableRef::Table {
                name,
                alias,
                version,
            } => {
                if let Some(view) = self.ctx.catalog.view(name) {
                    if self.ctx.view_depth > 16 {
                        return Err(SqlError::Plan(format!(
                            "view expansion too deep at '{name}'"
                        )));
                    }
                    let stmt = crate::parser::parse_statement(&view.sql)?;
                    let crate::ast::Statement::Query(q) = stmt else {
                        return Err(SqlError::Plan(format!("view '{name}' is not a query")));
                    };
                    let nested_ctx = PlanContext {
                        catalog: self.ctx.catalog,
                        provider: self.ctx.provider,
                        subqueries: self.ctx.subqueries,
                        view_depth: self.ctx.view_depth + 1,
                    };
                    let plan = Planner { ctx: &nested_ctx }.plan_query(&q)?;
                    let qual = alias.clone().unwrap_or_else(|| name.clone());
                    let scope = Scope {
                        fields: plan
                            .schema()
                            .names()
                            .iter()
                            .map(|n| Field {
                                qualifier: Some(qual.clone()),
                                base_name: n.to_string(),
                                out_name: n.to_string(),
                            })
                            .collect(),
                    };
                    return Ok((plan, scope));
                }
                let table = self.ctx.catalog.table(name)?;
                // time-travel reads use the schema live at that version
                // (ALTER TABLE may have changed it since)
                let schema = match version {
                    Some(v) => table.at_version(*v)?.data.schema().clone(),
                    None => table.schema().clone(),
                };
                let qual = alias.clone().unwrap_or_else(|| name.clone());
                let scope = Scope {
                    fields: schema
                        .names()
                        .iter()
                        .map(|n| Field {
                            qualifier: Some(qual.clone()),
                            base_name: n.to_string(),
                            out_name: n.to_string(),
                        })
                        .collect(),
                };
                Ok((
                    LogicalPlan::Scan {
                        table: table.name().to_string(),
                        version: *version,
                        projection: None,
                        schema,
                    },
                    scope,
                ))
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.plan_query(query)?;
                let scope = Scope {
                    fields: plan
                        .schema()
                        .names()
                        .iter()
                        .map(|n| Field {
                            qualifier: Some(alias.clone()),
                            base_name: n.to_string(),
                            out_name: n.to_string(),
                        })
                        .collect(),
                };
                Ok((plan, scope))
            }
            TableRef::Join {
                left,
                right,
                join_type,
                on,
            } => {
                let l = self.plan_table_ref(left)?;
                let r = self.plan_table_ref(right)?;
                self.combine(l, r, *join_type, on)
            }
        }
    }

    /// Join two planned FROM items, deduplicating output column names and
    /// splitting the ON condition into equi pairs and a residual filter.
    fn combine(
        &self,
        (lp, ls): (LogicalPlan, Scope),
        (rp, rs): (LogicalPlan, Scope),
        join_type: JoinType,
        on: &Option<Expr>,
    ) -> Result<(LogicalPlan, Scope)> {
        // Deduplicate names across the two sides.
        let mut fields: Vec<Field> = ls.fields.clone();
        fields.extend(rs.fields.iter().cloned());
        let mut names: Vec<String> = fields.iter().map(|f| f.out_name.clone()).collect();
        dedup_names(&mut names, &fields);
        for (f, n) in fields.iter_mut().zip(&names) {
            f.out_name = n.clone();
        }

        // Rename plan outputs where needed (cheap projection; pruned later).
        let lr = rename_if_needed(lp, &names[..ls.fields.len()]);
        let rr = rename_if_needed(rp, &names[ls.fields.len()..]);

        let mut cols: Vec<ColumnDef> = lr.schema().columns().to_vec();
        cols.extend(rr.schema().columns().iter().cloned());
        let schema = Arc::new(Schema::new(cols));

        let scope = Scope { fields };
        let left_cols: std::collections::HashSet<String> = lr
            .schema()
            .names()
            .iter()
            .map(|s| s.to_ascii_lowercase())
            .collect();

        let (on_pairs, residual) = match on {
            None => (vec![], None),
            Some(cond) => {
                let resolved = self.resolve(cond.clone(), &scope)?;
                split_join_condition(resolved, &left_cols)
            }
        };

        let plan = LogicalPlan::Join {
            left: Box::new(lr),
            right: Box::new(rr),
            join_type: if join_type == JoinType::Cross {
                JoinType::Inner
            } else {
                join_type
            },
            on: on_pairs,
            filter: residual,
            schema,
        };
        Ok((plan, scope))
    }

    /// Resolve column references and flatten uncorrelated subqueries.
    fn resolve(&self, expr: Expr, scope: &Scope) -> Result<Expr> {
        rewrite_expr(expr, &mut |e| match e {
            Expr::Column { qualifier, name } => {
                let f = scope.resolve(&qualifier, &name)?;
                Ok(Expr::col(&f.out_name))
            }
            Expr::Subquery(q) => {
                let batch = self.run_subquery(&q)?;
                if batch.num_rows() > 1 || batch.num_columns() != 1 {
                    return Err(SqlError::Plan(
                        "scalar subquery must return one column and at most one row".into(),
                    ));
                }
                let v = if batch.num_rows() == 0 {
                    Value::Null
                } else {
                    batch.column(0).get(0)
                };
                Ok(Expr::Literal(v))
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let batch = self.run_subquery(&query)?;
                if batch.num_columns() != 1 {
                    return Err(SqlError::Plan(
                        "IN subquery must return exactly one column".into(),
                    ));
                }
                let list: Vec<Expr> = (0..batch.num_rows())
                    .map(|i| Expr::Literal(batch.column(0).get(i)))
                    .collect();
                Ok(Expr::InList {
                    expr,
                    list,
                    negated,
                })
            }
            Expr::Exists { query, negated } => {
                let batch = self.run_subquery(&query)?;
                let exists = batch.num_rows() > 0;
                Ok(Expr::Literal(Value::Bool(exists != negated)))
            }
            // Parameters survive planning so a prepared plan can be cached
            // and re-executed with fresh bindings; missing values surface as
            // typed execution errors at execute time.
            p @ Expr::Parameter(_) => Ok(p),
            other => Ok(other),
        })
    }

    fn run_subquery(&self, q: &Query) -> Result<RecordBatch> {
        let runner = self.ctx.subqueries.ok_or_else(|| {
            SqlError::Plan("subqueries are not supported in this context".into())
        })?;
        runner.run(q).map_err(|e| match e {
            SqlError::Plan(m) if m.starts_with("unknown column") => SqlError::Plan(format!(
                "{m} (correlated subqueries are not supported)"
            )),
            other => other,
        })
    }

    fn reject_aggregates(&self, e: &Expr, clause: &str) -> Result<()> {
        if contains_aggregate(e) {
            return Err(SqlError::Plan(format!(
                "aggregate functions are not allowed in {clause}"
            )));
        }
        Ok(())
    }
}

/// Scopes carried out of `plan_select` for ORDER BY planning.
struct SelectScopes {
    /// The FROM-clause scope (base columns), used to resolve sort keys
    /// that are not in the SELECT list.
    from_scope: Scope,
    /// For aggregate queries: the group exprs and agg calls, so hidden
    /// sort keys can be rewritten onto the aggregate output.
    agg_info: Option<(Vec<Expr>, Vec<AggCall>)>,
}

fn dedup_names(names: &mut [String], fields: &[Field]) {
    use std::collections::HashMap;
    let mut counts: HashMap<String, usize> = HashMap::new();
    for n in names.iter() {
        *counts.entry(n.to_ascii_lowercase()).or_default() += 1;
    }
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (i, n) in names.iter_mut().enumerate() {
        if counts[&n.to_ascii_lowercase()] > 1 {
            let qual = fields[i].qualifier.clone().unwrap_or_default();
            let candidate = format!("{qual}.{n}");
            let k = seen.entry(candidate.to_ascii_lowercase()).or_default();
            *n = if *k == 0 {
                candidate
            } else {
                format!("{candidate}#{k}")
            };
            *k += 1;
        }
    }
}

/// Wrap `plan` in a renaming projection when its output names differ from
/// `names`.
fn rename_if_needed(plan: LogicalPlan, names: &[String]) -> LogicalPlan {
    let schema = plan.schema();
    let same = schema
        .names()
        .iter()
        .zip(names)
        .all(|(a, b)| *a == b.as_str());
    if same {
        return plan;
    }
    let cols: Vec<ColumnDef> = schema
        .columns()
        .iter()
        .zip(names)
        .map(|(c, n)| ColumnDef {
            name: n.clone(),
            data_type: c.data_type,
            nullable: c.nullable,
        })
        .collect();
    let exprs: Vec<Expr> = schema.names().iter().map(|n| Expr::col(n)).collect();
    LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Arc::new(Schema::new(cols)),
    }
}

/// Split a resolved join condition into equi pairs (left expr, right expr)
/// and a residual filter.
fn split_join_condition(
    cond: Expr,
    left_cols: &std::collections::HashSet<String>,
) -> (Vec<(Expr, Expr)>, Option<Expr>) {
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for part in cond.split_conjunction() {
        if let Expr::Binary {
            left,
            op: crate::ast::BinOp::Eq,
            right,
        } = part
        {
            let l_side = side_of(left, left_cols);
            let r_side = side_of(right, left_cols);
            match (l_side, r_side) {
                (Side::Left, Side::Right) => {
                    pairs.push(((**left).clone(), (**right).clone()));
                    continue;
                }
                (Side::Right, Side::Left) => {
                    pairs.push(((**right).clone(), (**left).clone()));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(part.clone());
    }
    (pairs, Expr::conjunction(residual))
}

#[derive(PartialEq, Clone, Copy)]
enum Side {
    Left,
    Right,
    Mixed,
    None,
}

fn side_of(e: &Expr, left_cols: &std::collections::HashSet<String>) -> Side {
    let mut cols = vec![];
    e.referenced_columns(&mut cols);
    if cols.is_empty() {
        return Side::None;
    }
    let mut l = false;
    let mut r = false;
    for (_, name) in cols {
        if left_cols.contains(&name.to_ascii_lowercase()) {
            l = true;
        } else {
            r = true;
        }
    }
    match (l, r) {
        (true, false) => Side::Left,
        (false, true) => Side::Right,
        _ => Side::Mixed,
    }
}

/// Is this expression (or any child) an aggregate function call?
pub fn contains_aggregate(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if let Expr::Function { name, .. } = x {
            if AggFunc::parse(name).is_some() {
                found = true;
            }
        }
    });
    found
}

fn collect_aggregates(e: &Expr, out: &mut Vec<AggCall>) -> Result<()> {
    e.walk(&mut |x| {
        if let Expr::Function {
            name,
            args,
            distinct,
        } = x
        {
            if let Some(func) = AggFunc::parse(name) {
                let arg = match args.as_slice() {
                    [Expr::Wildcard] => None,
                    [a] => Some(a.clone()),
                    _ => Some(Expr::Literal(Value::Null)), // flagged below
                };
                let call = AggCall {
                    func,
                    arg,
                    distinct: *distinct,
                };
                if !out.contains(&call) {
                    out.push(call);
                }
            }
        }
    });
    Ok(())
}

/// Replace group expressions and aggregate calls with references to the
/// aggregate node's output columns (#gN / #aN).
/// The traversal is top-down with short-circuiting: a matched group
/// expression or aggregate call is replaced wholesale, *without* rewriting
/// inside it — an aggregate's argument must stay exactly as collected
/// (e.g. `MAX(PREDICT(m, city))` keeps `city`, not `#g0`).
fn substitute_agg_refs(e: Expr, group: &[Expr], aggs: &[AggCall]) -> Result<Expr> {
    if let Some(i) = group.iter().position(|g| *g == e) {
        return Ok(Expr::col(&format!("#g{i}")));
    }
    if let Expr::Function {
        name,
        args,
        distinct,
    } = &e
    {
        if let Some(func) = AggFunc::parse(name) {
            let arg = match args.as_slice() {
                [Expr::Wildcard] => None,
                [a] => Some(a.clone()),
                _ => {
                    return Err(SqlError::Plan(format!(
                        "{name} takes exactly one argument"
                    )))
                }
            };
            let call = AggCall {
                func,
                arg,
                distinct: *distinct,
            };
            if let Some(i) = aggs.iter().position(|a| *a == call) {
                return Ok(Expr::col(&format!("#a{i}")));
            }
            return Err(SqlError::Plan(format!(
                "aggregate {name} was not collected during planning"
            )));
        }
    }
    // recurse into direct children only
    map_children(e, &mut |child| substitute_agg_refs(child, group, aggs))
}

/// Rebuild an expression with `f` applied to each direct child.
fn map_children(e: Expr, f: &mut impl FnMut(Expr) -> Result<Expr>) -> Result<Expr> {
    Ok(match e {
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(f(*left)?),
            op,
            right: Box::new(f(*right)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(f(*expr)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(f(*expr)?),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(f(*expr)?),
            list: list.into_iter().map(&mut *f).collect::<Result<_>>()?,
            negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(f(*expr)?),
            low: Box::new(f(*low)?),
            high: Box::new(f(*high)?),
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(f(*expr)?),
            pattern: Box::new(f(*pattern)?),
            negated,
        },
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand.map(|o| f(*o).map(Box::new)).transpose()?,
            when_then: when_then
                .into_iter()
                .map(|(w, t)| Ok((f(w)?, f(t)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr.map(|x| f(*x).map(Box::new)).transpose()?,
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => Expr::Function {
            name,
            args: args.into_iter().map(&mut *f).collect::<Result<_>>()?,
            distinct,
        },
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(f(*expr)?),
            to,
        },
        Expr::Predict {
            model,
            args,
            strategy,
        } => Expr::Predict {
            model,
            args: args.into_iter().map(&mut *f).collect::<Result<_>>()?,
            strategy,
        },
        leaf => leaf,
    })
}

/// After substitution, every remaining column reference must target the
/// aggregate output (#g/#a): anything else is a non-grouped column.
fn ensure_fully_aggregated(e: &Expr, agg_schema: &Schema) -> Result<()> {
    let mut bad = None;
    e.walk(&mut |x| {
        if let Expr::Column { name, .. } = x {
            if agg_schema.index_of(name).is_none() && bad.is_none() {
                bad = Some(name.clone());
            }
        }
    });
    match bad {
        Some(name) => Err(SqlError::Plan(format!(
            "column '{name}' must appear in GROUP BY or inside an aggregate"
        ))),
        None => Ok(()),
    }
}

fn unique_names(names: Vec<String>) -> Vec<String> {
    let mut seen = std::collections::HashMap::new();
    names
        .into_iter()
        .map(|n| {
            let count = seen.entry(n.to_ascii_lowercase()).or_insert(0usize);
            let out = if *count == 0 {
                n.clone()
            } else {
                format!("{n}_{count}")
            };
            *count += 1;
            out
        })
        .collect()
}

/// Output type of an aggregate call.
fn agg_output_type(
    call: &AggCall,
    input: &Schema,
    provider: &dyn InferenceProvider,
) -> Result<DataType> {
    Ok(match call.func {
        AggFunc::Count => DataType::Int,
        AggFunc::Avg | AggFunc::Variance | AggFunc::StdDev => DataType::Float,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
            let arg = call.arg.as_ref().ok_or_else(|| {
                SqlError::Plan(format!("{:?} requires an argument", call.func))
            })?;
            expr_type(arg, input, provider)?.unwrap_or(DataType::Float)
        }
    })
}

/// Infer the type of a resolved expression over `schema`. `Ok(None)` means
/// "unknown" (a bare NULL), which unifies with anything.
pub fn expr_type(
    e: &Expr,
    schema: &Schema,
    provider: &dyn InferenceProvider,
) -> Result<Option<DataType>> {
    use crate::ast::BinOp;
    Ok(match e {
        Expr::Column { name, .. } => Some(schema.field(name)?.data_type),
        Expr::Literal(v) => v.data_type(),
        Expr::Binary { left, op, right } => {
            let lt = expr_type(left, schema, provider)?;
            let rt = expr_type(right, schema, provider)?;
            match op {
                BinOp::And | BinOp::Or => Some(DataType::Bool),
                op if op.is_comparison() => Some(DataType::Bool),
                BinOp::Concat => Some(DataType::Text),
                BinOp::Div => Some(DataType::Float),
                _ => match (lt, rt) {
                    (Some(a), Some(b)) => {
                        let unified = a.unify(b).filter(|t| t.is_numeric());
                        Some(unified.ok_or_else(|| {
                            SqlError::Plan(format!("cannot apply {op} to {a} and {b}"))
                        })?)
                    }
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                },
            }
        }
        Expr::Unary { op, expr } => match op {
            crate::ast::UnOp::Not => Some(DataType::Bool),
            crate::ast::UnOp::Neg => expr_type(expr, schema, provider)?,
        },
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::Exists { .. }
        | Expr::InSubquery { .. } => Some(DataType::Bool),
        Expr::Case {
            when_then,
            else_expr,
            ..
        } => {
            let mut ty: Option<DataType> = None;
            let mut branches: Vec<&Expr> = when_then.iter().map(|(_, t)| t).collect();
            if let Some(e) = else_expr {
                branches.push(e);
            }
            for b in branches {
                if let Some(bt) = expr_type(b, schema, provider)? {
                    ty = Some(match ty {
                        None => bt,
                        Some(t) => t.unify(bt).ok_or_else(|| {
                            SqlError::Plan(format!(
                                "CASE branches have incompatible types {t} and {bt}"
                            ))
                        })?,
                    });
                }
            }
            ty
        }
        Expr::Function { name, args, .. } => {
            Some(function_type(name, args, schema, provider)?)
        }
        Expr::Cast { to, .. } => Some(*to),
        Expr::Predict { model, .. } => Some(provider.output_type(model)?),
        Expr::Subquery(_) => None,
        Expr::Wildcard => {
            return Err(SqlError::Plan("'*' is only valid inside COUNT(*)".into()))
        }
        Expr::Parameter(_) => None,
    })
}

fn function_type(
    name: &str,
    args: &[Expr],
    schema: &Schema,
    provider: &dyn InferenceProvider,
) -> Result<DataType> {
    if let Some(f) = AggFunc::parse(name) {
        // reaching here means an aggregate leaked outside Aggregate planning
        return Err(SqlError::Plan(format!(
            "aggregate {f:?} is not allowed in this context"
        )));
    }
    Ok(match name {
        "ABS" => {
            let t = args
                .first()
                .and_then(|a| expr_type(a, schema, provider).transpose())
                .transpose()?
                .unwrap_or(DataType::Float);
            t
        }
        "ROUND" | "FLOOR" | "CEIL" | "CEILING" | "SQRT" | "EXP" | "LN" | "LOG" | "POWER"
        | "POW" | "SIGMOID" => DataType::Float,
        "UPPER" | "LOWER" | "SUBSTR" | "SUBSTRING" | "CONCAT" | "TRIM" | "REPLACE" => {
            DataType::Text
        }
        "LENGTH" | "YEAR" | "MONTH" | "DAY" => DataType::Int,
        "COALESCE" | "NULLIF" | "GREATEST" | "LEAST" | "IFNULL" => {
            let mut ty = None;
            for a in args {
                if let Some(t) = expr_type(a, schema, provider)? {
                    ty = Some(match ty {
                        None => t,
                        Some(prev) => DataType::unify(prev, t).ok_or_else(|| {
                            SqlError::Plan(format!(
                                "{name} arguments have incompatible types"
                            ))
                        })?,
                    });
                }
            }
            ty.unwrap_or(DataType::Text)
        }
        other => {
            return Err(SqlError::Plan(format!("unknown function '{other}'")));
        }
    })
}
