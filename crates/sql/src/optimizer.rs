//! Rule-based logical optimizer.
//!
//! Classical relational rules live here (constant folding, predicate
//! pushdown, equi-join extraction, projection pruning). The SQL×ML
//! *cross-optimizer* rules from the paper (predicate push-up across
//! models, feature pruning via model sparsity, model compression, physical
//! operator selection) are layered on top by `flock-core` — they operate
//! on the same [`LogicalPlan`].

use crate::ast::{BinOp, Expr, JoinType};
use crate::error::Result;
use crate::exec::expr::eval_binary;
use crate::exec::functions::eval_function;
use crate::plan::{rewrite_expr, LogicalPlan};
use crate::schema::Schema;
use crate::types::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// Which relational rules run. All on by default; ablation benches toggle
/// them individually.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    pub constant_folding: bool,
    pub predicate_pushdown: bool,
    pub join_extraction: bool,
    pub projection_pruning: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            constant_folding: true,
            predicate_pushdown: true,
            join_extraction: true,
            projection_pruning: true,
        }
    }
}

impl OptimizerConfig {
    pub fn disabled() -> Self {
        OptimizerConfig {
            constant_folding: false,
            predicate_pushdown: false,
            join_extraction: false,
            projection_pruning: false,
        }
    }
}

/// Optimize a logical plan.
pub fn optimize(plan: LogicalPlan, config: &OptimizerConfig) -> Result<LogicalPlan> {
    let mut plan = plan;
    if config.constant_folding {
        plan = fold_constants_plan(plan)?;
    }
    if config.predicate_pushdown {
        // run to a small fixpoint: pushing can expose further pushes
        for _ in 0..3 {
            plan = push_down_filters(plan)?;
        }
    }
    if config.join_extraction {
        plan = extract_join_keys(plan)?;
    }
    if config.projection_pruning {
        let required: Vec<String> =
            plan.schema().names().iter().map(|s| s.to_string()).collect();
        plan = prune_columns(plan, &required)?;
        plan = remove_trivial_projects(plan);
    }
    Ok(plan)
}

// ---------------------------------------------------------------- folding

/// Evaluate literal-only subexpressions at plan time.
pub fn fold_expr(e: Expr) -> Result<Expr> {
    rewrite_expr(e, &mut |x| {
        Ok(match &x {
            Expr::Binary { left, op, right } => {
                if let (Expr::Literal(l), Expr::Literal(r)) = (&**left, &**right) {
                    match eval_binary(l, *op, r) {
                        Ok(v) => Expr::Literal(v),
                        Err(_) => x, // fold nothing; fail at runtime instead
                    }
                } else {
                    simplify_logic(x)
                }
            }
            Expr::Function { name, args, .. } => {
                let literals: Option<Vec<Value>> = args
                    .iter()
                    .map(|a| match a {
                        Expr::Literal(v) => Some(v.clone()),
                        _ => None,
                    })
                    .collect();
                match literals {
                    Some(vals) if crate::plan::AggFunc::parse(name).is_none() => {
                        match eval_function(name, &vals) {
                            Ok(v) => Expr::Literal(v),
                            Err(_) => x,
                        }
                    }
                    _ => x,
                }
            }
            Expr::Cast { expr, to } => {
                if let Expr::Literal(v) = &**expr {
                    match v.cast(*to) {
                        Ok(folded) => Expr::Literal(folded),
                        Err(_) => x,
                    }
                } else {
                    x
                }
            }
            Expr::Unary {
                op: crate::ast::UnOp::Neg,
                expr,
            } => match &**expr {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                _ => x,
            },
            _ => x,
        })
    })
}

/// `TRUE AND p -> p`, `FALSE OR p -> p`, etc.
fn simplify_logic(x: Expr) -> Expr {
    if let Expr::Binary { left, op, right } = &x {
        match op {
            BinOp::And => {
                if let Expr::Literal(Value::Bool(true)) = **left {
                    return (**right).clone();
                }
                if let Expr::Literal(Value::Bool(true)) = **right {
                    return (**left).clone();
                }
                if matches!(**left, Expr::Literal(Value::Bool(false)))
                    || matches!(**right, Expr::Literal(Value::Bool(false)))
                {
                    return Expr::Literal(Value::Bool(false));
                }
            }
            BinOp::Or => {
                if let Expr::Literal(Value::Bool(false)) = **left {
                    return (**right).clone();
                }
                if let Expr::Literal(Value::Bool(false)) = **right {
                    return (**left).clone();
                }
                if matches!(**left, Expr::Literal(Value::Bool(true)))
                    || matches!(**right, Expr::Literal(Value::Bool(true)))
                {
                    return Expr::Literal(Value::Bool(true));
                }
            }
            _ => {}
        }
    }
    x
}

fn fold_constants_plan(plan: LogicalPlan) -> Result<LogicalPlan> {
    map_plan_exprs(plan, &mut fold_expr)
}

/// Apply `f` to every expression in the plan, recursively.
fn map_plan_exprs(
    plan: LogicalPlan,
    f: &mut impl FnMut(Expr) -> Result<Expr>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_plan_exprs(*input, f)?),
            predicate: f(predicate)?,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(map_plan_exprs(*input, f)?),
            exprs: exprs.into_iter().map(&mut *f).collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_plan_exprs(*input, f)?),
            group: group.into_iter().map(&mut *f).collect::<Result<_>>()?,
            aggs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(map_plan_exprs(*left, f)?),
            right: Box::new(map_plan_exprs(*right, f)?),
            join_type,
            on,
            filter: filter.map(&mut *f).transpose()?,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_plan_exprs(*input, f)?),
            keys: keys
                .into_iter()
                .map(|(e, asc)| Ok((f(e)?, asc)))
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(map_plan_exprs(*input, f)?),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(map_plan_exprs(*input, f)?),
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(|i| map_plan_exprs(i, f))
                .collect::<Result<_>>()?,
            schema,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
    })
}

// ------------------------------------------------------------- pushdown

/// Push filters toward the scans.
pub fn push_down_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_filters(*input)?;
            push_filter_into(input, predicate)?
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(push_down_filters(*input)?),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(*input)?),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(*left)?),
            right: Box::new(push_down_filters(*right)?),
            join_type,
            on,
            filter,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_filters(*input)?),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(push_down_filters(*input)?),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_down_filters(*input)?),
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(push_down_filters)
                .collect::<Result<_>>()?,
            schema,
        },
        leaf => leaf,
    })
}

/// Push one filter predicate into `input` as deep as possible.
fn push_filter_into(input: LogicalPlan, predicate: Expr) -> Result<LogicalPlan> {
    match input {
        // Filter(Filter(x)) -> merged
        LogicalPlan::Filter {
            input: inner,
            predicate: p2,
        } => push_filter_into(*inner, Expr::and(p2, predicate)),
        // Push through projection by substituting output exprs, unless the
        // substituted predicate would duplicate a PREDICT call below the
        // projection (the cross-optimizer owns that decision).
        LogicalPlan::Project {
            input: inner,
            exprs,
            schema,
        } => {
            let mut pushable = Vec::new();
            let mut keep = Vec::new();
            for part in predicate.split_conjunction() {
                match substitute_projection(part, &exprs, &schema) {
                    Some(sub) if !contains_predict(&sub) => pushable.push(sub),
                    _ => keep.push(part.clone()),
                }
            }
            let mut new_input = *inner;
            if let Some(p) = Expr::conjunction(pushable) {
                new_input = push_filter_into(new_input, p)?;
            }
            let projected = LogicalPlan::Project {
                input: Box::new(new_input),
                exprs,
                schema,
            };
            Ok(wrap_filter(projected, Expr::conjunction(keep)))
        }
        // Split by side across a join.
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => {
            let left_cols: HashSet<String> = left
                .schema()
                .names()
                .iter()
                .map(|s| s.to_ascii_lowercase())
                .collect();
            let right_cols: HashSet<String> = right
                .schema()
                .names()
                .iter()
                .map(|s| s.to_ascii_lowercase())
                .collect();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut to_join = Vec::new();
            for part in predicate.split_conjunction() {
                let mut cols = vec![];
                part.referenced_columns(&mut cols);
                let l = cols
                    .iter()
                    .any(|(_, n)| left_cols.contains(&n.to_ascii_lowercase()));
                let r = cols
                    .iter()
                    .any(|(_, n)| right_cols.contains(&n.to_ascii_lowercase()));
                match (l, r, join_type) {
                    (true, false, _) => to_left.push(part.clone()),
                    // Pushing below the null-producing side of a LEFT join
                    // would change semantics; keep above instead.
                    (false, true, JoinType::Left) => to_join.push(part.clone()),
                    (false, true, _) => to_right.push(part.clone()),
                    _ => to_join.push(part.clone()),
                }
            }
            let mut l = *left;
            if let Some(p) = Expr::conjunction(to_left) {
                l = push_filter_into(l, p)?;
            }
            let mut r = *right;
            if let Some(p) = Expr::conjunction(to_right) {
                r = push_filter_into(r, p)?;
            }
            // Mixed conjuncts merge into the join's residual filter for
            // inner joins (enabling key extraction); for LEFT joins they
            // must stay above.
            let (new_filter, above) = if join_type == JoinType::Inner {
                (
                    Expr::conjunction(
                        filter
                            .into_iter()
                            .chain(to_join)
                            .collect::<Vec<_>>(),
                    ),
                    None,
                )
            } else {
                (filter, Expr::conjunction(to_join))
            };
            let joined = LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                join_type,
                on,
                filter: new_filter,
                schema,
            };
            Ok(wrap_filter(joined, above))
        }
        // Push below sort (sorting commutes with filtering).
        LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(push_filter_into(*input, predicate)?),
            keys,
        }),
        // Push conjuncts that only touch group columns below an aggregate.
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            let mut pushable = Vec::new();
            let mut keep = Vec::new();
            for part in predicate.split_conjunction() {
                match substitute_group_refs(part, &group) {
                    Some(sub) => pushable.push(sub),
                    None => keep.push(part.clone()),
                }
            }
            let mut new_input = *input;
            if let Some(p) = Expr::conjunction(pushable) {
                new_input = push_filter_into(new_input, p)?;
            }
            let agg = LogicalPlan::Aggregate {
                input: Box::new(new_input),
                group,
                aggs,
                schema,
            };
            Ok(wrap_filter(agg, Expr::conjunction(keep)))
        }
        other => Ok(wrap_filter(other, Some(predicate))),
    }
}

fn wrap_filter(plan: LogicalPlan, predicate: Option<Expr>) -> LogicalPlan {
    match predicate {
        Some(p) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: p,
        },
        None => plan,
    }
}

/// Rewrite a predicate over a projection's output into one over its input,
/// if every referenced output column maps to a projection expression.
fn substitute_projection(pred: &Expr, exprs: &[Expr], schema: &Schema) -> Option<Expr> {
    let result = rewrite_expr(pred.clone(), &mut |x| match x {
        Expr::Column { ref name, .. } => match schema.index_of(name) {
            Some(i) => Ok(exprs[i].clone()),
            None => Err(crate::error::SqlError::Plan("no mapping".into())),
        },
        other => Ok(other),
    });
    result.ok()
}

/// Rewrite `#gN` references back to the underlying group expressions;
/// returns `None` when the predicate touches aggregate outputs.
fn substitute_group_refs(pred: &Expr, group: &[Expr]) -> Option<Expr> {
    let result = rewrite_expr(pred.clone(), &mut |x| match x {
        Expr::Column { ref name, .. } => {
            if let Some(n) = name.strip_prefix("#g") {
                if let Ok(i) = n.parse::<usize>() {
                    if let Some(g) = group.get(i) {
                        return Ok(g.clone());
                    }
                }
            }
            Err(crate::error::SqlError::Plan("aggregate ref".into()))
        }
        other => Ok(other),
    });
    result.ok()
}

fn contains_predict(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if matches!(x, Expr::Predict { .. }) {
            found = true;
        }
    });
    found
}

// -------------------------------------------------------- join extraction

/// Move equi conjuncts from a join's residual filter into its key list.
pub fn extract_join_keys(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Join {
            left,
            right,
            join_type,
            mut on,
            filter,
            schema,
        } => {
            let left = Box::new(extract_join_keys(*left)?);
            let right = Box::new(extract_join_keys(*right)?);
            let mut residual = Vec::new();
            if let Some(f) = filter {
                let left_cols: HashSet<String> = left
                    .schema()
                    .names()
                    .iter()
                    .map(|s| s.to_ascii_lowercase())
                    .collect();
                for part in f.split_conjunction() {
                    if join_type == JoinType::Inner {
                        if let Expr::Binary {
                            left: a,
                            op: BinOp::Eq,
                            right: b,
                        } = part
                        {
                            let sa = expr_side(a, &left_cols);
                            let sb = expr_side(b, &left_cols);
                            match (sa, sb) {
                                (ExprSide::Left, ExprSide::Right) => {
                                    on.push(((**a).clone(), (**b).clone()));
                                    continue;
                                }
                                (ExprSide::Right, ExprSide::Left) => {
                                    on.push(((**b).clone(), (**a).clone()));
                                    continue;
                                }
                                _ => {}
                            }
                        }
                    }
                    residual.push(part.clone());
                }
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                on,
                filter: Expr::conjunction(residual),
                schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(extract_join_keys(*input)?),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(extract_join_keys(*input)?),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(extract_join_keys(*input)?),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(extract_join_keys(*input)?),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(extract_join_keys(*input)?),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(extract_join_keys(*input)?),
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(extract_join_keys)
                .collect::<Result<_>>()?,
            schema,
        },
        leaf => leaf,
    })
}

#[derive(PartialEq, Clone, Copy)]
enum ExprSide {
    Left,
    Right,
    Mixed,
    None,
}

fn expr_side(e: &Expr, left_cols: &HashSet<String>) -> ExprSide {
    let mut cols = vec![];
    e.referenced_columns(&mut cols);
    if cols.is_empty() {
        return ExprSide::None;
    }
    let mut l = false;
    let mut r = false;
    for (_, n) in cols {
        if left_cols.contains(&n.to_ascii_lowercase()) {
            l = true;
        } else {
            r = true;
        }
    }
    match (l, r) {
        (true, false) => ExprSide::Left,
        (false, true) => ExprSide::Right,
        _ => ExprSide::Mixed,
    }
}

// ------------------------------------------------------ projection pruning

/// Remove unused columns, setting scan projections. `required` is the set
/// of output column names the parent needs (in any order).
pub fn prune_columns(plan: LogicalPlan, required: &[String]) -> Result<LogicalPlan> {
    let req: HashSet<String> = required.iter().map(|s| s.to_ascii_lowercase()).collect();
    Ok(match plan {
        LogicalPlan::Scan {
            table,
            version,
            projection,
            schema,
        } => {
            // `projection` indices are relative to the *current* schema
            // (idempotent re-pruning); compose them.
            let keep: Vec<usize> = (0..schema.len())
                .filter(|&i| req.contains(&schema.column(i).name.to_ascii_lowercase()))
                .collect();
            let keep = if keep.is_empty() { vec![0] } else { keep };
            if keep.len() == schema.len() {
                return Ok(LogicalPlan::Scan {
                    table,
                    version,
                    projection,
                    schema,
                });
            }
            let new_projection = match projection {
                Some(old) => keep.iter().map(|&i| old[i]).collect(),
                None => keep.clone(),
            };
            let new_schema = Arc::new(schema.project(&keep));
            LogicalPlan::Scan {
                table,
                version,
                projection: Some(new_projection),
                schema: new_schema,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            // Keep only required output columns.
            let keep: Vec<usize> = (0..schema.len())
                .filter(|&i| req.contains(&schema.column(i).name.to_ascii_lowercase()))
                .collect();
            let keep = if keep.is_empty() { vec![0] } else { keep };
            let kept_exprs: Vec<Expr> = keep.iter().map(|&i| exprs[i].clone()).collect();
            let kept_schema = Arc::new(schema.project(&keep));
            // Columns the kept expressions need from the input.
            let mut needed = Vec::new();
            for e in &kept_exprs {
                e.referenced_columns(&mut needed);
            }
            let needed: Vec<String> = needed.into_iter().map(|(_, n)| n).collect();
            LogicalPlan::Project {
                input: Box::new(prune_columns(*input, &needed)?),
                exprs: kept_exprs,
                schema: kept_schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut needed: Vec<(Option<String>, String)> = vec![];
            predicate.referenced_columns(&mut needed);
            let mut names: Vec<String> = needed.into_iter().map(|(_, n)| n).collect();
            names.extend(required.iter().cloned());
            LogicalPlan::Filter {
                input: Box::new(prune_columns(*input, &names)?),
                predicate,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            let mut needed: Vec<(Option<String>, String)> = vec![];
            for g in &group {
                g.referenced_columns(&mut needed);
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    arg.referenced_columns(&mut needed);
                }
            }
            let names: Vec<String> = needed.into_iter().map(|(_, n)| n).collect();
            LogicalPlan::Aggregate {
                input: Box::new(prune_columns(*input, &names)?),
                group,
                aggs,
                schema,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => {
            let mut needed: Vec<(Option<String>, String)> = vec![];
            for (l, r) in &on {
                l.referenced_columns(&mut needed);
                r.referenced_columns(&mut needed);
            }
            if let Some(f) = &filter {
                f.referenced_columns(&mut needed);
            }
            let mut names: Vec<String> = needed.into_iter().map(|(_, n)| n).collect();
            names.extend(required.iter().cloned());
            let l = prune_columns(*left, &names)?;
            let r = prune_columns(*right, &names)?;
            let mut cols = l.schema().columns().to_vec();
            cols.extend(r.schema().columns().iter().cloned());
            // Keep join schema consistent with pruned children.
            let new_schema = if cols.len() == schema.len() {
                schema
            } else {
                Arc::new(Schema::new(cols))
            };
            LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                join_type,
                on,
                filter,
                schema: new_schema,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let mut needed: Vec<(Option<String>, String)> = vec![];
            for (e, _) in &keys {
                e.referenced_columns(&mut needed);
            }
            let mut names: Vec<String> = needed.into_iter().map(|(_, n)| n).collect();
            names.extend(required.iter().cloned());
            LogicalPlan::Sort {
                input: Box::new(prune_columns(*input, &names)?),
                keys,
            }
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(prune_columns(*input, required)?),
            limit,
            offset,
        },
        // DISTINCT depends on every input column.
        LogicalPlan::Distinct { input } => {
            let all: Vec<String> = input
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            LogicalPlan::Distinct {
                input: Box::new(prune_columns(*input, &all)?),
            }
        }
        // UNION arms keep their full output (column names differ by arm,
        // so positional pruning through it is not attempted); recurse so
        // scans inside arms still prune against the arms' own projections.
        LogicalPlan::Union { inputs, schema } => {
            let inputs = inputs
                .into_iter()
                .map(|p| {
                    let all: Vec<String> =
                        p.schema().names().iter().map(|s| s.to_string()).collect();
                    prune_columns(p, &all)
                })
                .collect::<Result<_>>()?;
            LogicalPlan::Union { inputs, schema }
        }
        leaf @ LogicalPlan::Values { .. } => leaf,
    })
}

/// Drop projections that are an exact identity over their input.
pub fn remove_trivial_projects(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let input = Box::new(remove_trivial_projects(*input));
            let identity = schema.len() == input.schema().len()
                && exprs.iter().enumerate().all(|(i, e)| {
                    matches!(e, Expr::Column { name, .. }
                        if input.schema().index_of(name) == Some(i))
                })
                && schema
                    .names()
                    .iter()
                    .zip(input.schema().names())
                    .all(|(a, b)| *a == b);
            if identity {
                *input
            } else {
                LogicalPlan::Project {
                    input,
                    exprs,
                    schema,
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(remove_trivial_projects(*input)),
            predicate,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(remove_trivial_projects(*input)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(remove_trivial_projects(*left)),
            right: Box::new(remove_trivial_projects(*right)),
            join_type,
            on,
            filter,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(remove_trivial_projects(*input)),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(remove_trivial_projects(*input)),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(remove_trivial_projects(*input)),
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(remove_trivial_projects).collect(),
            schema,
        },
        leaf => leaf,
    }
}
