//! Versioned tables.
//!
//! Every committed write (INSERT/UPDATE/DELETE) produces a new immutable
//! [`TableVersion`]. The paper makes table versioning load-bearing for
//! governance: "an INSERT to a table results in a new version of the table
//! in the provenance data model", and model lineage pins the exact data
//! version a model was trained on.

use crate::batch::RecordBatch;
use crate::error::{Result, SqlError};
use crate::parts::PartMeta;
use crate::schema::Schema;
use crate::stats::TableStats;
use std::sync::Arc;

/// One immutable snapshot of a table's contents.
///
/// A version's rows are the concatenation of its disk-resident `parts`
/// (in order) followed by the resident `data` tail. Fully resident
/// versions simply have no parts; nothing else changes. Parts are
/// immutable and may be shared by several versions of the same table
/// (an append carries the prefix forward and only grows the tail).
#[derive(Debug)]
pub struct TableVersion {
    /// Monotonically increasing per-table version number, starting at 1.
    pub version: u64,
    /// The transaction id that committed this version.
    pub txn_id: u64,
    /// Disk-resident prefix of this snapshot, oldest part first.
    pub parts: Vec<PartMeta>,
    /// Resident tail (the whole snapshot when `parts` is empty).
    pub data: RecordBatch,
    /// Exact statistics for the tail, merged with zone-map-derived
    /// statistics for the parts (see [`TableStats::compute_with_parts`]).
    pub stats: TableStats,
}

impl TableVersion {
    /// Total rows in this snapshot: disk parts plus resident tail.
    pub fn total_rows(&self) -> usize {
        self.part_rows() + self.data.num_rows()
    }

    /// Rows held in disk-resident parts.
    pub fn part_rows(&self) -> usize {
        self.parts.iter().map(|p| p.rows as usize).sum()
    }

    pub fn has_parts(&self) -> bool {
        !self.parts.is_empty()
    }
}

/// A named, versioned table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    versions: Vec<Arc<TableVersion>>,
}

impl Table {
    /// Create an empty table; version 1 is the empty snapshot.
    pub fn new(name: impl Into<String>, schema: Schema, txn_id: u64) -> Result<Self> {
        schema.check_unique_names()?;
        let schema = Arc::new(schema);
        let data = RecordBatch::empty(schema.clone());
        let stats = TableStats::compute(&data);
        Ok(Table {
            name: name.into(),
            schema,
            versions: vec![Arc::new(TableVersion {
                version: 1,
                txn_id,
                parts: Vec::new(),
                data,
                stats,
            })],
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Latest committed version.
    pub fn current(&self) -> &Arc<TableVersion> {
        self.versions.last().expect("tables always have >=1 version")
    }

    /// Latest version number.
    pub fn current_version(&self) -> u64 {
        self.current().version
    }

    pub fn versions(&self) -> &[Arc<TableVersion>] {
        &self.versions
    }

    /// Time-travel read of a specific version.
    pub fn at_version(&self, version: u64) -> Result<&Arc<TableVersion>> {
        self.versions
            .iter()
            .find(|v| v.version == version)
            .ok_or_else(|| {
                SqlError::Catalog(format!(
                    "table '{}' has no version {version} (latest is {})",
                    self.name,
                    self.current_version()
                ))
            })
    }

    pub fn row_count(&self) -> usize {
        self.current().total_rows()
    }

    /// Install a new snapshot produced by a committed write. The snapshot
    /// is fully resident: full-rewrite paths (UPDATE/DELETE/ALTER)
    /// materialize any disk parts first, so part references never leak
    /// into a version whose `data` already contains those rows.
    pub fn push_version(&mut self, data: RecordBatch, txn_id: u64) -> Result<u64> {
        self.push_version_with_parts(Vec::new(), data, txn_id)
    }

    /// Install a new snapshot as disk parts plus a resident tail
    /// (append paths carry the current parts forward; offload replaces
    /// resident history with freshly flushed parts).
    pub fn push_version_with_parts(
        &mut self,
        parts: Vec<PartMeta>,
        data: RecordBatch,
        txn_id: u64,
    ) -> Result<u64> {
        if data.schema().len() != self.schema.len() {
            return Err(SqlError::Constraint(format!(
                "new version of '{}' has wrong arity",
                self.name
            )));
        }
        let stats = TableStats::compute_with_parts(&parts, &data);
        let version = self.current_version() + 1;
        self.versions.push(Arc::new(TableVersion {
            version,
            txn_id,
            parts,
            data,
            stats,
        }));
        Ok(version)
    }

    /// Replace the current version in place with a part-backed equivalent
    /// (offload: same version number and txn, same logical rows, but
    /// history collapsed to one version whose prefix lives on disk).
    pub fn replace_current_with_parts(&mut self, parts: Vec<PartMeta>, tail: RecordBatch) {
        let cur = self.current();
        let stats = TableStats::compute_with_parts(&parts, &tail);
        let v = Arc::new(TableVersion {
            version: cur.version,
            txn_id: cur.txn_id,
            parts,
            data: tail,
            stats,
        });
        *self.versions.last_mut().expect("tables always have >=1 version") = v;
    }

    /// Install a new snapshot *with a new schema* (ALTER TABLE). Older
    /// versions keep their original schema; time-travel reads see the
    /// schema that was live at that version.
    pub fn evolve(&mut self, new_schema: Schema, data: RecordBatch, txn_id: u64) -> Result<u64> {
        new_schema.check_unique_names()?;
        if data.schema().len() != new_schema.len() {
            return Err(SqlError::Constraint(format!(
                "evolved snapshot of '{}' does not match the new schema",
                self.name
            )));
        }
        self.schema = Arc::new(new_schema);
        self.push_version(data, txn_id)
    }

    /// Drop all but the most recent `keep` versions (history truncation;
    /// the provenance catalog retains the lineage record independently).
    pub fn truncate_history(&mut self, keep: usize) {
        let keep = keep.max(1);
        if self.versions.len() > keep {
            self.versions.drain(..self.versions.len() - keep);
        }
    }

    /// History truncation that refuses to drop any version in `pinned`
    /// (versions a deployed model's lineage records as its training data).
    /// Returns the version numbers actually dropped.
    pub fn truncate_history_pinned(&mut self, keep: usize, pinned: &[u64]) -> Result<Vec<u64>> {
        let keep = keep.max(1);
        if self.versions.len() <= keep {
            return Ok(Vec::new());
        }
        let cut = self.versions.len() - keep;
        let dropped: Vec<u64> = self.versions[..cut].iter().map(|v| v.version).collect();
        if let Some(pin) = dropped.iter().find(|v| pinned.contains(v)) {
            return Err(SqlError::Constraint(format!(
                "cannot truncate history of '{}': version {pin} is pinned by \
                 a deployed model's lineage (keep more versions or drop the \
                 model first)",
                self.name,
            )));
        }
        self.versions.drain(..cut);
        Ok(dropped)
    }

    /// Append a snapshot with explicit version and txn ids (WAL replay).
    /// The version must extend the chain exactly — a gap means the log and
    /// the base state do not belong together.
    pub fn restore_version(&mut self, version: u64, txn_id: u64, data: RecordBatch) -> Result<()> {
        self.restore_version_with_parts(version, txn_id, Vec::new(), data)
    }

    /// WAL-replay append that carries disk parts forward (AppendRows over
    /// a part-backed base: the parts prefix is unchanged, only the
    /// resident tail grows).
    pub fn restore_version_with_parts(
        &mut self,
        version: u64,
        txn_id: u64,
        parts: Vec<PartMeta>,
        data: RecordBatch,
    ) -> Result<()> {
        if version != self.current_version() + 1 {
            return Err(SqlError::Io(format!(
                "wal replay version mismatch on '{}': have {}, log says {version}",
                self.name,
                self.current_version()
            )));
        }
        let stats = TableStats::compute_with_parts(&parts, &data);
        // The batch carries its schema, so ALTER replays through the same
        // path as plain writes.
        self.schema = data.schema().clone();
        self.versions.push(Arc::new(TableVersion {
            version,
            txn_id,
            parts,
            data,
            stats,
        }));
        Ok(())
    }

    /// Rebuild a table from recovered `(version, txn_id, parts, data)`
    /// tuples (checkpoint restore). Stats are recomputed — they are a pure
    /// function of the tail data and part zone maps, so recovery never
    /// touches part files — and the live schema is the newest snapshot's.
    pub fn from_history(
        name: impl Into<String>,
        history: Vec<(u64, u64, Vec<PartMeta>, RecordBatch)>,
    ) -> Result<Self> {
        let name = name.into();
        let Some(last) = history.last() else {
            return Err(SqlError::Io(format!(
                "checkpoint has no versions for table '{name}'"
            )));
        };
        if history.windows(2).any(|w| w[1].0 <= w[0].0) {
            return Err(SqlError::Io(format!(
                "checkpoint versions for table '{name}' are not increasing"
            )));
        }
        let schema = last.3.schema().clone();
        let versions = history
            .into_iter()
            .map(|(version, txn_id, parts, data)| {
                let stats = TableStats::compute_with_parts(&parts, &data);
                Arc::new(TableVersion {
                    version,
                    txn_id,
                    parts,
                    data,
                    stats,
                })
            })
            .collect();
        Ok(Table {
            name,
            schema,
            versions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::{DataType, Value};

    fn make() -> Table {
        Table::new(
            "t",
            Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Float)]),
            1,
        )
        .unwrap()
    }

    fn batch_of(t: &Table, rows: &[(i64, f64)]) -> RecordBatch {
        let rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|(i, f)| vec![Value::Int(*i), Value::Float(*f)])
            .collect();
        RecordBatch::from_rows(t.schema().clone(), &rows).unwrap()
    }

    #[test]
    fn new_table_starts_at_version_one() {
        let t = make();
        assert_eq!(t.current_version(), 1);
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn writes_create_new_versions_and_keep_old() {
        let mut t = make();
        let b1 = batch_of(&t, &[(1, 0.5)]);
        let v2 = t.push_version(b1, 7).unwrap();
        assert_eq!(v2, 2);
        let b2 = batch_of(&t, &[(1, 0.5), (2, 1.5)]);
        t.push_version(b2, 8).unwrap();

        assert_eq!(t.current_version(), 3);
        assert_eq!(t.row_count(), 2);
        // Time travel: version 2 still has one row.
        let old = t.at_version(2).unwrap();
        assert_eq!(old.data.num_rows(), 1);
        assert_eq!(old.txn_id, 7);
        assert!(t.at_version(99).is_err());
    }

    #[test]
    fn stats_follow_versions() {
        let mut t = make();
        t.push_version(batch_of(&t, &[(1, 2.0), (2, 8.0)]), 2).unwrap();
        let st = &t.current().stats;
        assert_eq!(st.row_count, 2);
        assert_eq!(st.columns[1].max, Some(8.0));
    }

    #[test]
    fn history_truncation_keeps_latest() {
        let mut t = make();
        for i in 0..5 {
            t.push_version(batch_of(&t, &[(i, i as f64)]), i as u64 + 2)
                .unwrap();
        }
        assert_eq!(t.versions().len(), 6);
        t.truncate_history(2);
        assert_eq!(t.versions().len(), 2);
        assert_eq!(t.current_version(), 6);
        assert!(t.at_version(1).is_err());
    }

    #[test]
    fn duplicate_schema_names_rejected() {
        let r = Table::new(
            "bad",
            Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Int)]),
            1,
        );
        assert!(r.is_err());
    }
}
