//! Prepared-statement plan cache: statement fingerprinting, cached
//! physical plans, and epoch-based invalidation.
//!
//! The serving hot path must not pay lex/parse/plan/rewrite/optimize per
//! request. A statement is **normalized** at prepare time: literal tokens
//! are replaced by `?` placeholders so statements differing only in
//! constants share one cache entry, and the extracted constants are bound
//! as parameters on every execute. The cache key is the normalized token
//! stream plus the parameter type signature (parameter types feed the
//! compiled expression types, so `?=1` and `?='x'` must not share a plan).
//!
//! Normalization keeps a literal **inline** (not parameterized) when
//! extracting it would change what the parser or planner sees:
//!
//! * the integer after `LIMIT` / `OFFSET` / `VERSION` — the parser needs a
//!   raw number there, and a time-travel version pins an immutable
//!   snapshot that never needs re-validation;
//! * a string directly after the `DATE` keyword — `DATE '...'` is a
//!   single literal production in the parser;
//! * bare numbers at the top nesting level of `ORDER BY` / `GROUP BY` —
//!   those are output ordinals, and `ORDER BY ?` (a constant) would
//!   silently stop sorting.
//!
//! Invalidation is lazy: each entry records the DDL / options / model
//! epochs it was planned under, and a lookup whose epochs moved discards
//! the entry. Table-version drift (plain DML) is cheaper: the optimized
//! logical plan is kept alongside the physical one, so the entry is
//! **rebound** (physical re-derivation only) instead of replanned.

use crate::error::Result;
use crate::exec::PhysicalPlan;
use crate::lexer::Token;
use crate::plan::LogicalPlan;
use crate::types::{DataType, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on cached plans; a full cache evicts an arbitrary entry
/// (serving workloads have a small, hot statement set).
const CACHE_CAPACITY: usize = 128;

/// How one `?` slot of a normalized statement is filled at execute time.
#[derive(Debug, Clone)]
pub enum ParamSlot {
    /// The k-th `?` written by the user; bound from the execute-time
    /// parameter list.
    User(usize),
    /// A literal extracted by normalization; rebound to the same value on
    /// every execute.
    Inline(Value),
}

/// Result of normalizing a token stream.
#[derive(Debug, Clone)]
pub struct NormalizedStatement {
    /// The normalized stream (literals replaced by `Token::Question`),
    /// ending in `Token::Eof`. This is the cache-key token part.
    pub tokens: Vec<Token>,
    /// One entry per `?` in `tokens`, in appearance order.
    pub slots: Vec<ParamSlot>,
    /// Number of `?` placeholders the user wrote (bind arity).
    pub user_params: usize,
}

/// Replace literal tokens with `?` placeholders, recording how each slot
/// is filled at execute time. See the module docs for what stays inline.
pub fn normalize(tokens: &[Token]) -> NormalizedStatement {
    let mut out = Vec::with_capacity(tokens.len());
    let mut slots = Vec::new();
    let mut user_params = 0usize;
    let mut depth = 0usize;
    // Paren depth at which an ORDER BY / GROUP BY clause opened; bare
    // numbers at that depth may be output ordinals and stay inline.
    let mut ordinal_clause: Option<usize> = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            t @ Token::LParen => {
                depth += 1;
                out.push(t.clone());
            }
            t @ Token::RParen => {
                if ordinal_clause.is_some_and(|d| depth <= d) {
                    ordinal_clause = None;
                }
                depth = depth.saturating_sub(1);
                out.push(t.clone());
            }
            t @ Token::Semicolon => {
                ordinal_clause = None;
                out.push(t.clone());
            }
            t @ Token::Ident(word) => {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    "ORDER" | "GROUP"
                        if matches!(tokens.get(i + 1),
                            Some(Token::Ident(b)) if b.eq_ignore_ascii_case("BY")) =>
                    {
                        ordinal_clause = Some(depth);
                    }
                    "SELECT" | "FROM" | "WHERE" | "HAVING" | "UNION"
                        if ordinal_clause == Some(depth) =>
                    {
                        ordinal_clause = None;
                    }
                    "LIMIT" | "OFFSET" | "VERSION" => {
                        if ordinal_clause == Some(depth) {
                            ordinal_clause = None;
                        }
                        if let Some(n @ Token::Number(_)) = tokens.get(i + 1) {
                            out.push(t.clone());
                            out.push(n.clone());
                            i += 2;
                            continue;
                        }
                    }
                    "DATE" => {
                        if let Some(s @ Token::StringLit(_)) = tokens.get(i + 1) {
                            out.push(t.clone());
                            out.push(s.clone());
                            i += 2;
                            continue;
                        }
                    }
                    _ => {}
                }
                out.push(t.clone());
            }
            Token::Question => {
                slots.push(ParamSlot::User(user_params));
                user_params += 1;
                out.push(Token::Question);
            }
            t @ Token::Number(n) => {
                if ordinal_clause.is_some_and(|d| depth == d) {
                    out.push(t.clone());
                } else {
                    slots.push(ParamSlot::Inline(number_value(n)));
                    out.push(Token::Question);
                }
            }
            Token::StringLit(s) => {
                slots.push(ParamSlot::Inline(Value::Text(s.clone())));
                out.push(Token::Question);
            }
            other => out.push(other.clone()),
        }
        i += 1;
    }
    NormalizedStatement {
        tokens: out,
        slots,
        user_params,
    }
}

/// Mirror of the parser's number-literal typing: decimal point or exponent
/// makes a Float, everything else an Int (falling back to Float on i64
/// overflow).
fn number_value(n: &str) -> Value {
    if n.contains('.') || n.contains('e') || n.contains('E') {
        Value::Float(n.parse().unwrap_or(f64::INFINITY))
    } else {
        match n.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Float(n.parse().unwrap_or(f64::INFINITY)),
        }
    }
}

/// Cache key: normalized (or raw, for unprepared exact-match entries)
/// token stream plus the parameter type signature, plus any session-local
/// PREDICT strategy override (`SET predict_strategy`) — plans bake the
/// resolved strategy in, so sessions with different overrides must not
/// share entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub tokens: Vec<Token>,
    pub param_types: Vec<Option<DataType>>,
    pub predict: Option<crate::ast::PredictStrategy>,
}

/// One cached plan plus everything needed to validate it per execute.
pub struct CachedPlan {
    /// Optimized logical plan with `Expr::Parameter` intact — the rebind
    /// source when table versions move.
    pub logical: Arc<LogicalPlan>,
    /// Physical plan bound to the table versions below.
    pub physical: PhysicalPlan,
    /// Tables scanned (pre-rewrite), ACL-checked on every execute.
    pub tables: Vec<String>,
    /// Models referenced (pre-rewrite), ACL-checked on every execute.
    pub models: Vec<String>,
    /// Current version of each non-pinned scanned table at bind time.
    /// Drift means the physical plan snapshots stale data: rebind.
    pub table_versions: Vec<(String, u64)>,
    /// Committed-DDL epoch the plan was built under.
    pub ddl_epoch: u64,
    /// Exec/optimizer/provider configuration epoch.
    pub options_epoch: u64,
    /// Inference-provider (model registry) epoch.
    pub model_epoch: u64,
}

/// Why a cache lookup did not return a usable plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMiss {
    /// No entry for this key (never planned, or evicted).
    Cold,
    /// An entry existed but its epochs moved; it was discarded.
    Invalidated,
}

/// Outcome of a validated cache lookup.
pub enum CacheHit {
    /// Entry valid as-is: execute its physical plan directly.
    Ready(Arc<CachedPlan>),
    /// Epochs match but table versions moved: re-derive the physical plan
    /// from `logical` and re-insert.
    Rebind(Arc<CachedPlan>),
}

/// The per-database plan cache. Epoch checks happen in the engine (which
/// owns the epoch counters); this type owns storage and the counters the
/// `flock_metrics` table exports.
pub struct PlanCache {
    entries: Mutex<HashMap<CacheKey, Arc<CachedPlan>>>,
    pub hits: Arc<AtomicU64>,
    pub misses: Arc<AtomicU64>,
    pub invalidations: Arc<AtomicU64>,
    /// Live prepared-statement handles (gauge; `PreparedStatement` drops
    /// decrement it).
    pub prepared_active: Arc<AtomicU64>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            invalidations: Arc::new(AtomicU64::new(0)),
            prepared_active: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl PlanCache {
    /// Validated lookup. `epochs` are the engine's current
    /// (ddl, options, model) epochs; `current_version` maps a table name
    /// to its committed version (`None` = table gone, forces invalidation).
    pub fn lookup(
        &self,
        key: &CacheKey,
        epochs: (u64, u64, u64),
        current_version: impl Fn(&str) -> Option<u64>,
    ) -> std::result::Result<CacheHit, CacheMiss> {
        let mut entries = self.entries.lock();
        let Some(entry) = entries.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Err(CacheMiss::Cold);
        };
        let (ddl, options, model) = epochs;
        if entry.ddl_epoch != ddl
            || entry.options_epoch != options
            || entry.model_epoch != model
        {
            entries.remove(key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Err(CacheMiss::Invalidated);
        }
        let mut stale = false;
        for (table, version) in &entry.table_versions {
            match current_version(table) {
                Some(v) if v == *version => {}
                Some(_) => stale = true,
                None => {
                    // Table vanished without a DDL epoch tick (should not
                    // happen, but never serve a plan over a dropped table).
                    let _ = entries.remove(key);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Err(CacheMiss::Invalidated);
                }
            }
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        let entry = entries.get(key).cloned().expect("entry present");
        Ok(if stale {
            CacheHit::Rebind(entry)
        } else {
            CacheHit::Ready(entry)
        })
    }

    /// Insert (or replace) an entry, evicting an arbitrary one at capacity.
    pub fn insert(&self, key: CacheKey, plan: CachedPlan) -> Arc<CachedPlan> {
        let entry = Arc::new(plan);
        let mut entries = self.entries.lock();
        if entries.len() >= CACHE_CAPACITY && !entries.contains_key(&key) {
            if let Some(victim) = entries.keys().next().cloned() {
                entries.remove(&victim);
            }
        }
        entries.insert(key, entry.clone());
        entry
    }

    /// Drop every entry (tests and explicit resets).
    pub fn clear(&self) {
        let mut entries = self.entries.lock();
        let n = entries.len() as u64;
        entries.clear();
        self.invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Counters exported through `flock_metrics`, mirroring the
    /// `predict_compile_*` trio of the model-compilation cache.
    pub fn counters(&self) -> [(&'static str, Arc<AtomicU64>); 4] {
        [
            ("plan_cache_hits", self.hits.clone()),
            ("plan_cache_misses", self.misses.clone()),
            ("plan_cache_invalidations", self.invalidations.clone()),
            ("prepared_statements_active", self.prepared_active.clone()),
        ]
    }
}

/// Build the execute-time parameter vector for a normalized statement:
/// user-written `?` slots come from `params`, extracted literals from the
/// slot itself. The caller validates arity before calling.
pub fn bind_slots(slots: &[ParamSlot], params: &[Value]) -> Result<Vec<Value>> {
    slots
        .iter()
        .map(|s| match s {
            ParamSlot::User(k) => params.get(*k).cloned().ok_or_else(|| {
                crate::error::SqlError::Plan(format!(
                    "no value bound for parameter ?{k} ({} provided)",
                    params.len()
                ))
            }),
            ParamSlot::Inline(v) => Ok(v.clone()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn norm(sql: &str) -> NormalizedStatement {
        normalize(&tokenize(sql).unwrap())
    }

    #[test]
    fn literals_are_parameterized() {
        let a = norm("SELECT a FROM t WHERE x > 10 AND s = 'hot'");
        let b = norm("SELECT a FROM t WHERE x > 99 AND s = 'cold'");
        assert_eq!(a.tokens, b.tokens, "fingerprints must match");
        assert_eq!(a.slots.len(), 2);
        assert!(matches!(&a.slots[0], ParamSlot::Inline(Value::Int(10))));
        assert!(matches!(&a.slots[1], ParamSlot::Inline(Value::Text(s)) if s == "hot"));
        assert_eq!(a.user_params, 0);
    }

    #[test]
    fn user_placeholders_interleave_with_literals() {
        let n = norm("SELECT a FROM t WHERE x > ? AND y < 5 AND z = ?");
        assert_eq!(n.user_params, 2);
        assert!(matches!(&n.slots[0], ParamSlot::User(0)));
        assert!(matches!(&n.slots[1], ParamSlot::Inline(Value::Int(5))));
        assert!(matches!(&n.slots[2], ParamSlot::User(1)));
        let bound = bind_slots(&n.slots, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(bound, vec![Value::Int(1), Value::Int(5), Value::Int(2)]);
    }

    #[test]
    fn limit_offset_version_stay_inline() {
        let n = norm("SELECT a FROM t VERSION 3 WHERE x = 1 LIMIT 10 OFFSET 20");
        // only the WHERE literal becomes a parameter
        assert_eq!(n.slots.len(), 1);
        assert!(matches!(&n.slots[0], ParamSlot::Inline(Value::Int(1))));
        let a = norm("SELECT a FROM t LIMIT 10");
        let b = norm("SELECT a FROM t LIMIT 20");
        assert_ne!(a.tokens, b.tokens, "LIMIT is part of the fingerprint");
    }

    #[test]
    fn date_literals_stay_inline() {
        let n = norm("SELECT a FROM t WHERE d >= DATE '1996-01-01'");
        assert!(n.slots.is_empty());
    }

    #[test]
    fn order_and_group_by_ordinals_stay_inline() {
        let n = norm("SELECT a, b FROM t GROUP BY 1 ORDER BY 2 DESC");
        assert!(n.slots.is_empty(), "ordinals must not become parameters");
        // ...but literals nested in parens inside the clause are safe
        let n = norm("SELECT a FROM t ORDER BY ABS(x - 5)");
        assert_eq!(n.slots.len(), 1);
        // and a WHERE literal after a GROUP BY subquery scope still extracts
        let n = norm("SELECT a FROM t WHERE x IN (1, 2) ORDER BY 1");
        assert_eq!(n.slots.len(), 2);
    }

    #[test]
    fn cache_invalidates_on_epoch_change() {
        let cache = PlanCache::default();
        let key = CacheKey {
            tokens: tokenize("SELECT 1").unwrap(),
            param_types: vec![],
            predict: None,
        };
        let plan = CachedPlan {
            logical: Arc::new(LogicalPlan::Values {
                schema: Arc::new(crate::schema::Schema::default()),
                rows: vec![],
            }),
            physical: PhysicalPlan::Values {
                schema: Arc::new(crate::schema::Schema::default()),
                rows: vec![],
            },
            tables: vec![],
            models: vec![],
            table_versions: vec![("t".into(), 1)],
            ddl_epoch: 1,
            options_epoch: 1,
            model_epoch: 1,
        };
        cache.insert(key.clone(), plan);
        // matching epochs + versions: hit
        assert!(matches!(
            cache.lookup(&key, (1, 1, 1), |_| Some(1)),
            Ok(CacheHit::Ready(_))
        ));
        // version drift: rebind
        assert!(matches!(
            cache.lookup(&key, (1, 1, 1), |_| Some(2)),
            Ok(CacheHit::Rebind(_))
        ));
        // epoch drift: invalidated and removed
        assert!(matches!(
            cache.lookup(&key, (2, 1, 1), |_| Some(1)),
            Err(CacheMiss::Invalidated)
        ));
        assert!(matches!(
            cache.lookup(&key, (1, 1, 1), |_| Some(1)),
            Err(CacheMiss::Cold)
        ));
        assert_eq!(cache.invalidations.load(Ordering::Relaxed), 1);
        assert_eq!(cache.hits.load(Ordering::Relaxed), 2);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 2);
    }
}
