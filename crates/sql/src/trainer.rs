//! Extension point for in-database model *training*.
//!
//! `CREATE MODEL ... AS SELECT` is a governed DDL statement: the engine
//! runs the training query, pins the lineage, and commits the produced
//! model through the same extension-object transaction path as deploy and
//! drop. But the engine does not know how to *fit* a model — that is
//! `flock-core`'s job, exactly as with [`crate::udf::InferenceProvider`]
//! for scoring. A registered [`ModelTrainer`] receives the materialized
//! training batch plus the statement's hyperparameters and returns an
//! opaque payload + metadata ready for the catalog.
//!
//! Determinism contract: given the same `TrainSpec` and the same batch,
//! `train` must return byte-identical output. The engine relies on this
//! for crash recovery — WAL replay re-installs the committed payload, and
//! `RETRAIN` under a declared seed must be reproducible and auditable.

use crate::batch::RecordBatch;
use crate::types::Value;
use crate::error::{Result, SqlError};
use std::sync::Arc;

/// Everything the statement said about how to train.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSpec {
    /// Model name being created.
    pub name: String,
    /// Model kind (e.g. `gbt`, `forest`, `linear`).
    pub kind: String,
    /// `WITH (key = literal, ...)` hyperparameter options, keys
    /// lowercased, in statement order.
    pub options: Vec<(String, Value)>,
    /// Target (label) column name as written in the statement.
    pub target: String,
    /// Output column name for scoring.
    pub output: String,
}

/// What a trainer hands back: the catalog payload plus recorded facts
/// about the fit, merged into the model's lineage by the engine.
#[derive(Debug, Clone)]
pub struct TrainedArtifact {
    /// Opaque model package bytes stored as the extension-object payload.
    pub payload: Vec<u8>,
    /// Model metadata (inputs, output, kind, lineage skeleton with
    /// holdout metrics). The engine stamps provenance fields — training
    /// query, pinned table versions, user, timestamp — on top.
    pub metadata: serde_json::Value,
    /// Rows the model was fit on (after the holdout split).
    pub train_rows: usize,
    /// Held-out rows the recorded metrics were computed on.
    pub eval_rows: usize,
}

/// Fits models over materialized query results. Implemented by
/// `flock-core`; registered via `Database::set_model_trainer`.
pub trait ModelTrainer: Send + Sync {
    /// Train `spec` over `data` (the committed result of the training
    /// query; the target column is part of the batch). Must be
    /// deterministic for a given spec + batch.
    fn train(&self, spec: &TrainSpec, data: &RecordBatch) -> Result<TrainedArtifact>;
}

/// The default trainer: rejects every CREATE MODEL. Used when the engine
/// runs standalone, without the Flock training layer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTrainer;

impl ModelTrainer for NoTrainer {
    fn train(&self, spec: &TrainSpec, _data: &RecordBatch) -> Result<TrainedArtifact> {
        Err(SqlError::Plan(format!(
            "CREATE MODEL {} requires a model trainer; none is registered",
            spec.name
        )))
    }
}

/// Shared handle to the trainer.
pub type TrainerRef = Arc<dyn ModelTrainer>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::RecordBatch;
    use crate::schema::Schema;

    #[test]
    fn no_trainer_rejects_everything() {
        let spec = TrainSpec {
            name: "m".into(),
            kind: "gbt".into(),
            options: vec![],
            target: "y".into(),
            output: "m_score".into(),
        };
        let batch = RecordBatch::new(Arc::new(Schema::new(vec![])), vec![]).unwrap();
        let err = NoTrainer.train(&spec, &batch).unwrap_err();
        assert!(matches!(err, SqlError::Plan(_)), "{err}");
    }
}
