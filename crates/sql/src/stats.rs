//! Column and table statistics.
//!
//! Statistics drive two things in Flock: classical cost-based decisions
//! (physical operator selection for inference) and the cross-optimizer's
//! *model compression* rule, which prunes decision-tree branches that can
//! never be reached given the observed min/max of the input columns.

use crate::batch::RecordBatch;
use crate::types::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Statistics for a single column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ColumnStats {
    pub null_count: usize,
    /// Minimum numeric value, when the column is numeric and non-empty.
    pub min: Option<f64>,
    /// Maximum numeric value, when the column is numeric and non-empty.
    pub max: Option<f64>,
    /// Number of distinct values (exact; tables here are memory-resident).
    pub distinct_count: usize,
    /// Distinct string values for low-cardinality text columns (capped),
    /// used to fold one-hot featurizers at optimization time.
    pub categories: Option<Vec<String>>,
}

/// Cap on how many distinct strings we retain per text column.
const MAX_TRACKED_CATEGORIES: usize = 64;

/// Statistics for a table version.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableStats {
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute exact statistics over a batch.
    pub fn compute(batch: &RecordBatch) -> TableStats {
        let mut columns = Vec::with_capacity(batch.num_columns());
        for c in batch.columns() {
            let mut stats = ColumnStats::default();
            let mut distinct: HashSet<String> = HashSet::new();
            let mut text_cats: HashSet<String> = HashSet::new();
            let mut track_cats = c.data_type() == crate::types::DataType::Text;
            for i in 0..c.len() {
                let v = c.get(i);
                if v.is_null() {
                    stats.null_count += 1;
                    continue;
                }
                if let Some(x) = v.as_f64() {
                    stats.min = Some(stats.min.map_or(x, |m| m.min(x)));
                    stats.max = Some(stats.max.map_or(x, |m| m.max(x)));
                }
                let key = match &v {
                    Value::Float(f) => format!("f{}", f.to_bits()),
                    other => other.to_string(),
                };
                if track_cats {
                    if text_cats.len() < MAX_TRACKED_CATEGORIES {
                        text_cats.insert(key.clone());
                    } else {
                        track_cats = false;
                        text_cats.clear();
                    }
                }
                distinct.insert(key);
            }
            stats.distinct_count = distinct.len();
            if track_cats && !text_cats.is_empty() {
                let mut cats: Vec<String> = text_cats.into_iter().collect();
                cats.sort();
                stats.categories = Some(cats);
            }
            columns.push(stats);
        }
        TableStats {
            row_count: batch.num_rows(),
            columns,
        }
    }

    /// Statistics for a part-backed snapshot: exact stats for the resident
    /// tail, zone-map-derived stats for the disk parts, merged. This is
    /// the *only* way part-backed stats are built — offload, append, and
    /// checkpoint recovery all call it — so stats are a deterministic
    /// function of (part manifests, tail) and never require decoding part
    /// data. Distinct counts become upper bounds (each part contributes
    /// its non-null row count) and text category tracking is dropped once
    /// any rows live on disk; both degrade planning estimates, never
    /// correctness.
    pub fn compute_with_parts(parts: &[crate::parts::PartMeta], tail: &RecordBatch) -> TableStats {
        let mut stats = TableStats::compute(tail);
        if parts.is_empty() {
            return stats;
        }
        for p in parts {
            stats.row_count += p.rows as usize;
            for (i, zone) in p.zones.iter().enumerate() {
                let Some(c) = stats.columns.get_mut(i) else {
                    continue;
                };
                c.null_count += zone.null_count as usize;
                if let Some(zmin) = zone.min {
                    c.min = Some(c.min.map_or(zmin, |m| m.min(zmin)));
                }
                if let Some(zmax) = zone.max {
                    c.max = Some(c.max.map_or(zmax, |m| m.max(zmax)));
                }
                c.distinct_count += (p.rows - zone.null_count) as usize;
                c.categories = None;
            }
        }
        stats
    }

    /// The selectivity estimate for an equality predicate on column `idx`:
    /// `1 / distinct_count` with a floor to avoid zero.
    pub fn eq_selectivity(&self, idx: usize) -> f64 {
        let d = self.columns.get(idx).map_or(1, |c| c.distinct_count.max(1));
        1.0 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;
    use std::sync::Arc;

    #[test]
    fn stats_track_min_max_nulls_distinct() {
        let schema = Arc::new(Schema::from_pairs(&[
            ("x", DataType::Float),
            ("s", DataType::Text),
        ]));
        let batch = RecordBatch::from_rows(
            schema,
            &[
                vec![Value::Float(1.5), Value::Text("a".into())],
                vec![Value::Null, Value::Text("b".into())],
                vec![Value::Float(-2.0), Value::Text("a".into())],
            ],
        )
        .unwrap();
        let st = TableStats::compute(&batch);
        assert_eq!(st.row_count, 3);
        assert_eq!(st.columns[0].null_count, 1);
        assert_eq!(st.columns[0].min, Some(-2.0));
        assert_eq!(st.columns[0].max, Some(1.5));
        assert_eq!(st.columns[0].distinct_count, 2);
        assert_eq!(st.columns[1].distinct_count, 2);
        assert_eq!(
            st.columns[1].categories.as_deref(),
            Some(&["a".to_string(), "b".to_string()][..])
        );
    }

    #[test]
    fn selectivity_uses_distinct_count() {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i % 5)]).collect();
        let batch = RecordBatch::from_rows(schema, &rows).unwrap();
        let st = TableStats::compute(&batch);
        assert!((st.eq_selectivity(0) - 0.2).abs() < 1e-12);
    }
}
