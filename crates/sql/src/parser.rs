//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::catalog::Privilege;
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Token};
use crate::types::{parse_date, DataType, Value};

/// Parse one SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a semicolon-separated script into statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.peek() == &Token::Eof {
            break;
        }
        out.push(p.statement()?);
        if !p.eat(&Token::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parse a bare expression (used by tests and the policy engine).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse one statement and report how many `?` placeholders it contains.
/// Used by the prepared-statement path to validate bind arity up front.
pub fn parse_statement_with_params(sql: &str) -> Result<(Statement, usize)> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_eof()?;
    Ok((stmt, p.params))
}

/// Parse a pre-tokenized statement (the plan cache normalizes token streams
/// before parsing, so re-rendering to text would be lossy). Returns the
/// statement plus the number of `?` placeholders encountered.
pub fn parse_token_stream(tokens: Vec<Token>) -> Result<(Statement, usize)> {
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_eof()?;
    Ok((stmt, p.params))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
            params: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consume the next token if it is the given keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Token::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.next();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected '{t}', found '{}'",
                self.peek()
            )))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw}, found '{}'",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "unexpected trailing input at '{}'",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found '{other}'"
            ))),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            return Ok(Statement::Explain {
                statement: Box::new(self.statement()?),
                analyze,
            });
        }
        if self.peek_kw("SELECT") {
            return Ok(Statement::Query(self.query()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("DROP") {
            return self.drop();
        }
        if self.eat_kw("BEGIN") || self.eat_kw("START") {
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("ALTER") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            if self.eat_kw("ADD") {
                self.eat_kw("COLUMN");
                let col_name = self.ident()?;
                let ty_name = self.ident()?.to_ascii_uppercase();
                let data_type = DataType::parse(&ty_name)
                    .ok_or_else(|| SqlError::Parse(format!("unknown type '{ty_name}'")))?;
                if self.eat(&Token::LParen) {
                    while self.peek() != &Token::RParen {
                        self.next();
                    }
                    self.expect(&Token::RParen)?;
                }
                return Ok(Statement::AlterTable {
                    name,
                    action: AlterAction::AddColumn(ColumnDecl {
                        name: col_name,
                        data_type,
                        nullable: true, // added columns backfill NULL
                    }),
                });
            }
            if self.eat_kw("DROP") {
                self.eat_kw("COLUMN");
                let col_name = self.ident()?;
                return Ok(Statement::AlterTable {
                    name,
                    action: AlterAction::DropColumn(col_name),
                });
            }
            return Err(SqlError::Parse(
                "expected ADD COLUMN or DROP COLUMN after ALTER TABLE".into(),
            ));
        }
        if self.eat_kw("SHOW") {
            if self.eat_kw("STREAMS") {
                return Ok(Statement::ShowStreams);
            }
            self.expect_kw("TABLES")?;
            return Ok(Statement::ShowTables);
        }
        if self.eat_kw("DESCRIBE") || self.eat_kw("DESC") {
            let name = self.ident()?;
            return Ok(Statement::Describe { name });
        }
        if self.eat_kw("GRANT") {
            return self.grant(false);
        }
        if self.eat_kw("REVOKE") {
            return self.grant(true);
        }
        if self.eat_kw("SET") {
            let name = self.ident()?;
            if !self.eat(&Token::Eq) {
                self.expect_kw("TO")?;
            }
            let value = if self.eat_kw("DEFAULT") {
                None
            } else {
                Some(self.expr()?)
            };
            return Ok(Statement::Set { name, value });
        }
        if self.eat_kw("RETRAIN") {
            self.expect_kw("MODEL")?;
            let name = self.ident()?;
            return Ok(Statement::RetrainModel { name });
        }
        Err(SqlError::Parse(format!(
            "unsupported statement starting at '{}'",
            self.peek()
        )))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.peek() == &Token::LParen && !self.lparen_starts_query() {
            self.expect(&Token::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = vec![self.expr()?];
                while self.eat(&Token::Comma) {
                    row.push(self.expr()?);
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.query()?))
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    /// Does the upcoming `(` open a subquery (`(SELECT ...`)?
    fn lparen_starts_query(&self) -> bool {
        self.peek() == &Token::LParen
            && matches!(self.peek2(), Token::Ident(s) if s.eq_ignore_ascii_case("SELECT"))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            selection,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, selection })
    }

    fn create(&mut self) -> Result<Statement> {
        if self.eat_kw("TABLE") {
            let if_not_exists = if self.eat_kw("IF") {
                self.expect_kw("NOT")?;
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            let columns = self.column_decls()?;
            return Ok(Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            });
        }
        if self.eat_kw("STREAM") {
            return self.create_stream();
        }
        if self.eat_kw("CONTINUOUS") {
            self.expect_kw("QUERY")?;
            return self.create_continuous_query();
        }
        if self.eat_kw("VIEW") {
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.query()?;
            return Ok(Statement::CreateView { name, query });
        }
        if self.eat_kw("USER") {
            let name = self.ident()?;
            return Ok(Statement::CreateUser { name });
        }
        if self.eat_kw("MODEL") {
            return self.create_model();
        }
        Err(SqlError::Parse(format!(
            "unsupported CREATE target '{}'",
            self.peek()
        )))
    }

    /// `CREATE MODEL name KIND kind [WITH (k = lit, ...)] TARGET col
    /// [OUTPUT out] AS SELECT ...`; the prefix through `MODEL` is already
    /// consumed. The legacy whole-table form
    /// `... FROM t TARGET y [FEATURES a, b] [OUTPUT o]` is desugared into
    /// an equivalent `AS SELECT` over the named table.
    fn create_model(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("KIND")?;
        let kind = self.ident()?.to_ascii_lowercase();
        let mut options = Vec::new();
        if self.eat_kw("WITH") {
            self.expect(&Token::LParen)?;
            loop {
                let key = self.ident()?.to_ascii_lowercase();
                self.expect(&Token::Eq)?;
                let value = match self.expr()? {
                    Expr::Literal(v) => v,
                    other => {
                        return Err(SqlError::Parse(format!(
                            "WITH option '{key}' expects a literal value, got {other}"
                        )))
                    }
                };
                options.push((key, value));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        if self.eat_kw("FROM") {
            // legacy whole-table form, desugared to `AS SELECT`
            let table = self.ident()?;
            self.expect_kw("TARGET")?;
            let target = self.ident()?;
            let mut features = Vec::new();
            if self.eat_kw("FEATURES") {
                features.push(self.ident()?);
                while self.eat(&Token::Comma) {
                    features.push(self.ident()?);
                }
            }
            let output = if self.eat_kw("OUTPUT") {
                Some(self.ident()?)
            } else {
                None
            };
            if features
                .iter()
                .any(|f| f.eq_ignore_ascii_case(&target))
            {
                return Err(SqlError::Plan(format!(
                    "target column '{target}' cannot also be a feature: training on \
                     the label leaks it into the model"
                )));
            }
            let projection = if features.is_empty() {
                vec![SelectItem::Wildcard]
            } else {
                features
                    .iter()
                    .chain(std::iter::once(&target))
                    .map(|c| SelectItem::Expr {
                        expr: Expr::Column {
                            qualifier: None,
                            name: c.clone(),
                        },
                        alias: None,
                    })
                    .collect()
            };
            let query = Query {
                select: Select {
                    distinct: false,
                    projection,
                    from: vec![TableRef::Table {
                        name: table,
                        alias: None,
                        version: None,
                    }],
                    selection: None,
                    group_by: vec![],
                    having: None,
                },
                unions: vec![],
                order_by: vec![],
                limit: None,
                offset: None,
            };
            return Ok(Statement::CreateModel {
                name,
                kind,
                options,
                target,
                output,
                query: Box::new(query),
            });
        }
        self.expect_kw("TARGET")?;
        let target = self.ident()?;
        let output = if self.eat_kw("OUTPUT") {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect_kw("AS")?;
        let query = self.query()?;
        Ok(Statement::CreateModel {
            name,
            kind,
            options,
            target,
            output,
            query: Box::new(query),
        })
    }

    /// The parenthesized column list of CREATE TABLE / CREATE STREAM.
    fn column_decls(&mut self) -> Result<Vec<ColumnDecl>> {
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ty_name = self.ident()?.to_ascii_uppercase();
            let data_type = DataType::parse(&ty_name)
                .ok_or_else(|| SqlError::Parse(format!("unknown type '{ty_name}'")))?;
            // swallow optional (n) or (p, s) length args
            if self.eat(&Token::LParen) {
                while self.peek() != &Token::RParen {
                    self.next();
                }
                self.expect(&Token::RParen)?;
            }
            let mut nullable = true;
            loop {
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    nullable = false;
                } else if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    nullable = false;
                } else if self.eat_kw("NULL") {
                    // explicit NULL marker, already the default
                } else {
                    break;
                }
            }
            columns.push(ColumnDecl {
                name: col_name,
                data_type,
                nullable,
            });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(columns)
    }

    /// `CREATE STREAM [IF NOT EXISTS] s (cols...) WATERMARK (et, lag)`;
    /// the `CREATE STREAM` prefix is already consumed.
    fn create_stream(&mut self) -> Result<Statement> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        let columns = self.column_decls()?;
        self.expect_kw("WATERMARK")?;
        self.expect(&Token::LParen)?;
        let event_time = self.ident()?;
        self.expect(&Token::Comma)?;
        let lag_ms = self.int_literal("watermark lag")?;
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateStream {
            name,
            columns,
            event_time,
            lag_ms,
            if_not_exists,
        })
    }

    /// `CREATE CONTINUOUS QUERY name ON stream WINDOW TUMBLING (size) |
    /// SLIDING (size, slide) EMIT INTO sink AS SELECT ...
    /// [WHEN expr THEN HOLD MODEL m]`; the `CREATE CONTINUOUS QUERY`
    /// prefix is already consumed.
    fn create_continuous_query(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let stream = self.ident()?;
        self.expect_kw("WINDOW")?;
        let window = if self.eat_kw("TUMBLING") {
            self.expect(&Token::LParen)?;
            let size = self.int_literal("window size")?;
            self.expect(&Token::RParen)?;
            WindowSpec::tumbling(size)
        } else if self.eat_kw("SLIDING") {
            self.expect(&Token::LParen)?;
            let size = self.int_literal("window size")?;
            self.expect(&Token::Comma)?;
            let slide = self.int_literal("window slide")?;
            self.expect(&Token::RParen)?;
            WindowSpec::sliding(size, slide)
        } else {
            return Err(SqlError::Parse(
                "expected TUMBLING or SLIDING after WINDOW".into(),
            ));
        };
        self.expect_kw("EMIT")?;
        self.expect_kw("INTO")?;
        let sink = self.ident()?;
        self.expect_kw("AS")?;
        let query = self.query()?;
        let (when, hold_model, retrain_model) = if self.eat_kw("WHEN") {
            let predicate = self.expr()?;
            self.expect_kw("THEN")?;
            if self.eat_kw("HOLD") {
                self.expect_kw("MODEL")?;
                (Some(predicate), Some(self.ident()?), None)
            } else if self.eat_kw("RETRAIN") {
                self.expect_kw("MODEL")?;
                (Some(predicate), None, Some(self.ident()?))
            } else {
                return Err(SqlError::Parse(
                    "expected HOLD MODEL or RETRAIN MODEL after THEN".into(),
                ));
            }
        } else {
            (None, None, None)
        };
        Ok(Statement::CreateContinuousQuery {
            name,
            stream,
            window,
            sink,
            query: Box::new(query),
            when,
            hold_model,
            retrain_model,
        })
    }

    /// A positive integer literal (e.g. window sizes and watermark lags).
    fn int_literal(&mut self, what: &str) -> Result<i64> {
        match self.expr()? {
            Expr::Literal(Value::Int(i)) if i >= 0 => Ok(i),
            other => Err(SqlError::Parse(format!(
                "{what} expects a non-negative integer, got {other}"
            ))),
        }
    }

    fn drop(&mut self) -> Result<Statement> {
        if self.eat_kw("TABLE") {
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("VIEW") {
            let name = self.ident()?;
            return Ok(Statement::DropView { name });
        }
        if self.eat_kw("STREAM") {
            let name = self.ident()?;
            return Ok(Statement::DropStream { name });
        }
        if self.eat_kw("CONTINUOUS") {
            self.expect_kw("QUERY")?;
            let name = self.ident()?;
            return Ok(Statement::DropContinuousQuery { name });
        }
        if self.eat_kw("MODEL") {
            let name = self.ident()?;
            return Ok(Statement::DropModel { name });
        }
        Err(SqlError::Parse(format!(
            "unsupported DROP target '{}'",
            self.peek()
        )))
    }

    fn grant(&mut self, revoke: bool) -> Result<Statement> {
        let mut privileges = Vec::new();
        if self.eat_kw("ALL") {
            privileges.extend(Privilege::ALL);
        } else {
            loop {
                let word = self.ident()?;
                let p = Privilege::parse(&word).ok_or_else(|| {
                    SqlError::Parse(format!("unknown privilege '{word}'"))
                })?;
                privileges.push(p);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("ON")?;
        let object = if self.eat_kw("MODEL") {
            GrantObject::Model(self.ident()?)
        } else {
            self.eat_kw("TABLE");
            GrantObject::Table(self.ident()?)
        };
        if revoke {
            self.expect_kw("FROM")?;
        } else {
            self.expect_kw("TO")?;
        }
        let user = self.ident()?;
        Ok(if revoke {
            Statement::Revoke {
                privileges,
                object,
                user,
            }
        } else {
            Statement::Grant {
                privileges,
                object,
                user,
            }
        })
    }

    // ---- queries ----

    fn query(&mut self) -> Result<Query> {
        let select = self.select()?;
        let mut unions = Vec::new();
        while self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            unions.push(UnionArm {
                select: self.select()?,
                all,
            });
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.unsigned()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.unsigned()?);
            }
        }
        Ok(Query {
            select,
            unions,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned(&mut self) -> Result<u64> {
        match self.next() {
            Token::Number(n) => n
                .parse::<u64>()
                .map_err(|_| SqlError::Parse(format!("expected integer, got '{n}'"))),
            other => Err(SqlError::Parse(format!(
                "expected integer, found '{other}'"
            ))),
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        self.eat_kw("ALL");
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let Token::Ident(q) = self.peek().clone() {
            if self.peek2() == &Token::Dot {
                let save = self.pos;
                self.next();
                self.next();
                if self.eat(&Token::Star) {
                    return Ok(SelectItem::QualifiedWildcard(q));
                }
                self.pos = save;
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            // bare alias: an identifier not a clause keyword
            match self.peek() {
                Token::Ident(s) if !is_clause_keyword(s) => {
                    let s = s.clone();
                    self.next();
                    Some(s)
                }
                Token::QuotedIdent(s) => {
                    let s = s.clone();
                    self.next();
                    Some(s)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let join_type = if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinType::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinType::Left
            } else if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                JoinType::Cross
            } else if self.eat_kw("JOIN") {
                JoinType::Inner
            } else {
                break;
            };
            let right = self.table_factor()?;
            let on = if join_type != JoinType::Cross && self.eat_kw("ON") {
                Some(self.expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                join_type,
                on,
            };
        }
        Ok(left)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.lparen_starts_query() {
            self.expect(&Token::LParen)?;
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let version = if self.eat_kw("VERSION") {
            Some(self.unsigned()?)
        } else {
            None
        };
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Token::Ident(s)
                    if !is_clause_keyword(s)
                        && !is_join_keyword(s)
                        && !s.eq_ignore_ascii_case("VERSION") =>
                {
                    let s = s.clone();
                    self.next();
                    Some(s)
                }
                _ => None,
            }
        };
        let version = match version {
            Some(v) => Some(v),
            None if self.eat_kw("VERSION") => Some(self.unsigned()?),
            None => None,
        };
        Ok(TableRef::Table {
            name,
            alias,
            version,
        })
    }

    // ---- expressions (precedence climbing) ----

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek_kw("NOT")
            && matches!(self.peek2(), Token::Ident(s)
                if s.eq_ignore_ascii_case("IN")
                    || s.eq_ignore_ascii_case("BETWEEN")
                    || s.eq_ignore_ascii_case("LIKE"))
        {
            self.next();
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            if self.peek_kw("SELECT") {
                let q = self.query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse(
                "expected IN, BETWEEN or LIKE after NOT".into(),
            ));
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::NotEq => BinOp::NotEq,
            Token::Lt => BinOp::Lt,
            Token::LtEq => BinOp::LtEq,
            Token::Gt => BinOp::Gt,
            Token::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.next();
        let right = self.additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Plus,
                Token::Minus => BinOp::Minus,
                Token::Concat => BinOp::Concat,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            // fold negative literals immediately
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.next();
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let f: f64 = n
                        .parse()
                        .map_err(|_| SqlError::Parse(format!("bad number '{n}'")))?;
                    Ok(Expr::Literal(Value::Float(f)))
                } else {
                    match n.parse::<i64>() {
                        Ok(i) => Ok(Expr::Literal(Value::Int(i))),
                        Err(_) => {
                            let f: f64 = n
                                .parse()
                                .map_err(|_| SqlError::Parse(format!("bad number '{n}'")))?;
                            Ok(Expr::Literal(Value::Float(f)))
                        }
                    }
                }
            }
            Token::StringLit(s) => {
                self.next();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Token::Question => {
                self.next();
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Parameter(idx))
            }
            Token::LParen => {
                if self.lparen_starts_query() {
                    self.next();
                    let q = self.query()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                self.next();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => self.ident_led_expr(word),
            Token::QuotedIdent(name) => {
                self.next();
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlError::Parse(format!(
                "unexpected token '{other}' in expression"
            ))),
        }
    }

    fn ident_led_expr(&mut self, word: String) -> Result<Expr> {
        let upper = word.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => {
                self.next();
                return Ok(Expr::Literal(Value::Null));
            }
            "TRUE" => {
                self.next();
                return Ok(Expr::Literal(Value::Bool(true)));
            }
            "FALSE" => {
                self.next();
                return Ok(Expr::Literal(Value::Bool(false)));
            }
            "DATE" => {
                if let Token::StringLit(_) = self.peek2() {
                    self.next();
                    if let Token::StringLit(s) = self.next() {
                        let d = parse_date(&s).ok_or_else(|| {
                            SqlError::Parse(format!("invalid date literal '{s}'"))
                        })?;
                        return Ok(Expr::Literal(Value::Date(d)));
                    }
                    unreachable!();
                }
            }
            "CASE" => {
                self.next();
                return self.case_expr();
            }
            "CAST" => {
                self.next();
                self.expect(&Token::LParen)?;
                let e = self.expr()?;
                self.expect_kw("AS")?;
                let ty_name = self.ident()?.to_ascii_uppercase();
                let to = DataType::parse(&ty_name)
                    .ok_or_else(|| SqlError::Parse(format!("unknown type '{ty_name}'")))?;
                if self.eat(&Token::LParen) {
                    while self.peek() != &Token::RParen {
                        self.next();
                    }
                    self.expect(&Token::RParen)?;
                }
                self.expect(&Token::RParen)?;
                return Ok(Expr::Cast {
                    expr: Box::new(e),
                    to,
                });
            }
            "EXISTS" => {
                self.next();
                self.expect(&Token::LParen)?;
                let q = self.query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Exists {
                    query: Box::new(q),
                    negated: false,
                });
            }
            "PREDICT"
                if self.peek2() == &Token::LParen => {
                    self.next();
                    self.next();
                    let model = self.ident()?;
                    let mut args = Vec::new();
                    while self.eat(&Token::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Predict {
                        model,
                        args,
                        strategy: PredictStrategy::Auto,
                    });
                }
            _ => {}
        }
        if is_clause_keyword(&word) || is_join_keyword(&word) {
            return Err(SqlError::Parse(format!(
                "unexpected keyword '{word}' in expression"
            )));
        }
        self.next();
        // function call?
        if self.peek() == &Token::LParen {
            self.next();
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Function {
                    name: upper,
                    args: vec![Expr::Wildcard],
                    distinct: false,
                });
            }
            let distinct = self.eat_kw("DISTINCT");
            let mut args = Vec::new();
            if self.peek() != &Token::RParen {
                args.push(self.expr()?);
                while self.eat(&Token::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name: upper,
                args,
                distinct,
            });
        }
        // qualified column?
        if self.eat(&Token::Dot) {
            let name = self.ident()?;
            return Ok(Expr::Column {
                qualifier: Some(word),
                name,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name: word,
        })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let operand = if !self.peek_kw("WHEN") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut when_then = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.expr()?;
            self.expect_kw("THEN")?;
            let t = self.expr()?;
            when_then.push((w, t));
        }
        if when_then.is_empty() {
            return Err(SqlError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            when_then,
            else_expr,
        })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "UNION", "ON", "AND",
        "OR", "NOT", "AS", "JOIN", "INNER", "LEFT", "RIGHT", "CROSS", "SET", "VALUES", "WHEN",
        "THEN", "ELSE", "END", "ASC", "DESC", "IS", "IN", "BETWEEN", "LIKE", "SELECT",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

fn is_join_keyword(s: &str) -> bool {
    const KW: &[&str] = &["JOIN", "INNER", "LEFT", "RIGHT", "CROSS", "ON"];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let stmt = parse_statement("SELECT a, b + 1 AS b1 FROM t WHERE a > 2 LIMIT 10").unwrap();
        let Statement::Query(q) = stmt else {
            panic!("expected query")
        };
        assert_eq!(q.select.projection.len(), 2);
        assert_eq!(q.limit, Some(10));
        assert!(q.select.selection.is_some());
    }

    #[test]
    fn parses_joins_and_aliases() {
        let stmt = parse_statement(
            "SELECT o.id, c.name FROM orders o JOIN customers AS c ON o.cust = c.id \
             LEFT JOIN region r ON c.region = r.id",
        )
        .unwrap();
        let Statement::Query(q) = stmt else {
            panic!()
        };
        let TableRef::Join { join_type, .. } = &q.select.from[0] else {
            panic!("expected join tree")
        };
        assert_eq!(*join_type, JoinType::Left);
    }

    #[test]
    fn parses_implicit_join_from_list() {
        let stmt =
            parse_statement("SELECT * FROM a, b WHERE a.x = b.y").unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        assert_eq!(q.select.from.len(), 2);
    }

    #[test]
    fn parses_group_by_having_order() {
        let stmt = parse_statement(
            "SELECT dept, COUNT(*) AS n, AVG(salary) FROM emp \
             GROUP BY dept HAVING COUNT(*) > 3 ORDER BY n DESC, dept",
        )
        .unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        assert_eq!(q.select.group_by.len(), 1);
        assert!(q.select.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].asc);
    }

    #[test]
    fn parses_predict_expression() {
        let e = parse_expr("PREDICT(churn_model, age, income * 2)").unwrap();
        let Expr::Predict { model, args, strategy } = e else {
            panic!()
        };
        assert_eq!(model, "churn_model");
        assert_eq!(args.len(), 2);
        assert_eq!(strategy, PredictStrategy::Auto);
    }

    #[test]
    fn parses_create_model_as_select() {
        let stmt = parse_statement(
            "CREATE MODEL churn KIND gbt WITH (trees = 30, seed = 7, test_fraction = 0.25) \
             TARGET churned OUTPUT churn_p \
             AS SELECT c.age, a.balance, c.churned FROM customers c \
             JOIN accounts a ON c.id = a.cust_id WHERE c.active = 1",
        )
        .unwrap();
        let Statement::CreateModel { name, kind, options, target, output, query } = stmt else {
            panic!("expected CreateModel")
        };
        assert_eq!(name, "churn");
        assert_eq!(kind, "gbt");
        assert_eq!(target, "churned");
        assert_eq!(output.as_deref(), Some("churn_p"));
        assert_eq!(options.len(), 3);
        assert_eq!(options[0], ("trees".to_string(), Value::Int(30)));
        assert_eq!(options[1], ("seed".to_string(), Value::Int(7)));
        assert_eq!(options[2], ("test_fraction".to_string(), Value::Float(0.25)));
        assert!(query.select.selection.is_some(), "WHERE clause must survive");
    }

    #[test]
    fn legacy_create_model_desugars_to_a_query() {
        let stmt = parse_statement(
            "CREATE MODEL m KIND logistic FROM labeled TARGET hi FEATURES age, income",
        )
        .unwrap();
        let Statement::CreateModel { target, query, output, .. } = stmt else {
            panic!("expected CreateModel")
        };
        assert_eq!(target, "hi");
        assert_eq!(output, None);
        // desugars to SELECT age, income, hi FROM labeled
        assert_eq!(query.select.projection.len(), 3);
        let TableRef::Table { name, .. } = &query.select.from[0] else {
            panic!("expected plain table scan")
        };
        assert_eq!(name, "labeled");
    }

    #[test]
    fn target_listed_as_feature_is_label_leakage() {
        let err = parse_statement(
            "CREATE MODEL leak KIND gbt FROM t TARGET y FEATURES x, y",
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Plan(_)), "{err}");
        assert!(err.to_string().contains("leaks"), "{err}");
        // case-insensitive: Y vs y is the same column
        let err = parse_statement(
            "CREATE MODEL leak KIND gbt FROM t TARGET y FEATURES x, Y",
        )
        .unwrap_err();
        assert!(err.to_string().contains("leaks"), "{err}");
    }

    #[test]
    fn with_options_must_be_literals() {
        let err = parse_statement(
            "CREATE MODEL m KIND gbt WITH (trees = a + 1) TARGET y AS SELECT * FROM t",
        )
        .unwrap_err();
        assert!(err.to_string().contains("literal"), "{err}");
    }

    #[test]
    fn parses_retrain_and_drop_model() {
        let stmt = parse_statement("RETRAIN MODEL churn").unwrap();
        assert!(matches!(stmt, Statement::RetrainModel { ref name } if name == "churn"));
        let stmt = parse_statement("DROP MODEL churn").unwrap();
        assert!(matches!(stmt, Statement::DropModel { ref name } if name == "churn"));
    }

    #[test]
    fn continuous_query_accepts_retrain_action() {
        let stmt = parse_statement(
            "CREATE CONTINUOUS QUERY cq ON s WINDOW TUMBLING (100) EMIT INTO sink \
             AS SELECT COUNT(*) AS n FROM s WHEN n > 10 THEN RETRAIN MODEL m",
        )
        .unwrap();
        let Statement::CreateContinuousQuery { retrain_model, hold_model, .. } = stmt else {
            panic!("expected CreateContinuousQuery")
        };
        assert_eq!(retrain_model.as_deref(), Some("m"));
        assert_eq!(hold_model, None);
    }

    #[test]
    fn parses_case_cast_between_like_in() {
        let e = parse_expr(
            "CASE WHEN x BETWEEN 1 AND 5 THEN 'low' WHEN name LIKE 'A%' THEN 'a' ELSE CAST(x AS VARCHAR) END",
        )
        .unwrap();
        assert!(matches!(e, Expr::Case { .. }));
        let e = parse_expr("x NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn parses_subqueries() {
        let stmt = parse_statement(
            "SELECT * FROM t WHERE id IN (SELECT id FROM u WHERE flag = 1) AND EXISTS (SELECT 1 FROM v)",
        )
        .unwrap();
        assert!(matches!(stmt, Statement::Query(_)));
        let stmt = parse_statement("SELECT * FROM (SELECT a FROM t) sub WHERE a > 0").unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        assert!(matches!(&q.select.from[0], TableRef::Subquery { alias, .. } if alias == "sub"));
    }

    #[test]
    fn parses_ddl_dml() {
        let stmt = parse_statement(
            "CREATE TABLE t (id INT NOT NULL, name VARCHAR(30), score DOUBLE, born DATE)",
        )
        .unwrap();
        let Statement::CreateTable { columns, .. } = stmt else {
            panic!()
        };
        assert_eq!(columns.len(), 4);
        assert!(!columns[0].nullable);

        let stmt =
            parse_statement("INSERT INTO t (id, name) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert { source, .. } = stmt else {
            panic!()
        };
        assert!(matches!(source, InsertSource::Values(rows) if rows.len() == 2));

        let stmt = parse_statement("UPDATE t SET score = score + 1 WHERE id = 3").unwrap();
        assert!(matches!(stmt, Statement::Update { .. }));

        let stmt = parse_statement("DELETE FROM t WHERE id = 3").unwrap();
        assert!(matches!(stmt, Statement::Delete { .. }));
    }

    #[test]
    fn parses_insert_from_query() {
        let stmt = parse_statement("INSERT INTO t SELECT * FROM s WHERE x > 0").unwrap();
        let Statement::Insert { source, .. } = stmt else {
            panic!()
        };
        assert!(matches!(source, InsertSource::Query(_)));
    }

    #[test]
    fn parses_grant_revoke() {
        let stmt = parse_statement("GRANT SELECT, INSERT ON TABLE t TO alice").unwrap();
        let Statement::Grant { privileges, .. } = stmt else {
            panic!()
        };
        assert_eq!(privileges.len(), 2);
        let stmt = parse_statement("REVOKE EXECUTE ON MODEL churn FROM bob").unwrap();
        let Statement::Revoke { object, .. } = stmt else {
            panic!()
        };
        assert_eq!(object, GrantObject::Model("churn".into()));
    }

    #[test]
    fn parses_txn_and_script() {
        let stmts = parse_script("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(stmts[0], Statement::Begin);
        assert_eq!(stmts[2], Statement::Commit);
    }

    #[test]
    fn parses_date_literal_and_parameters() {
        let e = parse_expr("d >= DATE '1994-01-01' AND x = ?").unwrap();
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        let parts = e.split_conjunction();
        assert!(matches!(parts[1], Expr::Binary { right, .. } if matches!(**right, Expr::Parameter(0))));
    }

    #[test]
    fn negative_literals_fold() {
        let e = parse_expr("-5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Int(-5)));
        let e = parse_expr("-2.5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Float(-2.5)));
    }

    #[test]
    fn rejects_malformed_sql() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("FOO BAR").is_err());
        assert!(parse_statement("SELECT a FROM t GROUP").is_err());
        assert!(parse_expr("CASE END").is_err());
    }

    #[test]
    fn explain_wraps_statement() {
        let stmt = parse_statement("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: false, .. }));
        let stmt = parse_statement("EXPLAIN ANALYZE SELECT * FROM t").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn count_star_parses_as_wildcard_arg() {
        let e = parse_expr("COUNT(*)").unwrap();
        let Expr::Function { name, args, .. } = e else {
            panic!()
        };
        assert_eq!(name, "COUNT");
        assert_eq!(args, vec![Expr::Wildcard]);
    }
}
