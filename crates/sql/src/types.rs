//! Scalar value and data-type definitions.

use crate::error::{Result, SqlError};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    /// Days since an arbitrary epoch; enough fidelity for TPC-style workloads.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::Text => "VARCHAR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parse a SQL type name (as produced by the lexer, uppercased).
    pub fn parse(name: &str) -> Option<DataType> {
        match name {
            "BOOLEAN" | "BOOL" => Some(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "VARCHAR" | "TEXT" | "CHAR" | "STRING" => Some(DataType::Text),
            "DATE" | "TIMESTAMP" => Some(DataType::Date),
            _ => None,
        }
    }

    /// Whether values of this type are numeric (usable in arithmetic).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }

    /// The common supertype for binary numeric operations, if any.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            (Int, Date) | (Date, Int) => Some(Date),
            _ => None,
        }
    }
}

/// A single scalar value. `Null` is typeless, matching SQL semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Date(i32),
}

impl Value {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, coercing Int/Date to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Date(d) => Some(*d as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Cast to the given type, following SQL CAST semantics. NULL casts to
    /// NULL for any target type.
    pub fn cast(&self, to: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let err = || {
            SqlError::Execution(format!(
                "cannot cast {self} to {to}",
            ))
        };
        Ok(match (self, to) {
            (v, t) if v.data_type() == Some(t) => v.clone(),
            (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
            (Value::Int(i), DataType::Bool) => Value::Bool(*i != 0),
            (Value::Int(i), DataType::Text) => Value::Text(i.to_string()),
            (Value::Int(i), DataType::Date) => Value::Date(*i as i32),
            (Value::Float(f), DataType::Int) => Value::Int(*f as i64),
            (Value::Float(f), DataType::Text) => Value::Text(format_f64(*f)),
            (Value::Float(f), DataType::Bool) => Value::Bool(*f != 0.0),
            (Value::Bool(b), DataType::Int) => Value::Int(*b as i64),
            (Value::Bool(b), DataType::Float) => Value::Float(*b as i64 as f64),
            (Value::Bool(b), DataType::Text) => Value::Text(b.to_string()),
            (Value::Date(d), DataType::Int) => Value::Int(*d as i64),
            (Value::Date(d), DataType::Text) => Value::Text(format_date(*d)),
            (Value::Text(s), DataType::Int) => {
                Value::Int(s.trim().parse::<i64>().map_err(|_| err())?)
            }
            (Value::Text(s), DataType::Float) => {
                Value::Float(s.trim().parse::<f64>().map_err(|_| err())?)
            }
            (Value::Text(s), DataType::Bool) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Value::Bool(true),
                "false" | "f" | "0" => Value::Bool(false),
                _ => return Err(err()),
            },
            (Value::Text(s), DataType::Date) => Value::Date(parse_date(s).ok_or_else(err)?),
            _ => return Err(err()),
        })
    }

    /// Three-valued SQL comparison. Returns `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            // Mixed numeric comparisons coerce to f64.
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order used by ORDER BY and sort operators. NULLs sort as if
    /// *larger* than every non-NULL value (SQL's default `NULLS LAST` for
    /// ascending sorts; a descending sort therefore puts them first), and
    /// NaN sorts as larger than every non-NaN number regardless of its
    /// sign bit — so the order is numbers, then NaN, then NULL. Within
    /// non-NULLs: numeric-coercible values (Bool/Int/Float/Date) before
    /// text. Unlike [`Value::sql_cmp`] this never returns "incomparable",
    /// so mixed-type columns still sort deterministically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            (false, false) => {}
        }
        if let (Value::Int(a), Value::Int(b)) = (self, other) {
            return a.cmp(b); // exact beyond f64 precision
        }
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => {
                // Normalize NaN sign so negative NaN does not sort below
                // -inf: every NaN compares equal, above all numbers.
                let norm = |x: f64| if x.is_nan() { f64::NAN } else { x };
                norm(a).total_cmp(&norm(b))
            }
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => self
                .as_str()
                .unwrap_or("")
                .cmp(other.as_str().unwrap_or("")),
        }
    }

    /// Equality used for grouping and hash joins: NULL == NULL here
    /// (SQL GROUP BY semantics), and floats compare by bit pattern for NaN.
    pub fn group_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits() || a == b,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// Hash the value for grouping; consistent with [`Value::group_eq`].
    pub fn group_hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hash;
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                // Hash ints as floats when they are representable so that
                // Int(1) and Float(1.0) group together, matching group_eq.
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                // group_eq treats 0.0 == -0.0, so both must hash alike.
                let f = if *f == 0.0 { 0.0 } else { *f };
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                2u8.hash(state);
                (*d as f64).to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => f.write_str(&format_f64(*x)),
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Plain equality treats NULL != NULL (use group_eq for grouping).
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// Format a float the way SQL output expects: integral floats keep a `.0`
/// suffix so the type remains visible.
pub fn format_f64(f: f64) -> String {
    if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// Render a day offset as `YYYY-MM-DD` (proleptic Gregorian, day 0 =
/// 1970-01-01).
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse `YYYY-MM-DD` into a day offset.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.trim().splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d) as i32)
}

// Howard Hinnant's algorithms for Gregorian <-> day-count conversion.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing_accepts_aliases() {
        assert_eq!(DataType::parse("INTEGER"), Some(DataType::Int));
        assert_eq!(DataType::parse("DOUBLE"), Some(DataType::Float));
        assert_eq!(DataType::parse("STRING"), Some(DataType::Text));
        assert_eq!(DataType::parse("BLOB"), None);
    }

    #[test]
    fn numeric_unification() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Text.unify(DataType::Int), None);
        assert_eq!(DataType::Bool.unify(DataType::Bool), Some(DataType::Bool));
    }

    #[test]
    fn cast_int_float_text_roundtrip() {
        assert_eq!(
            Value::Int(42).cast(DataType::Float).unwrap(),
            Value::Float(42.0)
        );
        assert_eq!(
            Value::Text("3.5".into()).cast(DataType::Float).unwrap(),
            Value::Float(3.5)
        );
        assert!(Value::Text("abc".into()).cast(DataType::Int).is_err());
        // Value::Null == Value::Null is false under SQL eq, so check is_null.
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn sql_comparison_is_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Text("a".into()).sql_cmp(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        // Cross-type non-numeric comparison yields NULL (None).
        assert_eq!(Value::Text("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_sorts_nulls_last() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[1], Value::Int(2));
        assert!(vals[2].is_null());
    }

    #[test]
    fn total_order_puts_nan_above_numbers_below_null() {
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1 << 63));
        let mut vals = [
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(neg_nan),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(0.0),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Float(f64::NEG_INFINITY));
        assert_eq!(vals[1], Value::Float(0.0));
        assert_eq!(vals[2], Value::Float(f64::INFINITY));
        // Both NaNs (either sign) sort after all numbers...
        assert!(matches!(vals[3], Value::Float(f) if f.is_nan()));
        assert!(matches!(vals[4], Value::Float(f) if f.is_nan()));
        // ...and NULL sorts after NaN.
        assert!(vals[5].is_null());
    }

    #[test]
    fn group_eq_treats_null_as_equal() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
        assert!(Value::Int(1).group_eq(&Value::Float(1.0)));
    }

    #[test]
    fn date_roundtrip() {
        for s in ["1970-01-01", "1992-02-29", "2026-07-07", "1969-12-31"] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s);
        }
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("1970-13-01"), None);
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(2.5), "2.5");
    }
}
