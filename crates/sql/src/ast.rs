//! Abstract syntax tree for the supported SQL dialect.

use crate::catalog::Privilege;
use crate::types::{DataType, Value};
use std::fmt;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        selection: Option<Expr>,
    },
    Delete {
        table: String,
        selection: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDecl>,
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    /// `ALTER TABLE t ADD COLUMN c TYPE` / `ALTER TABLE t DROP COLUMN c`.
    AlterTable {
        name: String,
        action: AlterAction,
    },
    CreateView {
        name: String,
        query: Query,
    },
    DropView {
        name: String,
    },
    Begin,
    Commit,
    Rollback,
    /// `SET <var> = <value>` / `SET <var> TO <value>` — session-local
    /// settings (e.g. `statement_timeout`). `value: None` means `DEFAULT`.
    Set {
        name: String,
        value: Option<Expr>,
    },
    /// `SHOW TABLES` — list catalog tables with size/version summary.
    ShowTables,
    /// `DESCRIBE <table>` — per-column profile from table statistics
    /// (type, nullability, min/max, distinct count, null count).
    Describe {
        name: String,
    },
    CreateUser {
        name: String,
    },
    Grant {
        privileges: Vec<Privilege>,
        object: GrantObject,
        user: String,
    },
    Revoke {
        privileges: Vec<Privilege>,
        object: GrantObject,
        user: String,
    },
    Explain {
        statement: Box<Statement>,
        /// `EXPLAIN ANALYZE`: execute the statement and annotate the plan
        /// tree with measured per-operator metrics.
        analyze: bool,
    },
    /// `CREATE STREAM s (cols...) WATERMARK (et_col, lag_ms)` — an
    /// append-only stream table: a regular WAL-durable table plus a
    /// catalog marker naming its event-time column and watermark lag.
    CreateStream {
        name: String,
        columns: Vec<ColumnDecl>,
        /// Event-time column (must be an INT column of the stream, in
        /// milliseconds).
        event_time: String,
        /// Watermark lag: watermark = max(event_time) - lag_ms.
        lag_ms: i64,
        if_not_exists: bool,
    },
    /// `DROP STREAM s` — drops the stream table and its marker.
    DropStream {
        name: String,
    },
    /// `CREATE CONTINUOUS QUERY name ON stream WINDOW TUMBLING(size) |
    /// SLIDING(size, slide) EMIT INTO sink AS SELECT ...
    /// [WHEN expr THEN HOLD MODEL m]` — register a standing windowed
    /// aggregate over a stream, emitting each closed window into `sink`.
    CreateContinuousQuery {
        name: String,
        stream: String,
        window: WindowSpec,
        sink: String,
        query: Box<Query>,
        /// Optional policy predicate over the emitted rows; any breaching
        /// row fires the transactional action.
        when: Option<Expr>,
        /// Model put on hold when `when` fires.
        hold_model: Option<String>,
        /// Model retrained (training statement re-run, new version
        /// deployed) when `when` fires.
        retrain_model: Option<String>,
    },
    /// `DROP CONTINUOUS QUERY name` — unregister; the sink table stays.
    DropContinuousQuery {
        name: String,
    },
    /// `SHOW STREAMS` — streams and registered continuous queries.
    ShowStreams,
    /// `CREATE MODEL name KIND kind [WITH (k = lit, ...)] TARGET col
    /// [OUTPUT out] AS SELECT ...` — train a model over the result of an
    /// arbitrary query and commit it as a governed, versioned,
    /// WAL-durable catalog object. The legacy
    /// `CREATE MODEL n KIND k FROM t TARGET y [FEATURES ...]` form is
    /// desugared by the parser into this shape.
    CreateModel {
        name: String,
        kind: String,
        /// `WITH (...)` hyperparameters: lowercased keys → literal values.
        options: Vec<(String, Value)>,
        /// Label column (must appear in the query's output).
        target: String,
        /// Score column name (`None` = `<name>_score`).
        output: Option<String>,
        query: Box<Query>,
    },
    /// `RETRAIN MODEL name` — re-run the recorded training statement
    /// against current data and deploy the new version in one
    /// transaction. Also fired by `WHEN ... THEN RETRAIN MODEL m`.
    RetrainModel {
        name: String,
    },
    /// `DROP MODEL name` — drop through the same registry transaction
    /// path as train and deploy.
    DropModel {
        name: String,
    },
}

/// Window shape of a continuous query. `slide_ms == size_ms` is a
/// tumbling window; `slide_ms < size_ms` is sliding (overlapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    pub size_ms: i64,
    pub slide_ms: i64,
}

impl WindowSpec {
    pub fn tumbling(size_ms: i64) -> WindowSpec {
        WindowSpec {
            size_ms,
            slide_ms: size_ms,
        }
    }

    pub fn sliding(size_ms: i64, slide_ms: i64) -> WindowSpec {
        WindowSpec { size_ms, slide_ms }
    }

    pub fn is_tumbling(&self) -> bool {
        self.size_ms == self.slide_ms
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tumbling() {
            write!(f, "TUMBLING ({})", self.size_ms)
        } else {
            write!(f, "SLIDING ({}, {})", self.size_ms, self.slide_ms)
        }
    }
}

/// An ALTER TABLE action.
#[derive(Debug, Clone, PartialEq)]
pub enum AlterAction {
    AddColumn(ColumnDecl),
    DropColumn(String),
}

/// The object of a GRANT/REVOKE.
#[derive(Debug, Clone, PartialEq)]
pub enum GrantObject {
    Table(String),
    /// `GRANT ... ON MODEL name` — models are securable like tables.
    Model(String),
}

/// Column declaration in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDecl {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

/// Source of rows for INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Query>),
}

/// A SELECT query with trailing ORDER BY / LIMIT, optionally a UNION of
/// further SELECT arms.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Select,
    /// Additional `UNION [ALL]` arms, in order.
    pub unions: Vec<UnionArm>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// One `UNION [ALL] SELECT ...` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionArm {
    pub select: Select,
    /// `true` for UNION ALL (keep duplicates).
    pub all: bool,
}

/// The SELECT core.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional alias
    Expr { expr: Expr, alias: Option<String> },
}

/// An ORDER BY item; `asc == false` means DESC. `expr` may be an output
/// ordinal (1-based) expressed as an integer literal.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        name: String,
        alias: Option<String>,
        /// Time-travel read of a specific table version
        /// (`FROM t VERSION 3`); `None` reads the latest snapshot.
        version: Option<u64>,
    },
    Subquery {
        query: Box<Query>,
        alias: String,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        join_type: JoinType,
        on: Option<Expr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
    Cross,
}

impl fmt::Display for Query {
    /// Render back to parseable SQL. Subquery-bearing table refs and
    /// expressions render as `(<subquery>)` placeholders — callers that
    /// need round-trippable text (continuous-query specs) reject
    /// subqueries up front.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.select)?;
        for arm in &self.unions {
            write!(
                f,
                " UNION {}{}",
                if arm.all { "ALL " } else { "" },
                arm.select
            )?;
        }
        if !self.order_by.is_empty() {
            let items: Vec<String> = self
                .order_by
                .iter()
                .map(|o| {
                    format!("{}{}", o.expr, if o.asc { "" } else { " DESC" })
                })
                .collect();
            write!(f, " ORDER BY {}", items.join(", "))?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        if let Some(n) = self.offset {
            write!(f, " OFFSET {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SELECT {}",
            if self.distinct { "DISTINCT " } else { "" }
        )?;
        let items: Vec<String> = self
            .projection
            .iter()
            .map(|p| match p {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
                SelectItem::Expr { expr, alias } => match alias {
                    Some(a) => format!("{expr} AS {a}"),
                    None => expr.to_string(),
                },
            })
            .collect();
        write!(f, "{}", items.join(", "))?;
        if !self.from.is_empty() {
            let tables: Vec<String> =
                self.from.iter().map(|t| t.to_string()).collect();
            write!(f, " FROM {}", tables.join(", "))?;
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let keys: Vec<String> =
                self.group_by.iter().map(|e| e.to_string()).collect();
            write!(f, " GROUP BY {}", keys.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table {
                name,
                alias,
                version,
            } => {
                write!(f, "{name}")?;
                if let Some(v) = version {
                    write!(f, " VERSION {v}")?;
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Subquery { alias, .. } => {
                write!(f, "(<subquery>) AS {alias}")
            }
            TableRef::Join {
                left,
                right,
                join_type,
                on,
            } => {
                let kind = match join_type {
                    JoinType::Inner => "JOIN",
                    JoinType::Left => "LEFT JOIN",
                    JoinType::Cross => "CROSS JOIN",
                };
                write!(f, "{left} {kind} {right}")?;
                if let Some(e) = on {
                    write!(f, " ON {e}")?;
                }
                Ok(())
            }
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
    Concat,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// The comparison with operands swapped (`a < b` -> `b > a`).
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }

    /// The logical negation of a comparison (`<` -> `>=`).
    pub fn negate(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::NotEq,
            BinOp::NotEq => BinOp::Eq,
            BinOp::Lt => BinOp::GtEq,
            BinOp::LtEq => BinOp::Gt,
            BinOp::Gt => BinOp::LtEq,
            BinOp::GtEq => BinOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// How a PREDICT call should be executed. `Auto` lets the optimizer pick;
/// the cross-optimizer's physical-selection rule rewrites it.
/// (`Hash` lets the plan cache key on a session's strategy override.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictStrategy {
    Auto,
    /// Interpret the pipeline row-at-a-time (the "inline SQL UDF" anchor).
    Row,
    /// Score the whole batch through the vectorized runtime.
    Vectorized,
    /// Level-synchronous struct-of-arrays batch kernel over flattened
    /// trees (bit-exact with `Vectorized`; non-tree models fall back).
    Batched,
    /// Partition the batch across `n` worker threads.
    Parallel(usize),
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<Expr>>,
        when_then: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    Cast {
        expr: Box<Expr>,
        to: DataType,
    },
    /// `PREDICT(model_name, arg, ...)` — ML inference as a relational
    /// expression; the Flock extension of the dialect.
    Predict {
        model: String,
        args: Vec<Expr>,
        strategy: PredictStrategy,
    },
    /// Scalar subquery.
    Subquery(Box<Query>),
    /// `*` inside COUNT(*).
    Wildcard,
    /// `?` placeholder, 0-indexed in appearance order.
    Parameter(usize),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::And, right)
    }

    /// Conjoin a list of predicates; `None` when empty.
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// Split an expression on top-level ANDs.
    pub fn split_conjunction(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                let mut v = left.split_conjunction();
                v.extend(right.split_conjunction());
                v
            }
            other => vec![other],
        }
    }

    /// Collect the (qualifier, name) pairs of all column references.
    pub fn referenced_columns(&self, out: &mut Vec<(Option<String>, String)>) {
        self.walk(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier.clone(), name.clone()));
            }
        });
    }

    /// Pre-order traversal over this expression tree (not descending into
    /// subqueries — those have their own scopes).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Cast { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in when_then {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Function { args, .. } | Expr::Predict { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Column { .. }
            | Expr::Literal(_)
            | Expr::Exists { .. }
            | Expr::Subquery(_)
            | Expr::Wildcard
            | Expr::Parameter(_) => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(Value::Text(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op: UnOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Unary { op: UnOp::Neg, expr } => write!(f, "(-{expr})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::InSubquery { expr, negated, .. } => {
                write!(
                    f,
                    "({expr} {}IN (<subquery>))",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Exists { negated, .. } => {
                write!(f, "({}EXISTS (<subquery>))", if *negated { "NOT " } else { "" })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in when_then {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{name}({}{})",
                    if *distinct { "DISTINCT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Predict { model, args, .. } => {
                let items: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                write!(f, "PREDICT({model}, {})", items.join(", "))
            }
            Expr::Subquery(_) => write!(f, "(<subquery>)"),
            Expr::Wildcard => write!(f, "*"),
            Expr::Parameter(i) => write!(f, "?{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_roundtrip() {
        let e = Expr::conjunction(vec![
            Expr::binary(Expr::col("a"), BinOp::Gt, Expr::lit(1i64)),
            Expr::binary(Expr::col("b"), BinOp::Lt, Expr::lit(2i64)),
            Expr::col("c"),
        ])
        .unwrap();
        let parts = e.split_conjunction();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].to_string(), "c");
        assert!(Expr::conjunction(vec![]).is_none());
    }

    #[test]
    fn referenced_columns_walks_nested() {
        let e = Expr::binary(
            Expr::Function {
                name: "ABS".into(),
                args: vec![Expr::col("x")],
                distinct: false,
            },
            BinOp::Plus,
            Expr::Case {
                operand: None,
                when_then: vec![(Expr::col("y"), Expr::lit(1i64))],
                else_expr: Some(Box::new(Expr::col("z"))),
            },
        );
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        let names: Vec<&str> = cols.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn op_flip_and_negate() {
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
        assert_eq!(BinOp::Eq.flip(), BinOp::Eq);
        assert_eq!(BinOp::GtEq.negate(), Some(BinOp::Lt));
        assert_eq!(BinOp::Plus.negate(), None);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::binary(Expr::col("a"), BinOp::GtEq, Expr::lit(0.5));
        assert_eq!(e.to_string(), "(a >= 0.5)");
    }
}
