//! Logical WAL records.
//!
//! The log is redo-only: each committed transaction contributes a BEGIN
//! marker, one [`RedoOp`] per catalog mutation (captured at mutation time
//! inside the transaction), a COMMIT marker, and then the query-log and
//! audit entries the commit flushed. Audit records can also appear outside
//! a commit — rolled-back transactions still flush their security events,
//! per the engine's "must survive rollback" rule — so they are standalone
//! records applied unconditionally on replay.

use super::codec::{self, Corrupt, Dec, DecodeResult, Enc};
use crate::batch::RecordBatch;
use crate::catalog::AccessDump;
use crate::engine::{AuditRecord, QueryLogEntry};
use crate::schema::Schema;

/// One logical redo operation against the catalog. Replaying a committed
/// transaction's ops in order reproduces exactly the state its commit
/// installed (table versions keep their version numbers and owning txn
/// ids, so time travel and lineage pins survive recovery).
#[derive(Debug, Clone)]
pub enum RedoOp {
    /// CREATE TABLE: a fresh table whose version 1 is the empty snapshot.
    CreateTable {
        name: String,
        schema: Schema,
        txn_id: u64,
    },
    /// Install a full snapshot as `version` (UPDATE/DELETE/ALTER; the
    /// batch carries its schema, so schema evolution needs no special op).
    PushVersion {
        table: String,
        version: u64,
        txn_id: u64,
        data: RecordBatch,
    },
    /// Install `version` by appending `rows` to the previous snapshot —
    /// the INSERT fast path, logging O(rows added) instead of O(table).
    AppendRows {
        table: String,
        version: u64,
        txn_id: u64,
        rows: RecordBatch,
    },
    DropTable {
        name: String,
    },
    /// Drop all but the newest `keep` versions (pin checks already ran at
    /// execution time; replay must reproduce the outcome verbatim).
    TruncateHistory {
        table: String,
        keep: u64,
    },
    CreateView {
        name: String,
        sql: String,
    },
    DropView {
        name: String,
    },
    CreateExtension {
        kind: String,
        name: String,
        owner: String,
        txn_id: u64,
        payload: Vec<u8>,
        metadata: serde_json::Value,
    },
    UpdateExtension {
        kind: String,
        name: String,
        version: u64,
        txn_id: u64,
        payload: Vec<u8>,
        metadata: serde_json::Value,
    },
    DropExtension {
        kind: String,
        name: String,
    },
    /// Full access-control state after the transaction. Grants commit as
    /// whole-state last-writer-wins in the engine, and the log mirrors
    /// that semantics exactly rather than inventing a finer-grained one.
    AccessSet(AccessDump),
}

/// One framed record in a WAL segment.
#[derive(Debug, Clone)]
pub enum WalRecord {
    Begin { txn_id: u64 },
    Op { txn_id: u64, op: RedoOp },
    Commit { txn_id: u64 },
    QueryLog(QueryLogEntry),
    Audit(AuditRecord),
}

fn object_kind_tag(k: crate::catalog::ObjectKind) -> u8 {
    match k {
        crate::catalog::ObjectKind::Table => 0,
        crate::catalog::ObjectKind::View => 1,
        crate::catalog::ObjectKind::Extension => 2,
    }
}

fn object_kind_from(tag: u8) -> DecodeResult<crate::catalog::ObjectKind> {
    Ok(match tag {
        0 => crate::catalog::ObjectKind::Table,
        1 => crate::catalog::ObjectKind::View,
        2 => crate::catalog::ObjectKind::Extension,
        _ => return Err(Corrupt),
    })
}

fn privilege_tag(p: crate::catalog::Privilege) -> u8 {
    crate::catalog::Privilege::ALL
        .iter()
        .position(|x| *x == p)
        .expect("Privilege::ALL covers every variant") as u8
}

fn privilege_from(tag: u8) -> DecodeResult<crate::catalog::Privilege> {
    crate::catalog::Privilege::ALL
        .get(tag as usize)
        .copied()
        .ok_or(Corrupt)
}

pub(super) fn put_access_dump(e: &mut Enc, d: &AccessDump) {
    e.u32(d.users.len() as u32);
    for u in &d.users {
        e.str(u);
    }
    e.u32(d.superusers.len() as u32);
    for u in &d.superusers {
        e.str(u);
    }
    e.u32(d.grants.len() as u32);
    for (user, obj, privs) in &d.grants {
        e.str(user);
        e.u8(object_kind_tag(obj.kind));
        e.str(&obj.name);
        e.u32(privs.len() as u32);
        for p in privs {
            e.u8(privilege_tag(*p));
        }
    }
}

pub(super) fn get_access_dump(d: &mut Dec) -> DecodeResult<AccessDump> {
    let n = d.seq_len()?;
    let mut users = Vec::with_capacity(n);
    for _ in 0..n {
        users.push(d.str()?);
    }
    let n = d.seq_len()?;
    let mut superusers = Vec::with_capacity(n);
    for _ in 0..n {
        superusers.push(d.str()?);
    }
    let n = d.seq_len()?;
    let mut grants = Vec::with_capacity(n);
    for _ in 0..n {
        let user = d.str()?;
        let kind = object_kind_from(d.u8()?)?;
        let name = d.str()?;
        let np = d.seq_len()?;
        let mut privs = Vec::with_capacity(np);
        for _ in 0..np {
            privs.push(privilege_from(d.u8()?)?);
        }
        grants.push((
            user,
            crate::catalog::ObjectRef { kind, name },
            privs,
        ));
    }
    Ok(AccessDump {
        users,
        superusers,
        grants,
    })
}

fn put_op(e: &mut Enc, op: &RedoOp) {
    match op {
        RedoOp::CreateTable {
            name,
            schema,
            txn_id,
        } => {
            e.u8(0);
            e.str(name);
            codec::put_schema(e, schema);
            e.u64(*txn_id);
        }
        RedoOp::PushVersion {
            table,
            version,
            txn_id,
            data,
        } => {
            e.u8(1);
            e.str(table);
            e.u64(*version);
            e.u64(*txn_id);
            codec::put_batch(e, data);
        }
        RedoOp::AppendRows {
            table,
            version,
            txn_id,
            rows,
        } => {
            e.u8(2);
            e.str(table);
            e.u64(*version);
            e.u64(*txn_id);
            codec::put_batch(e, rows);
        }
        RedoOp::DropTable { name } => {
            e.u8(3);
            e.str(name);
        }
        RedoOp::TruncateHistory { table, keep } => {
            e.u8(4);
            e.str(table);
            e.u64(*keep);
        }
        RedoOp::CreateView { name, sql } => {
            e.u8(5);
            e.str(name);
            e.str(sql);
        }
        RedoOp::DropView { name } => {
            e.u8(6);
            e.str(name);
        }
        RedoOp::CreateExtension {
            kind,
            name,
            owner,
            txn_id,
            payload,
            metadata,
        } => {
            e.u8(7);
            e.str(kind);
            e.str(name);
            e.str(owner);
            e.u64(*txn_id);
            e.bytes(payload);
            codec::put_json(e, metadata);
        }
        RedoOp::UpdateExtension {
            kind,
            name,
            version,
            txn_id,
            payload,
            metadata,
        } => {
            e.u8(8);
            e.str(kind);
            e.str(name);
            e.u64(*version);
            e.u64(*txn_id);
            e.bytes(payload);
            codec::put_json(e, metadata);
        }
        RedoOp::DropExtension { kind, name } => {
            e.u8(9);
            e.str(kind);
            e.str(name);
        }
        RedoOp::AccessSet(dump) => {
            e.u8(10);
            put_access_dump(e, dump);
        }
    }
}

fn get_op(d: &mut Dec) -> DecodeResult<RedoOp> {
    Ok(match d.u8()? {
        0 => RedoOp::CreateTable {
            name: d.str()?,
            schema: codec::get_schema(d)?,
            txn_id: d.u64()?,
        },
        1 => RedoOp::PushVersion {
            table: d.str()?,
            version: d.u64()?,
            txn_id: d.u64()?,
            data: codec::get_batch(d)?,
        },
        2 => RedoOp::AppendRows {
            table: d.str()?,
            version: d.u64()?,
            txn_id: d.u64()?,
            rows: codec::get_batch(d)?,
        },
        3 => RedoOp::DropTable { name: d.str()? },
        4 => RedoOp::TruncateHistory {
            table: d.str()?,
            keep: d.u64()?,
        },
        5 => RedoOp::CreateView {
            name: d.str()?,
            sql: d.str()?,
        },
        6 => RedoOp::DropView { name: d.str()? },
        7 => RedoOp::CreateExtension {
            kind: d.str()?,
            name: d.str()?,
            owner: d.str()?,
            txn_id: d.u64()?,
            payload: d.bytes()?,
            metadata: codec::get_json(d)?,
        },
        8 => RedoOp::UpdateExtension {
            kind: d.str()?,
            name: d.str()?,
            version: d.u64()?,
            txn_id: d.u64()?,
            payload: d.bytes()?,
            metadata: codec::get_json(d)?,
        },
        9 => RedoOp::DropExtension {
            kind: d.str()?,
            name: d.str()?,
        },
        10 => RedoOp::AccessSet(get_access_dump(d)?),
        _ => return Err(Corrupt),
    })
}

impl WalRecord {
    /// Encode into a raw payload (framing/checksumming is the segment
    /// writer's job).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalRecord::Begin { txn_id } => {
                e.u8(0);
                e.u64(*txn_id);
            }
            WalRecord::Op { txn_id, op } => {
                e.u8(1);
                e.u64(*txn_id);
                put_op(&mut e, op);
            }
            WalRecord::Commit { txn_id } => {
                e.u8(2);
                e.u64(*txn_id);
            }
            WalRecord::QueryLog(q) => {
                e.u8(3);
                codec::put_query_log(&mut e, q);
            }
            WalRecord::Audit(a) => {
                e.u8(4);
                codec::put_audit(&mut e, a);
            }
        }
        e.buf
    }

    /// Decode one record payload; anything malformed is [`Corrupt`].
    pub fn decode(payload: &[u8]) -> DecodeResult<WalRecord> {
        let mut d = Dec::new(payload);
        let rec = match d.u8()? {
            0 => WalRecord::Begin { txn_id: d.u64()? },
            1 => WalRecord::Op {
                txn_id: d.u64()?,
                op: get_op(&mut d)?,
            },
            2 => WalRecord::Commit { txn_id: d.u64()? },
            3 => WalRecord::QueryLog(codec::get_query_log(&mut d)?),
            4 => WalRecord::Audit(codec::get_audit(&mut d)?),
            _ => return Err(Corrupt),
        };
        d.finish()?;
        Ok(rec)
    }
}
