//! Hand-rolled binary codec for WAL records and checkpoints.
//!
//! The on-disk format must be deterministic (recovery asserts bit-identical
//! state via digests), versioned, and independent of any serialization
//! framework, so every encoder here is explicit: little-endian fixed-width
//! integers, u32-length-prefixed UTF-8 strings, floats as IEEE-754 bit
//! patterns, and one tag byte per enum variant. Decoders never panic on
//! malformed input — every failure surfaces as [`Corrupt`], which the
//! recovery path treats as a torn tail.

use crate::batch::RecordBatch;
use crate::column::ColumnVector;
use crate::engine::{AuditRecord, QueryLogEntry, StatementKind};
use crate::schema::{ColumnDef, Schema};
use crate::types::{DataType, Value};
use std::sync::Arc;

/// Marker for undecodable bytes; recovery maps this to "discard tail".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corrupt;

pub type DecodeResult<T> = std::result::Result<T, Corrupt>;

/// FNV-1a 64-bit — small, dependency-free, and plenty for torn-write
/// detection (this guards against partial writes, not adversaries).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- framing

/// Frame layout: `[len: u32 LE][checksum: u64 LE][payload: len bytes]`.
pub const FRAME_HEADER: usize = 12;

/// Largest payload a reader will accept; anything bigger is treated as a
/// corrupt length field.
const MAX_FRAME: usize = 1 << 30;

/// Append one framed, checksummed payload to `out`.
pub fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Read the frame starting at `pos`. Returns the payload and the offset
/// just past the frame, or [`Corrupt`] for a torn/invalid frame (short
/// header, short payload, unbelievable length, or checksum mismatch).
pub fn read_frame(buf: &[u8], pos: usize) -> DecodeResult<(&[u8], usize)> {
    let header = buf.get(pos..pos + FRAME_HEADER).ok_or(Corrupt)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u64::from_le_bytes(header[4..12].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(Corrupt);
    }
    let start = pos + FRAME_HEADER;
    let payload = buf.get(start..start + len).ok_or(Corrupt)?;
    if fnv64(payload) != crc {
        return Err(Corrupt);
    }
    Ok((payload, start + len))
}

// ------------------------------------------------------------- encoder

/// Append-only byte sink with typed put helpers.
#[derive(Default)]
pub struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

// ------------------------------------------------------------- decoder

/// Bounds-checked cursor over encoded bytes.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Decoders must consume the full payload; trailing garbage means the
    /// record was not produced by this writer.
    pub fn finish(&self) -> DecodeResult<()> {
        if self.done() {
            Ok(())
        } else {
            Err(Corrupt)
        }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n).ok_or(Corrupt)?;
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> DecodeResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> DecodeResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Corrupt),
        }
    }

    pub fn bytes(&mut self) -> DecodeResult<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(Corrupt);
        }
        Ok(self.take(len)?.to_vec())
    }

    pub fn str(&mut self) -> DecodeResult<String> {
        String::from_utf8(self.bytes()?).map_err(|_| Corrupt)
    }

    /// Borrow a length-prefixed byte block without copying it (part
    /// readers decode large column blocks in place).
    pub fn bytes_ref(&mut self) -> DecodeResult<&'a [u8]> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(Corrupt);
        }
        self.take(len)
    }

    /// Advance past a length-prefixed byte block without reading it
    /// (projection pushdown skips unneeded column blocks).
    pub fn skip_bytes(&mut self) -> DecodeResult<()> {
        self.bytes_ref().map(|_| ())
    }

    /// Length prefix for a repeated section, sanity-capped.
    pub fn seq_len(&mut self) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(Corrupt);
        }
        Ok(n)
    }
}

// --------------------------------------------------------- type codecs

fn data_type_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Date => 4,
    }
}

fn data_type_from(tag: u8) -> DecodeResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Date,
        _ => return Err(Corrupt),
    })
}

pub fn put_schema(e: &mut Enc, schema: &Schema) {
    e.u32(schema.len() as u32);
    for c in schema.columns() {
        e.str(&c.name);
        e.u8(data_type_tag(c.data_type));
        e.bool(c.nullable);
    }
}

pub fn get_schema(d: &mut Dec) -> DecodeResult<Schema> {
    let n = d.seq_len()?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let data_type = data_type_from(d.u8()?)?;
        let nullable = d.bool()?;
        cols.push(ColumnDef {
            name,
            data_type,
            nullable,
        });
    }
    Ok(Schema::new(cols))
}

/// Columns are encoded as type tag + row count + packed validity bitmap +
/// the raw values of non-null slots in row order.
fn put_column(e: &mut Enc, col: &ColumnVector) {
    let n = col.len();
    e.u8(data_type_tag(col.data_type()));
    e.u32(n as u32);
    let mut bits = vec![0u8; n.div_ceil(8)];
    for i in 0..n {
        if !col.is_null(i) {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    e.buf.extend_from_slice(&bits);
    for i in 0..n {
        match col.get(i) {
            Value::Null => {}
            Value::Bool(b) => e.bool(b),
            Value::Int(v) => e.i64(v),
            Value::Float(v) => e.f64(v),
            Value::Text(s) => e.str(&s),
            Value::Date(v) => e.i32(v),
        }
    }
}

fn get_column(d: &mut Dec) -> DecodeResult<ColumnVector> {
    let dt = data_type_from(d.u8()?)?;
    let n = d.u32()? as usize;
    if n > MAX_FRAME {
        return Err(Corrupt);
    }
    let bits = d.take(n.div_ceil(8))?.to_vec();
    let mut col = ColumnVector::with_capacity(dt, n);
    for i in 0..n {
        let valid = bits[i / 8] & (1 << (i % 8)) != 0;
        if !valid {
            col.push_null();
            continue;
        }
        let v = match dt {
            DataType::Bool => Value::Bool(d.bool()?),
            DataType::Int => Value::Int(d.i64()?),
            DataType::Float => Value::Float(d.f64()?),
            DataType::Text => Value::Text(d.str()?),
            DataType::Date => Value::Date(d.i32()?),
        };
        col.push(v).map_err(|_| Corrupt)?;
    }
    Ok(col)
}

pub fn put_batch(e: &mut Enc, batch: &RecordBatch) {
    put_schema(e, batch.schema());
    e.u32(batch.num_columns() as u32);
    for col in batch.columns() {
        put_column(e, col);
    }
}

pub fn get_batch(d: &mut Dec) -> DecodeResult<RecordBatch> {
    let schema = get_schema(d)?;
    let n = d.seq_len()?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        cols.push(get_column(d)?);
    }
    RecordBatch::new(Arc::new(schema), cols).map_err(|_| Corrupt)
}

/// Extension metadata rides through the log as compact JSON text; both the
/// real `serde_json` (with `Map` = `BTreeMap`) and any stand-in backend
/// render it deterministically.
pub fn put_json(e: &mut Enc, v: &serde_json::Value) {
    e.str(&v.to_string());
}

pub fn get_json(d: &mut Dec) -> DecodeResult<serde_json::Value> {
    let s = d.str()?;
    serde_json::from_str::<serde_json::Value>(&s).map_err(|_| Corrupt)
}

// ----------------------------------------------------------- log codecs

fn kind_tag(k: StatementKind) -> u8 {
    match k {
        StatementKind::Query => 0,
        StatementKind::Insert => 1,
        StatementKind::Update => 2,
        StatementKind::Delete => 3,
        StatementKind::Ddl => 4,
        StatementKind::Txn => 5,
        StatementKind::Grant => 6,
        StatementKind::Other => 7,
    }
}

fn kind_from(tag: u8) -> DecodeResult<StatementKind> {
    Ok(match tag {
        0 => StatementKind::Query,
        1 => StatementKind::Insert,
        2 => StatementKind::Update,
        3 => StatementKind::Delete,
        4 => StatementKind::Ddl,
        5 => StatementKind::Txn,
        6 => StatementKind::Grant,
        7 => StatementKind::Other,
        _ => return Err(Corrupt),
    })
}

fn put_strings(e: &mut Enc, v: &[String]) {
    e.u32(v.len() as u32);
    for s in v {
        e.str(s);
    }
}

fn get_strings(d: &mut Dec) -> DecodeResult<Vec<String>> {
    let n = d.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.str()?);
    }
    Ok(out)
}

pub fn put_query_log(e: &mut Enc, q: &QueryLogEntry) {
    e.u64(q.id);
    e.u64(q.txn_id);
    e.str(&q.user);
    e.str(&q.sql);
    e.u8(kind_tag(q.kind));
    put_strings(e, &q.tables_read);
    put_strings(e, &q.tables_written);
    e.u32(q.versions_written.len() as u32);
    for (t, v) in &q.versions_written {
        e.str(t);
        e.u64(*v);
    }
    e.u64(q.timestamp_ms);
    e.u64(q.rows_scanned);
    e.u64(q.rows_returned);
    e.u64(q.elapsed_us);
    e.u64(q.parallel_ops);
}

pub fn get_query_log(d: &mut Dec) -> DecodeResult<QueryLogEntry> {
    let id = d.u64()?;
    let txn_id = d.u64()?;
    let user = d.str()?;
    let sql = d.str()?;
    let kind = kind_from(d.u8()?)?;
    let tables_read = get_strings(d)?;
    let tables_written = get_strings(d)?;
    let n = d.seq_len()?;
    let mut versions_written = Vec::with_capacity(n);
    for _ in 0..n {
        let t = d.str()?;
        let v = d.u64()?;
        versions_written.push((t, v));
    }
    Ok(QueryLogEntry {
        id,
        txn_id,
        user,
        sql,
        kind,
        tables_read,
        tables_written,
        versions_written,
        timestamp_ms: d.u64()?,
        rows_scanned: d.u64()?,
        rows_returned: d.u64()?,
        elapsed_us: d.u64()?,
        parallel_ops: d.u64()?,
    })
}

pub fn put_audit(e: &mut Enc, a: &AuditRecord) {
    e.u64(a.seq);
    e.str(&a.user);
    e.str(&a.action);
    e.str(&a.object);
    e.str(&a.detail);
    e.u64(a.timestamp_ms);
}

pub fn get_audit(d: &mut Dec) -> DecodeResult<AuditRecord> {
    Ok(AuditRecord {
        seq: d.u64()?,
        user: d.str()?,
        action: d.str()?,
        object: d.str()?,
        detail: d.str()?,
        timestamp_ms: d.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_detect_torn_tails() {
        let mut buf = Vec::new();
        frame(&mut buf, b"hello");
        frame(&mut buf, b"");
        let (p1, next) = read_frame(&buf, 0).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, end) = read_frame(&buf, next).unwrap();
        assert_eq!(p2, b"");
        assert_eq!(end, buf.len());
        // Every strict prefix of a frame is torn.
        for cut in 0..buf.len() {
            if cut < next {
                assert!(read_frame(&buf[..cut], 0).is_err(), "cut={cut}");
            }
        }
        // A flipped payload byte fails the checksum.
        let mut bad = buf.clone();
        bad[FRAME_HEADER] ^= 0xff;
        assert!(read_frame(&bad, 0).is_err());
    }

    #[test]
    fn batch_roundtrip_preserves_nulls_and_bits() {
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Text),
        ]);
        let rows = vec![
            vec![Value::Int(i64::MIN), Value::Float(f64::NAN), Value::Null],
            vec![Value::Null, Value::Float(-0.0), Value::Text("x".into())],
        ];
        let batch = RecordBatch::from_rows(Arc::new(schema), &rows).unwrap();
        let mut e = Enc::new();
        put_batch(&mut e, &batch);
        let bytes1 = e.buf.clone();
        let mut d = Dec::new(&e.buf);
        let back = get_batch(&mut d).unwrap();
        d.finish().unwrap();
        // Bit-identical re-encoding (NaN and -0.0 preserved exactly).
        let mut e2 = Enc::new();
        put_batch(&mut e2, &back);
        assert_eq!(bytes1, e2.buf);
        assert!(back.column(0).is_null(1));
        assert!(matches!(back.column(1).get(0), Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn truncated_payload_is_corrupt_not_panic() {
        let mut e = Enc::new();
        e.str("abcdef");
        for cut in 0..e.buf.len() {
            let mut d = Dec::new(&e.buf[..cut]);
            assert!(d.str().is_err());
        }
    }
}
