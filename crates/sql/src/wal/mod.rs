//! Durability: write-ahead logging, checkpoints, and crash recovery.
//!
//! The paper makes the DBMS the system of record for EGML — tables, model
//! versions, and audit trails all live in the catalog — so losing them on
//! process exit is not an option. This module gives `flock-sql` an
//! ARIES-style redo log:
//!
//! * every commit appends length-prefixed, checksummed records (BEGIN, one
//!   logical redo record per catalog mutation, COMMIT, then the committed
//!   query-log and audit entries) to the active segment and — when
//!   [`DurabilityOptions::fsync_on_commit`] is set — fsyncs before the
//!   commit is acknowledged;
//! * a periodic checkpoint snapshots the whole committed state (table
//!   version chains, views, extension objects such as models, grants, and
//!   both logs) so recovery never replays unbounded history;
//! * [`recover`](crate::engine::Database::open_with_fs) loads the newest
//!   valid checkpoint and replays subsequent segments, discarding torn
//!   tails and transactions without a COMMIT record.
//!
//! All I/O goes through the [`DurableFs`] trait so tests can run the
//! engine against an in-memory filesystem ([`MemFs`]) and a deterministic
//! fault injector ([`FailpointFs`]) that kills the "process" at any chosen
//! write/fsync boundary.
//!
//! Serialization is a hand-rolled binary codec (not serde): the format is
//! explicitly versioned, byte-stable across platforms, and — because
//! recovery asserts bit-identical state — deterministic: maps are encoded
//! in sorted order and floats by their IEEE-754 bit pattern.

mod checkpoint;
pub(crate) mod codec;
mod fs;
mod manager;
mod record;

pub use checkpoint::Snapshot;
pub use codec::fnv64;
pub use fs::{DurableFs, FailpointFs, MemFs, StdFs};
pub(crate) use manager::build_snapshot;
pub use manager::{recover, RecoveredState, WalManager};
pub use record::{RedoOp, WalRecord};

/// Knobs for the durability subsystem.
///
/// `fsync_on_commit` is the classic latency/durability trade: when `true`
/// (the default) a commit is acknowledged only after its log records are
/// fsynced, so an acknowledged commit survives any crash; when `false`
/// records are appended but not synced, so a crash may lose a suffix of
/// recently acknowledged commits (recovery still lands on a consistent
/// committed prefix — never a torn or uncommitted state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Fsync the active segment before acknowledging each commit.
    pub fsync_on_commit: bool,
    /// Write a checkpoint after this many commits (0 disables automatic
    /// checkpoints; `Database::checkpoint_now` still works).
    pub checkpoint_every_commits: u64,
    /// How many checkpoints to retain. The older retained checkpoints (and
    /// the segments needed to replay from them) let recovery fall back if
    /// the newest checkpoint file is lost or corrupt. Clamped to >= 1.
    pub keep_checkpoints: usize,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync_on_commit: true,
            checkpoint_every_commits: 64,
            keep_checkpoints: 2,
        }
    }
}

impl DurabilityOptions {
    /// No fsync: buffered logging for bulk loads and benchmarks.
    pub fn buffered() -> Self {
        DurabilityOptions {
            fsync_on_commit: false,
            ..Default::default()
        }
    }
}

/// Deterministic digest of a state snapshot. Two states are bit-identical
/// iff their canonical encodings match, so comparing digests is how the
/// fault-injection harness asserts exact recovery.
pub fn digest(snapshot: &Snapshot) -> u64 {
    codec::fnv64(&checkpoint::encode_snapshot(snapshot))
}
