//! Segment management, checkpointing, and recovery.
//!
//! On-disk layout (flat files inside the database directory):
//!
//! * `wal.NNNNNNNN` — log segments. Segment `k` holds every record
//!   appended after checkpoint `k` was taken (`wal.00000000` holds
//!   everything before the first checkpoint).
//! * `checkpoint.NNNNNNNN` — full state snapshots, one framed checksummed
//!   record each, written to a `.tmp` file, fsynced, then renamed.
//!
//! Recovery loads the newest checkpoint that decodes cleanly (falling back
//! to an older retained one if the newest is lost or corrupt) and replays
//! the segments at or after it, in order. Replay stops at the first torn,
//! checksum-failing, or inapplicable record — everything before that point
//! is exactly the committed prefix — and trims the damaged tail so new
//! appends land on a record boundary. A transaction's redo ops are
//! buffered until its COMMIT record and applied atomically; ops without a
//! COMMIT (the crash hit mid-transaction) are discarded.

use super::checkpoint::{
    encode_snapshot, ExtensionSnapshot, ExtensionVersionSnapshot, Snapshot, TableSnapshot,
    VersionSnapshot,
};
use super::codec::{frame, read_frame};
use super::fs::DurableFs;
use super::record::{RedoOp, WalRecord};
use super::DurabilityOptions;
use crate::batch::RecordBatch;
use crate::catalog::{AccessControl, Catalog, ExtensionObject, ExtensionVersion, ViewDef};
use crate::engine::{AuditRecord, QueryLogEntry};
use crate::error::{Result, SqlError};
use crate::parts::{parse_part_name, part_file_name, validate_part_image, PartMeta};
use crate::table::Table;
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::Arc;

fn segment_name(seq: u64) -> String {
    format!("wal.{seq:08}")
}

fn checkpoint_name(seq: u64) -> String {
    format!("checkpoint.{seq:08}")
}

fn parse_seq(name: &str, prefix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?;
    if rest.len() != 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Writer side of the log: owns the active segment and the checkpoint
/// cadence. Lives inside the engine's state lock, so appends are ordered
/// exactly like commits.
pub struct WalManager {
    fs: Arc<dyn DurableFs>,
    opts: DurabilityOptions,
    /// Active segment sequence (== the newest checkpoint's sequence).
    seq: u64,
    commits_since_checkpoint: u64,
}

impl WalManager {
    pub fn options(&self) -> DurabilityOptions {
        self.opts
    }

    pub fn fs(&self) -> &Arc<dyn DurableFs> {
        &self.fs
    }

    /// Append framed records to the active segment; fsync when the
    /// durability options demand it. Nothing is installed in memory until
    /// this returns `Ok` — that is the "write-ahead" in WAL.
    pub fn append(&mut self, records: &[WalRecord]) -> io::Result<()> {
        let mut buf = Vec::new();
        for r in records {
            frame(&mut buf, &r.encode());
        }
        let name = segment_name(self.seq);
        self.fs.append(&name, &buf)?;
        if self.opts.fsync_on_commit {
            self.fs.sync(&name)?;
        }
        Ok(())
    }

    /// Record one commit; returns `true` when a checkpoint is due.
    pub fn note_commit(&mut self) -> bool {
        self.commits_since_checkpoint += 1;
        self.opts.checkpoint_every_commits > 0
            && self.commits_since_checkpoint >= self.opts.checkpoint_every_commits
    }

    /// Write a checkpoint of `snapshot` and switch to a fresh segment.
    /// Protocol: write `checkpoint.N.tmp`, fsync it, atomically rename to
    /// `checkpoint.N` — a crash at any point leaves either the old or the
    /// new checkpoint fully intact, never a half-written one.
    pub fn checkpoint(&mut self, snapshot: &Snapshot) -> io::Result<u64> {
        let seq = self.seq + 1;
        let mut framed = Vec::new();
        frame(&mut framed, &encode_snapshot(snapshot));
        let tmp = format!("{}.tmp", checkpoint_name(seq));
        self.fs.write_all(&tmp, &framed)?;
        self.fs.sync(&tmp)?;
        self.fs.rename(&tmp, &checkpoint_name(seq))?;
        self.seq = seq;
        self.commits_since_checkpoint = 0;
        self.prune();
        Ok(seq)
    }

    /// Best-effort retention: keep the newest `keep_checkpoints`
    /// checkpoints and every segment needed to replay from the oldest one
    /// retained. Failures are ignored — stale files never affect
    /// correctness, only disk usage.
    fn prune(&self) {
        let keep = self.opts.keep_checkpoints.max(1);
        let Ok(names) = self.fs.list() else { return };
        let mut checkpoints: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_seq(n, "checkpoint."))
            .collect();
        checkpoints.sort_unstable_by(|a, b| b.cmp(a));
        let Some(&floor) = checkpoints.get(..keep).and_then(|kept| kept.last()) else {
            return;
        };
        for name in &names {
            let stale_ckpt = parse_seq(name, "checkpoint.").is_some_and(|s| s < floor);
            let stale_seg = parse_seq(name, "wal.").is_some_and(|s| s < floor);
            let stale_tmp = name.ends_with(".tmp")
                && parse_seq(name.trim_end_matches(".tmp"), "checkpoint.")
                    .is_some_and(|s| s <= self.seq);
            if stale_ckpt || stale_seg || stale_tmp {
                let _ = self.fs.remove(name);
            }
        }
        self.prune_parts(&names, &checkpoints, keep);
    }

    /// Part retirement, tied to checkpoint retention: a part file is live
    /// iff at least one *retained* checkpoint references it, so recovery
    /// can fall back a generation and still find every part that
    /// generation needs. If any retained checkpoint fails to read or
    /// decode, nothing is deleted — losing disk space is recoverable,
    /// deleting a part a fallback checkpoint references is not. Part tmp
    /// files are never touched here (the background merger may own one);
    /// they are swept at open.
    fn prune_parts(&self, names: &[String], checkpoints_desc: &[u64], keep: usize) {
        let retained = &checkpoints_desc[..keep.min(checkpoints_desc.len())];
        let mut live: BTreeSet<u64> = BTreeSet::new();
        for &seq in retained {
            let Ok(bytes) = self.fs.read(&checkpoint_name(seq)) else {
                return;
            };
            let Ok((payload, _)) = read_frame(&bytes, 0) else {
                return;
            };
            let Ok(snap) = super::checkpoint::decode_snapshot(payload) else {
                return;
            };
            for t in &snap.tables {
                for v in &t.versions {
                    live.extend(v.parts.iter().map(|p| p.id));
                }
            }
        }
        for name in names {
            if let Some(id) = parse_part_name(name) {
                if !live.contains(&id) {
                    let _ = self.fs.remove(name);
                }
            }
        }
    }
}

/// True iff every part file a snapshot references exists and passes its
/// frame checksum. Recovery refuses a checkpoint generation whose parts
/// are torn or missing and falls back to an older one.
fn snapshot_parts_valid(fs: &Arc<dyn DurableFs>, snap: &Snapshot) -> bool {
    let ids: BTreeSet<u64> = snap
        .tables
        .iter()
        .flat_map(|t| &t.versions)
        .flat_map(|v| &v.parts)
        .map(|p| p.id)
        .collect();
    ids.iter().all(|&id| {
        fs.read(&part_file_name(id))
            .is_ok_and(|bytes| validate_part_image(&bytes))
    })
}

/// Everything recovery hands back to the engine.
pub struct RecoveredState {
    pub catalog: Catalog,
    pub next_txn: u64,
    pub next_log_id: u64,
    pub next_audit_seq: u64,
    pub query_log: Vec<QueryLogEntry>,
    pub audit_log: Vec<AuditRecord>,
    pub manager: WalManager,
}

/// Open a database directory: load the newest valid checkpoint, replay
/// the log, repair any torn tail, and return the recovered state plus a
/// manager positioned to append. A clean shutdown recovers with zero
/// writes — byte-for-byte, the directory is untouched.
pub fn recover(fs: Arc<dyn DurableFs>, opts: DurabilityOptions) -> Result<RecoveredState> {
    let names = fs
        .list()
        .map_err(|e| SqlError::Io(format!("listing wal directory: {e}")))?;
    let mut checkpoints: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_seq(n, "checkpoint."))
        .collect();
    checkpoints.sort_unstable_by(|a, b| b.cmp(a));
    let mut segments: Vec<u64> = names.iter().filter_map(|n| parse_seq(n, "wal.")).collect();
    segments.sort_unstable();

    // Newest checkpoint that reads and decodes cleanly wins.
    let mut base: Option<(u64, Snapshot)> = None;
    for &seq in &checkpoints {
        let Ok(bytes) = fs.read(&checkpoint_name(seq)) else {
            continue;
        };
        let Ok((payload, _)) = read_frame(&bytes, 0) else {
            continue;
        };
        let Ok(snap) = super::checkpoint::decode_snapshot(payload) else {
            continue;
        };
        if !snapshot_parts_valid(&fs, &snap) {
            continue;
        }
        base = Some((seq, snap));
        break;
    }

    let (base_seq, mut catalog, mut next_txn, mut next_log_id, mut next_audit_seq, mut query_log, mut audit_log) =
        match base {
            Some((seq, snap)) => {
                let catalog = restore_catalog(&snap)?;
                (
                    seq,
                    catalog,
                    snap.next_txn,
                    snap.next_log_id,
                    snap.next_audit_seq,
                    snap.query_log,
                    snap.audit_log,
                )
            }
            None => (0, Catalog::new(), 1, 1, 1, Vec::new(), Vec::new()),
        };

    // Replay segments at or after the checkpoint, stopping at the first
    // record that is torn, corrupt, or cannot apply.
    let mut pending: HashMap<u64, Vec<RedoOp>> = HashMap::new();
    let mut damage: Option<(u64, usize)> = None; // (segment, valid prefix)
    'segments: for &seq in segments.iter().filter(|&&s| s >= base_seq) {
        let bytes = fs
            .read(&segment_name(seq))
            .map_err(|e| SqlError::Io(format!("reading segment {seq}: {e}")))?;
        let mut pos = 0;
        while pos < bytes.len() {
            let Ok((payload, next)) = read_frame(&bytes, pos) else {
                damage = Some((seq, pos));
                break 'segments;
            };
            let Ok(record) = WalRecord::decode(payload) else {
                damage = Some((seq, pos));
                break 'segments;
            };
            let applied = match record {
                WalRecord::Begin { txn_id } => {
                    next_txn = next_txn.max(txn_id + 1);
                    pending.insert(txn_id, Vec::new());
                    Ok(())
                }
                WalRecord::Op { txn_id, op } => {
                    next_txn = next_txn.max(txn_id + 1);
                    pending.entry(txn_id).or_default().push(op);
                    Ok(())
                }
                WalRecord::Commit { txn_id } => {
                    next_txn = next_txn.max(txn_id + 1);
                    let ops = pending.remove(&txn_id).unwrap_or_default();
                    // Apply the whole transaction atomically: mutate a
                    // clone, install only on full success.
                    let mut trial = catalog.clone();
                    match ops.iter().try_for_each(|op| apply_op(&mut trial, op)) {
                        Ok(()) => {
                            catalog = trial;
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
                WalRecord::QueryLog(q) => {
                    next_log_id = next_log_id.max(q.id + 1);
                    query_log.push(q);
                    Ok(())
                }
                WalRecord::Audit(a) => {
                    next_audit_seq = next_audit_seq.max(a.seq + 1);
                    audit_log.push(a);
                    Ok(())
                }
            };
            if applied.is_err() {
                damage = Some((seq, pos));
                break 'segments;
            }
            pos = next;
        }
    }

    // Trim the damaged tail (and discard anything after it) so the next
    // append starts at a record boundary. Clean logs take this branch
    // never — recovery after clean shutdown writes nothing.
    if let Some((seq, valid)) = damage {
        let bytes = fs
            .read(&segment_name(seq))
            .map_err(|e| SqlError::Io(format!("re-reading segment {seq}: {e}")))?;
        fs.write_all(&segment_name(seq), &bytes[..valid])
            .and_then(|_| fs.sync(&segment_name(seq)))
            .map_err(|e| SqlError::Io(format!("trimming segment {seq}: {e}")))?;
        for &later in segments.iter().filter(|&&s| s > seq) {
            let _ = fs.remove(&segment_name(later));
        }
    }

    let active = match damage {
        Some((seq, _)) => seq,
        None => segments
            .last()
            .copied()
            .unwrap_or(base_seq)
            .max(base_seq),
    };

    Ok(RecoveredState {
        catalog,
        next_txn,
        next_log_id,
        next_audit_seq,
        query_log,
        audit_log,
        manager: WalManager {
            fs,
            opts,
            seq: active,
            commits_since_checkpoint: 0,
        },
    })
}

/// Apply one redo op. Version numbers are validated against the recovered
/// chain — a mismatch means the log does not belong to this state, and
/// replay stops rather than guessing.
fn apply_op(catalog: &mut Catalog, op: &RedoOp) -> Result<()> {
    match op {
        RedoOp::CreateTable {
            name,
            schema,
            txn_id,
        } => catalog.create_table(Table::new(name.clone(), schema.clone(), *txn_id)?),
        RedoOp::PushVersion {
            table,
            version,
            txn_id,
            data,
        } => catalog
            .table_mut(table)?
            .restore_version(*version, *txn_id, data.clone()),
        RedoOp::AppendRows {
            table,
            version,
            txn_id,
            rows,
        } => {
            let t = catalog.table_mut(table)?;
            let current = t.current().data.clone();
            if current.num_columns() != rows.num_columns() {
                return Err(SqlError::Io(format!(
                    "append-rows arity mismatch replaying '{table}'"
                )));
            }
            // An append only grows the resident tail; a part-backed
            // base keeps its disk prefix.
            let parts: Vec<PartMeta> = t.current().parts.clone();
            let mut cols = current.columns().to_vec();
            for (dst, src) in cols.iter_mut().zip(rows.columns()) {
                dst.append(src)?;
            }
            let batch = RecordBatch::new(t.schema().clone(), cols)?;
            t.restore_version_with_parts(*version, *txn_id, parts, batch)
        }
        RedoOp::DropTable { name } => catalog.drop_table(name),
        RedoOp::TruncateHistory { table, keep } => {
            catalog.table_mut(table)?.truncate_history(*keep as usize);
            Ok(())
        }
        RedoOp::CreateView { name, sql } => catalog.create_view(ViewDef {
            name: name.clone(),
            sql: sql.clone(),
        }),
        RedoOp::DropView { name } => catalog.drop_view(name),
        RedoOp::CreateExtension {
            kind,
            name,
            owner,
            txn_id,
            payload,
            metadata,
        } => catalog.create_extension(
            kind,
            name,
            owner,
            payload.clone(),
            metadata.clone(),
            *txn_id,
        ),
        RedoOp::UpdateExtension {
            kind,
            name,
            version,
            txn_id,
            payload,
            metadata,
        } => {
            let v = catalog.update_extension(kind, name, payload.clone(), metadata.clone(), *txn_id)?;
            if v != *version {
                return Err(SqlError::Io(format!(
                    "extension version mismatch replaying {kind} '{name}': \
                     logged {version}, replayed {v}"
                )));
            }
            Ok(())
        }
        RedoOp::DropExtension { kind, name } => catalog.drop_extension(kind, name),
        RedoOp::AccessSet(dump) => {
            catalog.access = AccessControl::from_dump(dump);
            Ok(())
        }
    }
}

/// Canonical snapshot of committed state (checkpoints and digests).
pub(crate) fn build_snapshot(
    catalog: &Catalog,
    next_txn: u64,
    next_log_id: u64,
    next_audit_seq: u64,
    query_log: &[QueryLogEntry],
    audit_log: &[AuditRecord],
) -> Snapshot {
    let tables = catalog
        .table_names()
        .iter()
        .map(|name| {
            let t = catalog.table(name).expect("listed table exists");
            TableSnapshot {
                name: t.name().to_string(),
                versions: t
                    .versions()
                    .iter()
                    .map(|v| VersionSnapshot {
                        version: v.version,
                        txn_id: v.txn_id,
                        parts: v.parts.clone(),
                        data: v.data.clone(),
                    })
                    .collect(),
            }
        })
        .collect();
    let views = catalog.views().cloned().collect();
    let extensions = catalog
        .extensions_all()
        .map(|x| ExtensionSnapshot {
            kind: x.kind.clone(),
            name: x.name.clone(),
            owner: x.owner.clone(),
            versions: x
                .versions
                .iter()
                .map(|v| ExtensionVersionSnapshot {
                    version: v.version,
                    txn_id: v.txn_id,
                    payload: v.payload.clone(),
                    metadata: v.metadata.clone(),
                })
                .collect(),
        })
        .collect();
    Snapshot {
        next_txn,
        next_log_id,
        next_audit_seq,
        tables,
        views,
        extensions,
        access: catalog.access.dump(),
        query_log: query_log.to_vec(),
        audit_log: audit_log.to_vec(),
    }
}

/// Rebuild a catalog from a decoded checkpoint.
fn restore_catalog(snap: &Snapshot) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    for t in &snap.tables {
        let history: Vec<(u64, u64, Vec<PartMeta>, RecordBatch)> = t
            .versions
            .iter()
            .map(|v| (v.version, v.txn_id, v.parts.clone(), v.data.clone()))
            .collect();
        catalog.create_table(Table::from_history(t.name.clone(), history)?)?;
    }
    for v in &snap.views {
        catalog.create_view(v.clone())?;
    }
    for x in &snap.extensions {
        catalog.install_extension(ExtensionObject {
            kind: x.kind.clone(),
            name: x.name.clone(),
            owner: x.owner.clone(),
            versions: x
                .versions
                .iter()
                .map(|v| ExtensionVersion {
                    version: v.version,
                    txn_id: v.txn_id,
                    payload: v.payload.clone(),
                    metadata: v.metadata.clone(),
                })
                .collect(),
        })?;
    }
    catalog.access = AccessControl::from_dump(&snap.access);
    Ok(catalog)
}
