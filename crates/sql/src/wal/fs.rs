//! Filesystem abstraction for the WAL.
//!
//! The engine only ever performs a handful of operations on its log
//! directory — append, full write, fsync, rename, remove, list, read — so
//! they are captured in a small object-safe trait. Production uses
//! [`StdFs`]; tests use [`MemFs`] (which models what survives a crash:
//! only fsynced bytes) and [`FailpointFs`] (which fails every mutating
//! operation after a chosen kill point, simulating a process kill at each
//! write/fsync boundary).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Minimal durable-storage interface. Paths are flat file names relative
/// to the database directory; implementations own the root.
pub trait DurableFs: Send + Sync {
    /// Read the full contents of a file.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Create or truncate a file with the given contents (not yet durable
    /// until [`DurableFs::sync`]).
    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Append bytes to a file, creating it if missing.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Make all previous writes to the file durable (fsync).
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Atomically rename a (synced) file. Implementations must make the
    /// rename itself durable before returning.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Delete a file.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// List all file names in the database directory.
    fn list(&self) -> io::Result<Vec<String>>;
}

// --------------------------------------------------------------- StdFs

/// Real filesystem rooted at a directory.
pub struct StdFs {
    root: PathBuf,
}

impl StdFs {
    /// Open (creating if needed) a database directory.
    pub fn new(root: impl AsRef<Path>) -> io::Result<StdFs> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(StdFs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Persist directory metadata (needed after rename/create on POSIX).
        #[cfg(unix)]
        {
            std::fs::File::open(&self.root)?.sync_all()?;
        }
        Ok(())
    }
}

impl DurableFs for StdFs {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        std::fs::write(self.path(name), data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))?;
        self.sync_dir()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(out)
    }
}

// --------------------------------------------------------------- MemFs

#[derive(Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed durable. Everything past this offset is lost by
    /// [`MemFs::crash_image`], modeling an OS page cache that was never
    /// flushed.
    synced: usize,
}

/// In-memory filesystem with an explicit durability model: appends and
/// writes land in volatile state until `sync`; a crash image keeps only
/// the synced prefix of every file. Renames are atomic and durable (the
/// WAL only renames files it has already synced).
#[derive(Default)]
pub struct MemFs {
    files: Mutex<HashMap<String, MemFile>>,
}

impl MemFs {
    pub fn new() -> Arc<MemFs> {
        Arc::new(MemFs::default())
    }

    /// The filesystem as it would look after a crash: every file truncated
    /// to its fsynced prefix.
    pub fn crash_image(&self) -> Arc<MemFs> {
        let files = self.files.lock();
        let mut out = HashMap::new();
        for (name, f) in files.iter() {
            out.insert(
                name.clone(),
                MemFile {
                    data: f.data[..f.synced].to_vec(),
                    synced: f.synced,
                },
            );
        }
        Arc::new(MemFs {
            files: Mutex::new(out),
        })
    }

    /// The filesystem after a clean shutdown (all buffers flushed).
    pub fn clean_image(&self) -> Arc<MemFs> {
        let files = self.files.lock();
        let mut out = HashMap::new();
        for (name, f) in files.iter() {
            out.insert(
                name.clone(),
                MemFile {
                    data: f.data.clone(),
                    synced: f.data.len(),
                },
            );
        }
        Arc::new(MemFs {
            files: Mutex::new(out),
        })
    }

    /// Raw contents of a file (tests use this to build torn images).
    pub fn file(&self, name: &str) -> Option<Vec<u8>> {
        self.files.lock().get(name).map(|f| f.data.clone())
    }

    /// Install raw, fully-synced contents (tests use this to build torn
    /// or corrupted images byte by byte).
    pub fn put_file(&self, name: &str, data: Vec<u8>) {
        let synced = data.len();
        self.files
            .lock()
            .insert(name.to_string(), MemFile { data, synced });
    }

    pub fn remove_file(&self, name: &str) {
        self.files.lock().remove(name);
    }

    pub fn file_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

impl DurableFs for MemFs {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files.lock().insert(
            name.to_string(),
            MemFile {
                data: data.to_vec(),
                synced: 0,
            },
        );
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock();
        files
            .entry(name.to_string())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let mut files = self.files.lock();
        match files.get_mut(name) {
            Some(f) => {
                f.synced = f.data.len();
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut files = self.files.lock();
        let f = files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_string()))?;
        files.insert(to.to_string(), f);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files.lock().remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.file_names())
    }
}

// ---------------------------------------------------------- FailpointFs

/// Deterministic fault injector: counts every mutating operation (append,
/// write, sync, rename, remove) and fails all of them once the count
/// exceeds the kill point, as if the process had been killed at exactly
/// that write/fsync boundary. Reads are unaffected so the harness can
/// still inspect the surviving image.
pub struct FailpointFs {
    inner: Arc<dyn DurableFs>,
    ops: AtomicU64,
    kill_after: AtomicU64,
}

impl FailpointFs {
    /// Wrap `inner`, killing after `kill_after` mutating operations
    /// (`u64::MAX` = never, useful for counting a workload's ops).
    pub fn new(inner: Arc<dyn DurableFs>, kill_after: u64) -> Arc<FailpointFs> {
        Arc::new(FailpointFs {
            inner,
            ops: AtomicU64::new(0),
            kill_after: AtomicU64::new(kill_after),
        })
    }

    /// Mutating operations attempted so far (including failed ones).
    pub fn ops_attempted(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    pub fn set_kill_after(&self, kill_after: u64) {
        self.kill_after.store(kill_after, Ordering::SeqCst);
    }

    /// Whether the kill point has been reached.
    pub fn killed(&self) -> bool {
        self.ops.load(Ordering::SeqCst) > self.kill_after.load(Ordering::SeqCst)
    }

    fn gate(&self) -> io::Result<()> {
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= self.kill_after.load(Ordering::SeqCst) {
            return Err(io::Error::other("failpoint: process killed"));
        }
        Ok(())
    }
}

impl DurableFs for FailpointFs {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.gate()?;
        self.inner.write_all(name, data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.gate()?;
        self.inner.append(name, data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.sync(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.rename(from, to)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.gate()?;
        self.inner.remove(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_crash_drops_unsynced_bytes() {
        let fs = MemFs::new();
        fs.append("wal", b"abc").unwrap();
        fs.sync("wal").unwrap();
        fs.append("wal", b"def").unwrap();
        let crashed = fs.crash_image();
        assert_eq!(crashed.read("wal").unwrap(), b"abc");
        assert_eq!(fs.clean_image().read("wal").unwrap(), b"abcdef");
    }

    #[test]
    fn failpoint_kills_all_mutations_after_boundary() {
        let mem = MemFs::new();
        let fp = FailpointFs::new(mem.clone(), 2);
        fp.append("wal", b"a").unwrap();
        fp.sync("wal").unwrap();
        assert!(fp.append("wal", b"b").is_err());
        assert!(fp.sync("wal").is_err());
        assert!(fp.killed());
        // Reads still work so the harness can take the crash image.
        assert_eq!(fp.read("wal").unwrap(), b"a");
        assert_eq!(mem.crash_image().read("wal").unwrap(), b"a");
    }
}
