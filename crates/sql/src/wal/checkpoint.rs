//! Checkpoints: full snapshots of the committed database state.
//!
//! A checkpoint file is a single framed, checksummed record containing the
//! whole durable state — table version chains, views, extension objects
//! (models), grants, both logs, and the id counters. Recovery loads the
//! newest valid checkpoint and replays only the segments written after it.
//!
//! The same canonical encoding doubles as the engine's state digest: it is
//! deterministic (sorted maps, bit-exact floats, canonical JSON), so two
//! states are bit-identical iff their encodings are.

use super::codec::{self, Corrupt, Dec, DecodeResult, Enc};
use super::record::{get_access_dump, put_access_dump};
use crate::batch::RecordBatch;
use crate::catalog::{AccessDump, ViewDef};
use crate::engine::{AuditRecord, QueryLogEntry};
use crate::parts::PartMeta;

/// Bump when the checkpoint or WAL record layout changes incompatibly.
/// v2: table versions carry a part manifest (disk-resident prefix) ahead
/// of the resident tail batch.
pub const FORMAT_VERSION: u8 = 2;

/// One table version in a snapshot (stats are recomputed on restore —
/// they are a pure function of the tail data and part zone maps).
#[derive(Debug, Clone)]
pub struct VersionSnapshot {
    pub version: u64,
    pub txn_id: u64,
    /// Manifest of the disk-resident prefix: the checkpoint references
    /// part files instead of rewriting their rows, which is what makes
    /// checkpoints O(resident tail) rather than O(table).
    pub parts: Vec<PartMeta>,
    pub data: RecordBatch,
}

#[derive(Debug, Clone)]
pub struct TableSnapshot {
    pub name: String,
    pub versions: Vec<VersionSnapshot>,
}

#[derive(Debug, Clone)]
pub struct ExtensionVersionSnapshot {
    pub version: u64,
    pub txn_id: u64,
    pub payload: Vec<u8>,
    pub metadata: serde_json::Value,
}

#[derive(Debug, Clone)]
pub struct ExtensionSnapshot {
    pub kind: String,
    pub name: String,
    pub owner: String,
    pub versions: Vec<ExtensionVersionSnapshot>,
}

/// The complete durable state of a database, in canonical order (tables,
/// views, and extensions sorted by their catalog keys).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub next_txn: u64,
    pub next_log_id: u64,
    pub next_audit_seq: u64,
    pub tables: Vec<TableSnapshot>,
    pub views: Vec<ViewDef>,
    pub extensions: Vec<ExtensionSnapshot>,
    pub access: AccessDump,
    pub query_log: Vec<QueryLogEntry>,
    pub audit_log: Vec<AuditRecord>,
}

pub fn encode_snapshot(s: &Snapshot) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(FORMAT_VERSION);
    e.u64(s.next_txn);
    e.u64(s.next_log_id);
    e.u64(s.next_audit_seq);
    e.u32(s.tables.len() as u32);
    for t in &s.tables {
        e.str(&t.name);
        e.u32(t.versions.len() as u32);
        for v in &t.versions {
            e.u64(v.version);
            e.u64(v.txn_id);
            e.u32(v.parts.len() as u32);
            for p in &v.parts {
                crate::parts::put_part_meta(&mut e, p);
            }
            codec::put_batch(&mut e, &v.data);
        }
    }
    e.u32(s.views.len() as u32);
    for v in &s.views {
        e.str(&v.name);
        e.str(&v.sql);
    }
    e.u32(s.extensions.len() as u32);
    for x in &s.extensions {
        e.str(&x.kind);
        e.str(&x.name);
        e.str(&x.owner);
        e.u32(x.versions.len() as u32);
        for v in &x.versions {
            e.u64(v.version);
            e.u64(v.txn_id);
            e.bytes(&v.payload);
            codec::put_json(&mut e, &v.metadata);
        }
    }
    put_access_dump(&mut e, &s.access);
    e.u32(s.query_log.len() as u32);
    for q in &s.query_log {
        codec::put_query_log(&mut e, q);
    }
    e.u32(s.audit_log.len() as u32);
    for a in &s.audit_log {
        codec::put_audit(&mut e, a);
    }
    e.buf
}

pub fn decode_snapshot(payload: &[u8]) -> DecodeResult<Snapshot> {
    let mut d = Dec::new(payload);
    if d.u8()? != FORMAT_VERSION {
        return Err(Corrupt);
    }
    let next_txn = d.u64()?;
    let next_log_id = d.u64()?;
    let next_audit_seq = d.u64()?;
    let n = d.seq_len()?;
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let nv = d.seq_len()?;
        let mut versions = Vec::with_capacity(nv);
        for _ in 0..nv {
            let version = d.u64()?;
            let txn_id = d.u64()?;
            let np = d.seq_len()?;
            let parts = (0..np)
                .map(|_| crate::parts::get_part_meta(&mut d))
                .collect::<DecodeResult<Vec<_>>>()?;
            versions.push(VersionSnapshot {
                version,
                txn_id,
                parts,
                data: codec::get_batch(&mut d)?,
            });
        }
        if versions.is_empty() {
            return Err(Corrupt);
        }
        tables.push(TableSnapshot { name, versions });
    }
    let n = d.seq_len()?;
    let mut views = Vec::with_capacity(n);
    for _ in 0..n {
        views.push(ViewDef {
            name: d.str()?,
            sql: d.str()?,
        });
    }
    let n = d.seq_len()?;
    let mut extensions = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = d.str()?;
        let name = d.str()?;
        let owner = d.str()?;
        let nv = d.seq_len()?;
        let mut versions = Vec::with_capacity(nv);
        for _ in 0..nv {
            versions.push(ExtensionVersionSnapshot {
                version: d.u64()?,
                txn_id: d.u64()?,
                payload: d.bytes()?,
                metadata: codec::get_json(&mut d)?,
            });
        }
        if versions.is_empty() {
            return Err(Corrupt);
        }
        extensions.push(ExtensionSnapshot {
            kind,
            name,
            owner,
            versions,
        });
    }
    let access = get_access_dump(&mut d)?;
    let n = d.seq_len()?;
    let mut query_log = Vec::with_capacity(n);
    for _ in 0..n {
        query_log.push(codec::get_query_log(&mut d)?);
    }
    let n = d.seq_len()?;
    let mut audit_log = Vec::with_capacity(n);
    for _ in 0..n {
        audit_log.push(codec::get_audit(&mut d)?);
    }
    d.finish()?;
    Ok(Snapshot {
        next_txn,
        next_log_id,
        next_audit_seq,
        tables,
        views,
        extensions,
        access,
        query_log,
        audit_log,
    })
}
