//! # flock-sql
//!
//! An in-memory, columnar SQL engine built as the DBMS substrate for the
//! Flock reference architecture (CIDR 2020, *"Cloudy with high chance of
//! DBMS"*). It provides the enterprise features the paper argues models
//! must inherit from data platforms:
//!
//! * a SQL dialect with parser, logical planner, rule-based optimizer and
//!   vectorized executor;
//! * **versioned tables** — every committed write creates a new immutable
//!   snapshot, enabling time travel and temporal provenance;
//! * **transactions** with optimistic concurrency and rollback;
//! * **extension objects** — versioned, securable catalog objects with
//!   opaque payloads, used by `flock-core` to store models as derived data;
//! * **access control and auditing** on tables *and* models;
//! * a query log for lazy provenance capture;
//! * a `PREDICT(...)` expression extension point through which the Flock
//!   inference layer plugs into query execution.

pub mod ast;
pub mod batch;
pub mod catalog;
pub mod column;
pub mod engine;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod parts;
pub mod plan;
pub mod plancache;
pub mod schema;
pub mod stats;
pub mod stream;
pub mod table;
pub mod trainer;
pub mod types;
pub mod udf;
pub mod wal;

pub use batch::RecordBatch;
pub use engine::{Database, PreparedStatement, QueryResult, Session};
pub use catalog::{AccessDump, Catalog, ObjectKind, ObjectRef, Privilege};
pub use wal::{DurabilityOptions, DurableFs, FailpointFs, MemFs, StdFs};
pub use column::ColumnVector;
pub use error::{Result, SqlError, WireError};
pub use schema::{ColumnDef, Schema};
pub use table::{Table, TableVersion};
pub use types::{DataType, Value};
