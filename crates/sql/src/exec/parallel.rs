//! Morsel-driven parallel execution primitives.
//!
//! Every parallel relational operator is built from the same two pieces:
//! a batch is split into *fixed-size morsels* (so results never depend on
//! the worker count — only scheduling does), and a small worker pool pulls
//! morsels off a shared cursor until none remain. Workers return results
//! tagged with their morsel index, and the caller reassembles them in
//! morsel order, which makes every operator bit-for-bit deterministic with
//! respect to the serial path (modulo floating-point re-association in
//! partial aggregates, which fixed morsel boundaries keep stable across
//! thread counts).

use crate::batch::RecordBatch;
use crate::error::Result;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a physical operator fans out, decided at plan time from row-count
/// estimates and [`super::ExecOptions`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelPolicy {
    /// Worker threads (1 = serial).
    pub degree: usize,
    /// Minimum actual row count before fanning out.
    pub row_threshold: usize,
    /// Fixed morsel size in rows.
    pub morsel_rows: usize,
}

impl ParallelPolicy {
    /// Never fan out.
    pub fn serial() -> Self {
        ParallelPolicy {
            degree: 1,
            row_threshold: usize::MAX,
            morsel_rows: super::DEFAULT_MORSEL_ROWS,
        }
    }

    /// Choose a degree for an operator whose input is estimated at
    /// `est_rows` rows: all of `options.threads` when the estimate clears
    /// the threshold, serial otherwise.
    pub fn from_options(options: &super::ExecOptions, est_rows: usize) -> Self {
        let degree = if options.threads > 1 && est_rows >= options.parallel_row_threshold {
            options.threads
        } else {
            1
        };
        ParallelPolicy {
            degree,
            row_threshold: options.parallel_row_threshold,
            morsel_rows: options.morsel_rows,
        }
    }

    /// Whether to actually fan out for a batch of `rows` rows.
    pub fn fan_out(&self, rows: usize) -> bool {
        self.degree > 1 && rows >= self.row_threshold && rows > self.morsel_rows
    }

    /// A copy with the degree raised to at least `degree` (used to honor
    /// explicit `PREDICT ... PARALLEL n` strategies inside projections).
    pub fn with_min_degree(mut self, degree: usize) -> Self {
        self.degree = self.degree.max(degree);
        self
    }
}

/// Split `[0, n)` into contiguous ranges of `morsel_rows` rows. Zero rows
/// means zero morsels — no worker should ever see a phantom empty range.
pub fn morsel_ranges(n: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    (0..n)
        .step_by(step)
        .map(|start| start..(start + step).min(n))
        .collect()
}

/// Run `f` over every item on a pool of `degree` workers pulling from a
/// shared cursor, returning results in item order. Falls back to a plain
/// serial loop when one worker (or one item) makes a pool pointless.
pub fn parallel_map<T, I, F>(items: &[I], degree: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    I: Sync,
    F: Fn(&I) -> Result<T> + Sync,
{
    let workers = degree.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let tagged: Vec<(usize, Result<T>)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                s.spawn(move |_| {
                    let mut out: Vec<(usize, Result<T>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    })
    .expect("thread scope");
    let mut slots: Vec<Option<T>> = items.iter().map(|_| None).collect();
    for (i, r) in tagged {
        slots[i] = Some(r?);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every morsel produces a result"))
        .collect())
}

/// Morsel-map over a batch: split into fixed-size morsels and apply `f`
/// to each on the worker pool, results in morsel order.
pub fn map_morsels<T, F>(
    batch: &RecordBatch,
    policy: &ParallelPolicy,
    f: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&RecordBatch) -> Result<T> + Sync,
{
    let morsels = batch.chunks(policy.morsel_rows);
    parallel_map(&morsels, policy.degree, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_without_overlap() {
        let rs = morsel_ranges(10, 4);
        assert_eq!(rs, vec![0..4, 4..8, 8..10]);
        assert_eq!(morsel_ranges(4, 4), vec![0..4]);
    }

    #[test]
    fn zero_rows_means_zero_morsels() {
        assert!(morsel_ranges(0, 4).is_empty());
        // map_morsels must not invoke the closure on a phantom empty morsel
        let batch = RecordBatch::empty(std::sync::Arc::new(crate::schema::Schema::new(
            vec![crate::schema::ColumnDef::new("x", crate::types::DataType::Int)],
        )));
        let calls = AtomicUsize::new(0);
        let parts = map_morsels(&batch, &ParallelPolicy::serial(), |m| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(m.num_rows())
        })
        .unwrap();
        assert!(parts.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&i| Ok(i * 2)).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_surfaces_errors() {
        let items: Vec<usize> = (0..10).collect();
        let r: Result<Vec<usize>> = parallel_map(&items, 4, |&i| {
            if i == 7 {
                Err(crate::error::SqlError::Execution("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(r.is_err());
    }
}
