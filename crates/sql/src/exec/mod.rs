//! Physical planning and execution.
//!
//! Execution is batch-materialized: every operator consumes and produces a
//! whole [`RecordBatch`]. Projections containing parallel `PREDICT` calls
//! split their input into chunks and score across worker threads — the
//! engine-level parallelism the paper credits for SONNX's speedup over
//! standalone ONNX Runtime.

pub mod agg;
pub mod expr;
pub mod functions;

pub use expr::{EvalContext, PhysExpr, PhysNode};

use crate::ast::{Expr, JoinType, PredictStrategy};
use crate::batch::RecordBatch;
use crate::catalog::Catalog;
use crate::column::ColumnVector;
use crate::error::Result;
use crate::plan::{rewrite_expr, AggCall, LogicalPlan};
use crate::schema::Schema;
use crate::types::Value;
use crate::udf::InferenceProvider;
use agg::{Accumulator, GroupKey};
use std::collections::HashMap;
use std::sync::Arc;

/// Execution tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for parallel inference (>= 1).
    pub threads: usize,
    /// Minimum batch size before a parallel projection actually fans out.
    pub parallel_row_threshold: usize,
    /// What `PREDICT(...)` with strategy `Auto` resolves to.
    pub default_predict: PredictStrategy,
}

impl Default for ExecOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ExecOptions {
            threads,
            parallel_row_threshold: 4096,
            default_predict: PredictStrategy::Parallel(threads),
        }
    }
}

impl ExecOptions {
    /// Single-threaded execution with vectorized (but serial) inference.
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            parallel_row_threshold: usize::MAX,
            default_predict: PredictStrategy::Vectorized,
        }
    }
}

/// A physical operator tree.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    Scan {
        data: RecordBatch,
    },
    Values {
        schema: Arc<Schema>,
        rows: Vec<Vec<PhysExpr>>,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: PhysExpr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<PhysExpr>,
        schema: Arc<Schema>,
        /// Chunked-parallel evaluation degree (1 = serial).
        parallelism: usize,
        /// Row threshold before fanning out.
        parallel_threshold: usize,
    },
    HashAggregate {
        input: Box<PhysicalPlan>,
        group: Vec<PhysExpr>,
        aggs: Vec<(AggCall, Option<PhysExpr>)>,
        schema: Arc<Schema>,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<PhysExpr>,
        right_keys: Vec<PhysExpr>,
        join_type: JoinType,
        filter: Option<PhysExpr>,
        schema: Arc<Schema>,
    },
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        filter: Option<PhysExpr>,
        schema: Arc<Schema>,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(PhysExpr, bool)>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        limit: Option<u64>,
        offset: u64,
    },
    Distinct {
        input: Box<PhysicalPlan>,
    },
    Union {
        inputs: Vec<PhysicalPlan>,
        schema: Arc<Schema>,
    },
}

/// Translate an (optimized) logical plan into a physical plan, snapshotting
/// table data from `catalog`.
pub fn create_physical_plan(
    logical: &LogicalPlan,
    catalog: &Catalog,
    provider: &dyn InferenceProvider,
    options: &ExecOptions,
) -> Result<PhysicalPlan> {
    Ok(match logical {
        LogicalPlan::Scan {
            table,
            version,
            projection,
            schema,
        } => {
            let t = catalog.table(table)?;
            let tv = match version {
                Some(v) => t.at_version(*v)?,
                None => t.current(),
            };
            let src = &tv.data;
            let columns: Vec<ColumnVector> = match projection {
                Some(indices) => indices.iter().map(|&i| src.column(i).clone()).collect(),
                None => src.columns().to_vec(),
            };
            PhysicalPlan::Scan {
                data: RecordBatch::new(schema.clone(), columns)?,
            }
        }
        LogicalPlan::Values { schema, rows } => {
            let empty = RecordBatch::empty(Arc::new(Schema::default()));
            let compiled: Vec<Vec<PhysExpr>> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|e| PhysExpr::compile(e, empty.schema(), provider))
                        .collect::<Result<_>>()
                })
                .collect::<Result<_>>()?;
            PhysicalPlan::Values {
                schema: schema.clone(),
                rows: compiled,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = create_physical_plan(input, catalog, provider, options)?;
            let predicate = compile(predicate, input.schema(), provider, options)?;
            PhysicalPlan::Filter {
                input: Box::new(child),
                predicate,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let child = create_physical_plan(input, catalog, provider, options)?;
            let compiled: Vec<PhysExpr> = exprs
                .iter()
                .map(|e| compile(e, input.schema(), provider, options))
                .collect::<Result<_>>()?;
            let parallelism = compiled
                .iter()
                .map(PhysExpr::predict_parallelism)
                .max()
                .unwrap_or(0)
                .max(1);
            PhysicalPlan::Project {
                input: Box::new(child),
                exprs: compiled,
                schema: schema.clone(),
                parallelism,
                parallel_threshold: options.parallel_row_threshold,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            let child = create_physical_plan(input, catalog, provider, options)?;
            let group_c: Vec<PhysExpr> = group
                .iter()
                .map(|e| compile(e, input.schema(), provider, options))
                .collect::<Result<_>>()?;
            let aggs_c: Vec<(AggCall, Option<PhysExpr>)> = aggs
                .iter()
                .map(|a| {
                    let arg = a
                        .arg
                        .as_ref()
                        .map(|e| compile(e, input.schema(), provider, options))
                        .transpose()?;
                    Ok((a.clone(), arg))
                })
                .collect::<Result<_>>()?;
            PhysicalPlan::HashAggregate {
                input: Box::new(child),
                group: group_c,
                aggs: aggs_c,
                schema: schema.clone(),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => {
            let l = create_physical_plan(left, catalog, provider, options)?;
            let r = create_physical_plan(right, catalog, provider, options)?;
            let joined_schema = schema.clone();
            let filter_c = filter
                .as_ref()
                .map(|f| compile(f, &joined_schema, provider, options))
                .transpose()?;
            if on.is_empty() {
                PhysicalPlan::NestedLoopJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    join_type: *join_type,
                    filter: filter_c,
                    schema: joined_schema,
                }
            } else {
                let left_keys: Vec<PhysExpr> = on
                    .iter()
                    .map(|(le, _)| compile(le, left.schema(), provider, options))
                    .collect::<Result<_>>()?;
                let right_keys: Vec<PhysExpr> = on
                    .iter()
                    .map(|(_, re)| compile(re, right.schema(), provider, options))
                    .collect::<Result<_>>()?;
                PhysicalPlan::HashJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys,
                    right_keys,
                    join_type: *join_type,
                    filter: filter_c,
                    schema: joined_schema,
                }
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let child = create_physical_plan(input, catalog, provider, options)?;
            let keys_c: Vec<(PhysExpr, bool)> = keys
                .iter()
                .map(|(e, asc)| Ok((compile(e, input.schema(), provider, options)?, *asc)))
                .collect::<Result<_>>()?;
            PhysicalPlan::Sort {
                input: Box::new(child),
                keys: keys_c,
            }
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => PhysicalPlan::Limit {
            input: Box::new(create_physical_plan(input, catalog, provider, options)?),
            limit: *limit,
            offset: *offset,
        },
        LogicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(create_physical_plan(input, catalog, provider, options)?),
        },
        LogicalPlan::Union { inputs, schema } => PhysicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| create_physical_plan(i, catalog, provider, options))
                .collect::<Result<_>>()?,
            schema: schema.clone(),
        },
    })
}

/// Compile with `Auto` PREDICT strategies resolved to the engine default.
fn compile(
    e: &Expr,
    schema: &Schema,
    provider: &dyn InferenceProvider,
    options: &ExecOptions,
) -> Result<PhysExpr> {
    let resolved = rewrite_expr(e.clone(), &mut |x| {
        Ok(match x {
            Expr::Predict {
                model,
                args,
                strategy: PredictStrategy::Auto,
            } => Expr::Predict {
                model,
                args,
                strategy: options.default_predict,
            },
            other => other,
        })
    })?;
    PhysExpr::compile(&resolved, schema, provider)
}

impl PhysicalPlan {
    pub fn execute(&self, ctx: &EvalContext) -> Result<RecordBatch> {
        match self {
            PhysicalPlan::Scan { data } => Ok(data.clone()),
            PhysicalPlan::Values { schema, rows } => {
                let empty = RecordBatch::empty(Arc::new(Schema::default()));
                let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
                for row in rows {
                    let vals: Vec<Value> = row
                        .iter()
                        .map(|e| e.eval_row(&empty, 0, ctx))
                        .collect::<Result<_>>()?;
                    out_rows.push(vals);
                }
                RecordBatch::from_rows(schema.clone(), &out_rows)
            }
            PhysicalPlan::Filter { input, predicate } => {
                let batch = input.execute(ctx)?;
                let col = predicate.eval(&batch, ctx)?;
                let mask: Vec<bool> = (0..batch.num_rows())
                    .map(|i| col.get(i).as_bool() == Some(true))
                    .collect();
                batch.filter(&mask)
            }
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
                parallelism,
                parallel_threshold,
            } => {
                let batch = input.execute(ctx)?;
                if *parallelism > 1 && batch.num_rows() >= *parallel_threshold {
                    return project_parallel(&batch, exprs, schema, *parallelism, ctx);
                }
                let columns: Vec<ColumnVector> = exprs
                    .iter()
                    .map(|e| e.eval(&batch, ctx))
                    .collect::<Result<_>>()?;
                RecordBatch::new(schema.clone(), columns)
            }
            PhysicalPlan::HashAggregate {
                input,
                group,
                aggs,
                schema,
            } => {
                let batch = input.execute(ctx)?;
                execute_aggregate(&batch, group, aggs, schema, ctx)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                join_type,
                filter,
                schema,
            } => {
                let lb = left.execute(ctx)?;
                let rb = right.execute(ctx)?;
                execute_hash_join(
                    &lb, &rb, left_keys, right_keys, *join_type, filter, schema, ctx,
                )
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                filter,
                schema,
            } => {
                let lb = left.execute(ctx)?;
                let rb = right.execute(ctx)?;
                let pairs: Vec<(usize, usize)> = (0..lb.num_rows())
                    .flat_map(|li| (0..rb.num_rows()).map(move |ri| (li, ri)))
                    .collect();
                finish_join(&lb, &rb, pairs, *join_type, filter, schema, ctx)
            }
            PhysicalPlan::Sort { input, keys } => {
                let batch = input.execute(ctx)?;
                let key_cols: Vec<(ColumnVector, bool)> = keys
                    .iter()
                    .map(|(e, asc)| Ok((e.eval(&batch, ctx)?, *asc)))
                    .collect::<Result<_>>()?;
                let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
                indices.sort_by(|&a, &b| {
                    for (col, asc) in &key_cols {
                        let ord = col.get(a).total_cmp(&col.get(b));
                        let ord = if *asc { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                batch.take(&indices)
            }
            PhysicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                let batch = input.execute(ctx)?;
                let start = (*offset as usize).min(batch.num_rows());
                let len = limit
                    .map(|l| l as usize)
                    .unwrap_or(batch.num_rows() - start);
                Ok(batch.slice(start, len))
            }
            PhysicalPlan::Union { inputs, schema } => {
                let batches: Vec<RecordBatch> = inputs
                    .iter()
                    .map(|i| i.execute(ctx))
                    .collect::<Result<_>>()?;
                RecordBatch::concat(schema.clone(), &batches)
            }
            PhysicalPlan::Distinct { input } => {
                let batch = input.execute(ctx)?;
                let mut seen: std::collections::HashSet<GroupKey> =
                    std::collections::HashSet::new();
                let mut keep = Vec::new();
                for i in 0..batch.num_rows() {
                    if seen.insert(GroupKey(batch.row(i))) {
                        keep.push(i);
                    }
                }
                batch.take(&keep)
            }
        }
    }

    /// Output schema of this physical operator.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            PhysicalPlan::Scan { data } => data.schema().clone(),
            PhysicalPlan::Values { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::HashAggregate { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. }
            | PhysicalPlan::Union { schema, .. }
            | PhysicalPlan::NestedLoopJoin { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.schema(),
        }
    }
}

/// Evaluate a projection in parallel over row chunks.
fn project_parallel(
    batch: &RecordBatch,
    exprs: &[PhysExpr],
    schema: &Arc<Schema>,
    parallelism: usize,
    ctx: &EvalContext,
) -> Result<RecordBatch> {
    let n = batch.num_rows();
    let chunk_rows = n.div_ceil(parallelism).max(1);
    let chunks = batch.chunks(chunk_rows);
    let results: Vec<Result<Vec<ColumnVector>>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                s.spawn(move |_| {
                    exprs
                        .iter()
                        .map(|e| e.eval(chunk, ctx))
                        .collect::<Result<Vec<_>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("thread scope");
    let mut parts: Vec<RecordBatch> = Vec::with_capacity(results.len());
    for r in results {
        parts.push(RecordBatch::new(schema.clone(), r?)?);
    }
    RecordBatch::concat(schema.clone(), &parts)
}

fn execute_aggregate(
    batch: &RecordBatch,
    group: &[PhysExpr],
    aggs: &[(AggCall, Option<PhysExpr>)],
    schema: &Arc<Schema>,
    ctx: &EvalContext,
) -> Result<RecordBatch> {
    // Evaluate group + arg columns once, vectorized.
    let group_cols: Vec<ColumnVector> = group
        .iter()
        .map(|e| e.eval(batch, ctx))
        .collect::<Result<_>>()?;
    let arg_cols: Vec<Option<ColumnVector>> = aggs
        .iter()
        .map(|(_, arg)| arg.as_ref().map(|e| e.eval(batch, ctx)).transpose())
        .collect::<Result<_>>()?;

    // Fast path: global aggregate (no GROUP BY) needs no hash table.
    if group.is_empty() {
        let mut accs: Vec<Accumulator> = aggs
            .iter()
            .map(|(call, _)| Accumulator::new(call.func, call.distinct))
            .collect();
        for row in 0..batch.num_rows() {
            for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
                match arg {
                    Some(col) => acc.update(Some(&col.get(row))),
                    None => acc.update(None),
                }
            }
        }
        let row: Vec<Value> = accs.iter().map(Accumulator::finish).collect();
        return RecordBatch::from_rows(schema.clone(), &[row]);
    }

    let mut groups: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<GroupKey> = Vec::new();
    for row in 0..batch.num_rows() {
        let key = GroupKey(group_cols.iter().map(|c| c.get(row)).collect());
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter()
                .map(|(call, _)| Accumulator::new(call.func, call.distinct))
                .collect()
        });
        for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
            match arg {
                Some(col) => acc.update(Some(&col.get(row))),
                None => acc.update(None),
            }
        }
    }

    // Global aggregate over an empty input still yields one row.
    if groups.is_empty() && group.is_empty() {
        let key = GroupKey(vec![]);
        order.push(key.clone());
        groups.insert(
            key,
            aggs.iter()
                .map(|(call, _)| Accumulator::new(call.func, call.distinct))
                .collect(),
        );
    }

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(order.len());
    for key in order {
        let accs = &groups[&key];
        let mut row = key.0.clone();
        row.extend(accs.iter().map(Accumulator::finish));
        rows.push(row);
    }
    RecordBatch::from_rows(schema.clone(), &rows)
}

#[allow(clippy::too_many_arguments)]
fn execute_hash_join(
    lb: &RecordBatch,
    rb: &RecordBatch,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    join_type: JoinType,
    filter: &Option<PhysExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalContext,
) -> Result<RecordBatch> {
    let lk: Vec<ColumnVector> = left_keys
        .iter()
        .map(|e| e.eval(lb, ctx))
        .collect::<Result<_>>()?;
    let rk: Vec<ColumnVector> = right_keys
        .iter()
        .map(|e| e.eval(rb, ctx))
        .collect::<Result<_>>()?;

    // Build on the right side.
    let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
    for ri in 0..rb.num_rows() {
        let key_vals: Vec<Value> = rk.iter().map(|c| c.get(ri)).collect();
        if key_vals.iter().any(Value::is_null) {
            continue; // NULL keys never match
        }
        table.entry(GroupKey(key_vals)).or_default().push(ri);
    }

    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for li in 0..lb.num_rows() {
        let key_vals: Vec<Value> = lk.iter().map(|c| c.get(li)).collect();
        if key_vals.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&GroupKey(key_vals)) {
            for &ri in matches {
                pairs.push((li, ri));
            }
        }
    }
    finish_join(lb, rb, pairs, join_type, filter, schema, ctx)
}

/// Materialize candidate pairs, apply the residual filter, and null-extend
/// unmatched left rows for LEFT joins.
fn finish_join(
    lb: &RecordBatch,
    rb: &RecordBatch,
    pairs: Vec<(usize, usize)>,
    join_type: JoinType,
    filter: &Option<PhysExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalContext,
) -> Result<RecordBatch> {
    let li: Vec<usize> = pairs.iter().map(|(l, _)| *l).collect();
    let ri: Vec<usize> = pairs.iter().map(|(_, r)| *r).collect();
    let left_part = lb.take(&li)?;
    let right_part = rb.take(&ri)?;
    let mut cols = left_part.columns().to_vec();
    cols.extend(right_part.columns().iter().cloned());
    let mut joined = RecordBatch::new(schema.clone(), cols)?;

    let mut matched_left: Vec<bool> = vec![false; lb.num_rows()];
    if let Some(f) = filter {
        let col = f.eval(&joined, ctx)?;
        let mask: Vec<bool> = (0..joined.num_rows())
            .map(|i| col.get(i).as_bool() == Some(true))
            .collect();
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                matched_left[li[i]] = true;
            }
        }
        joined = joined.filter(&mask)?;
    } else {
        for &l in &li {
            matched_left[l] = true;
        }
    }

    if join_type == JoinType::Left {
        let unmatched: Vec<usize> = (0..lb.num_rows())
            .filter(|&l| !matched_left[l])
            .collect();
        if !unmatched.is_empty() {
            let left_rows = lb.take(&unmatched)?;
            let mut cols = left_rows.columns().to_vec();
            for c in rb.columns() {
                let mut nulls = ColumnVector::with_capacity(c.data_type(), unmatched.len());
                for _ in 0..unmatched.len() {
                    nulls.push_null();
                }
                cols.push(nulls);
            }
            let null_ext = RecordBatch::new(schema.clone(), cols)?;
            joined = RecordBatch::concat(schema.clone(), &[joined, null_ext])?;
        }
    }
    Ok(joined)
}
