//! Physical planning and execution.
//!
//! Execution is batch-materialized: every operator consumes and produces a
//! whole [`RecordBatch`]. Operators over large inputs run *morsel-driven
//! parallel*: the batch splits into fixed-size morsels that a worker pool
//! drains — filters and projections evaluate per morsel, aggregates run
//! two-phase (thread-local partials merged at the barrier), hash joins
//! partition the build side and probe morsels concurrently, and sorts
//! merge per-run sorted indices. This is the engine-supplied parallelism
//! the paper credits for SONNX's speedup over standalone ONNX Runtime,
//! generalized from PREDICT projections to the whole relational algebra.

pub mod agg;
pub mod cancel;
pub mod expr;
pub mod functions;
pub mod metrics;
pub mod parallel;
pub mod window;

pub use cancel::{AdmissionController, AdmissionSlot, CancelHandle, CancelToken, QueryBudget};
pub use expr::{EvalContext, PhysExpr, PhysNode};
pub use metrics::{EngineMetrics, OpMetrics, OpSnapshot, PlanMetrics};
pub use parallel::ParallelPolicy;

use crate::ast::{BinOp, Expr, JoinType, PredictStrategy};
use crate::batch::RecordBatch;
use crate::catalog::Catalog;
use crate::column::ColumnVector;
use crate::error::Result;
use crate::plan::{rewrite_expr, AggCall, LogicalPlan};
use crate::schema::Schema;
use crate::types::Value;
use crate::udf::InferenceProvider;
use agg::{Accumulator, GroupKey};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;

/// Default fixed morsel size. Morsel boundaries are independent of the
/// worker count so that results (including floating-point partial-sum
/// order) never vary with the degree of parallelism.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Execution tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for parallel operators and inference (>= 1).
    pub threads: usize,
    /// Minimum estimated/actual row count before an operator fans out.
    pub parallel_row_threshold: usize,
    /// Fixed morsel size in rows (>= 1).
    pub morsel_rows: usize,
    /// What `PREDICT(...)` with strategy `Auto` resolves to.
    pub default_predict: PredictStrategy,
    /// Database-default statement deadline in milliseconds (0 = none).
    /// Sessions may override it with `SET statement_timeout = <ms>`.
    pub statement_timeout_ms: u64,
    /// Admission limit: maximum queries executing concurrently on this
    /// database (0 = unlimited). Excess queries are rejected immediately
    /// with `SqlError::Admission`, never queued.
    pub max_concurrent_queries: usize,
    /// Per-query budget on cumulative rows materialized across all
    /// operators (0 = unlimited).
    pub max_rows_budget: u64,
    /// Per-query budget on approximate bytes materialized across all
    /// operators (0 = unlimited).
    pub max_mem_bytes: u64,
}

impl Default for ExecOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ExecOptions {
            threads,
            parallel_row_threshold: 4096,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            default_predict: PredictStrategy::Parallel(threads),
            statement_timeout_ms: 0,
            max_concurrent_queries: 0,
            max_rows_budget: 0,
            max_mem_bytes: 0,
        }
    }
}

impl ExecOptions {
    /// Single-threaded execution with vectorized (but serial) inference.
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            parallel_row_threshold: usize::MAX,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            default_predict: PredictStrategy::Vectorized,
            ..ExecOptions::default()
        }
    }

    /// Multi-threaded execution with an explicit degree and fan-out
    /// threshold (both clamped to >= 1).
    pub fn with_threads(threads: usize, parallel_row_threshold: usize) -> Self {
        ExecOptions {
            threads,
            parallel_row_threshold,
            ..ExecOptions::default()
        }
        .validated()
    }

    /// Clamp every knob into its valid range: a zero-thread or zero-morsel
    /// configuration must degrade to serial execution, never panic the
    /// worker scope.
    pub fn validated(mut self) -> Self {
        self.threads = self.threads.max(1);
        self.parallel_row_threshold = self.parallel_row_threshold.max(1);
        self.morsel_rows = self.morsel_rows.max(1);
        if let PredictStrategy::Parallel(n) = self.default_predict {
            self.default_predict = PredictStrategy::Parallel(n.max(1));
        }
        self
    }
}

/// A physical operator tree.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    Scan {
        data: RecordBatch,
    },
    /// Streaming scan over a part-backed table version: disk parts decode
    /// one at a time (projection pushdown skips unwanted column blocks),
    /// the fused filter runs per chunk, and only survivors materialize —
    /// peak decode memory is one part, not the table. Planning consumes
    /// the per-part zone maps to drop whole parts the filter cannot match.
    PartScan {
        schema: Arc<Schema>,
        store: Arc<crate::parts::PartStore>,
        /// Parts to scan (post-pruning), oldest first.
        parts: Vec<crate::parts::PartMeta>,
        /// Parts skipped by zone-map pruning, of `total` before pruning.
        pruned: usize,
        total: usize,
        /// Projected resident tail (scanned after the parts).
        tail: RecordBatch,
        /// Base-table column indices to decode; `None` = all columns.
        projection: Option<Vec<usize>>,
        /// Filter fused into the scan, compiled against `schema`.
        predicate: Option<PhysExpr>,
        policy: ParallelPolicy,
    },
    Values {
        schema: Arc<Schema>,
        rows: Vec<Vec<PhysExpr>>,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: PhysExpr,
        policy: ParallelPolicy,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<PhysExpr>,
        schema: Arc<Schema>,
        policy: ParallelPolicy,
    },
    HashAggregate {
        input: Box<PhysicalPlan>,
        group: Vec<PhysExpr>,
        aggs: Vec<(AggCall, Option<PhysExpr>)>,
        schema: Arc<Schema>,
        policy: ParallelPolicy,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<PhysExpr>,
        right_keys: Vec<PhysExpr>,
        join_type: JoinType,
        filter: Option<PhysExpr>,
        schema: Arc<Schema>,
        policy: ParallelPolicy,
    },
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        filter: Option<PhysExpr>,
        schema: Arc<Schema>,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(PhysExpr, bool)>,
        policy: ParallelPolicy,
    },
    Limit {
        input: Box<PhysicalPlan>,
        limit: Option<u64>,
        offset: u64,
    },
    Distinct {
        input: Box<PhysicalPlan>,
    },
    Union {
        inputs: Vec<PhysicalPlan>,
        schema: Arc<Schema>,
    },
}

/// Translate an (optimized) logical plan into a physical plan, snapshotting
/// table data from `catalog`. Each parallel-capable operator gets a
/// [`ParallelPolicy`] chosen from its input's row-count estimate — the
/// physical-operator-selection rule of the cross-optimizer, applied to the
/// whole relational algebra rather than only PREDICT.
pub fn create_physical_plan(
    logical: &LogicalPlan,
    catalog: &Catalog,
    provider: &dyn InferenceProvider,
    options: &ExecOptions,
) -> Result<PhysicalPlan> {
    let options = &options.clone().validated();
    Ok(match logical {
        LogicalPlan::Scan {
            table,
            version,
            projection,
            schema,
        } => {
            if let Some(ps) =
                plan_part_scan(catalog, table, version, projection, schema, None, provider, options)?
            {
                return Ok(ps);
            }
            let t = catalog.table(table)?;
            let tv = match version {
                Some(v) => t.at_version(*v)?,
                None => t.current(),
            };
            let src = &tv.data;
            let columns: Vec<ColumnVector> = match projection {
                Some(indices) => indices.iter().map(|&i| src.column(i).clone()).collect(),
                None => src.columns().to_vec(),
            };
            PhysicalPlan::Scan {
                data: RecordBatch::new(schema.clone(), columns)?,
            }
        }
        LogicalPlan::Values { schema, rows } => {
            let empty = RecordBatch::empty(Arc::new(Schema::default()));
            let compiled: Vec<Vec<PhysExpr>> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|e| PhysExpr::compile(e, empty.schema(), provider))
                        .collect::<Result<_>>()
                })
                .collect::<Result<_>>()?;
            PhysicalPlan::Values {
                schema: schema.clone(),
                rows: compiled,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            // Fuse a filter directly over a part-backed scan: the predicate
            // prunes parts via zone maps at plan time and runs per decoded
            // chunk at execution time, so non-matching rows never
            // materialize into a whole-table batch.
            if let LogicalPlan::Scan {
                table,
                version,
                projection,
                schema,
            } = input.as_ref()
            {
                if let Some(ps) = plan_part_scan(
                    catalog,
                    table,
                    version,
                    projection,
                    schema,
                    Some(predicate),
                    provider,
                    options,
                )? {
                    return Ok(ps);
                }
            }
            let child = create_physical_plan(input, catalog, provider, options)?;
            let predicate = compile(predicate, input.schema(), provider, options)?;
            let policy = ParallelPolicy::from_options(options, child.estimated_rows());
            PhysicalPlan::Filter {
                input: Box::new(child),
                predicate,
                policy,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let child = create_physical_plan(input, catalog, provider, options)?;
            let compiled: Vec<PhysExpr> = exprs
                .iter()
                .map(|e| compile(e, input.schema(), provider, options))
                .collect::<Result<_>>()?;
            // An explicit `PREDICT ... PARALLEL n` raises the degree even
            // when row-count stats alone would stay serial.
            let predict_par = compiled
                .iter()
                .map(PhysExpr::predict_parallelism)
                .max()
                .unwrap_or(0);
            let policy = ParallelPolicy::from_options(options, child.estimated_rows())
                .with_min_degree(predict_par.max(1));
            PhysicalPlan::Project {
                input: Box::new(child),
                exprs: compiled,
                schema: schema.clone(),
                policy,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            let child = create_physical_plan(input, catalog, provider, options)?;
            let group_c: Vec<PhysExpr> = group
                .iter()
                .map(|e| compile(e, input.schema(), provider, options))
                .collect::<Result<_>>()?;
            let aggs_c: Vec<(AggCall, Option<PhysExpr>)> = aggs
                .iter()
                .map(|a| {
                    let arg = a
                        .arg
                        .as_ref()
                        .map(|e| compile(e, input.schema(), provider, options))
                        .transpose()?;
                    Ok((a.clone(), arg))
                })
                .collect::<Result<_>>()?;
            let policy = ParallelPolicy::from_options(options, child.estimated_rows());
            PhysicalPlan::HashAggregate {
                input: Box::new(child),
                group: group_c,
                aggs: aggs_c,
                schema: schema.clone(),
                policy,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => {
            let l = create_physical_plan(left, catalog, provider, options)?;
            let r = create_physical_plan(right, catalog, provider, options)?;
            let joined_schema = schema.clone();
            let filter_c = filter
                .as_ref()
                .map(|f| compile(f, &joined_schema, provider, options))
                .transpose()?;
            if on.is_empty() {
                PhysicalPlan::NestedLoopJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    join_type: *join_type,
                    filter: filter_c,
                    schema: joined_schema,
                }
            } else {
                let left_keys: Vec<PhysExpr> = on
                    .iter()
                    .map(|(le, _)| compile(le, left.schema(), provider, options))
                    .collect::<Result<_>>()?;
                let right_keys: Vec<PhysExpr> = on
                    .iter()
                    .map(|(_, re)| compile(re, right.schema(), provider, options))
                    .collect::<Result<_>>()?;
                let est = l.estimated_rows().max(r.estimated_rows());
                let policy = ParallelPolicy::from_options(options, est);
                PhysicalPlan::HashJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_keys,
                    right_keys,
                    join_type: *join_type,
                    filter: filter_c,
                    schema: joined_schema,
                    policy,
                }
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let child = create_physical_plan(input, catalog, provider, options)?;
            let keys_c: Vec<(PhysExpr, bool)> = keys
                .iter()
                .map(|(e, asc)| Ok((compile(e, input.schema(), provider, options)?, *asc)))
                .collect::<Result<_>>()?;
            let policy = ParallelPolicy::from_options(options, child.estimated_rows());
            PhysicalPlan::Sort {
                input: Box::new(child),
                keys: keys_c,
                policy,
            }
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => PhysicalPlan::Limit {
            input: Box::new(create_physical_plan(input, catalog, provider, options)?),
            limit: *limit,
            offset: *offset,
        },
        LogicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(create_physical_plan(input, catalog, provider, options)?),
        },
        LogicalPlan::Union { inputs, schema } => PhysicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| create_physical_plan(i, catalog, provider, options))
                .collect::<Result<_>>()?,
            schema: schema.clone(),
        },
    })
}

/// Compile with `Auto` PREDICT strategies resolved to the engine default.
fn compile(
    e: &Expr,
    schema: &Schema,
    provider: &dyn InferenceProvider,
    options: &ExecOptions,
) -> Result<PhysExpr> {
    let resolved = rewrite_expr(e.clone(), &mut |x| {
        Ok(match x {
            Expr::Predict {
                model,
                args,
                strategy: PredictStrategy::Auto,
            } => Expr::Predict {
                model,
                args,
                strategy: options.default_predict,
            },
            other => other,
        })
    })?;
    PhysExpr::compile(&resolved, schema, provider)
}

/// Per-column numeric bounds implied by a predicate, keyed by output-schema
/// column index: `col = 5` → `[5, 5]`, `col > 5` → `[5, ∞)` (inclusive —
/// pruning stays conservative for both strict and non-strict forms).
type ColBounds = HashMap<usize, (Option<f64>, Option<f64>)>;

fn tighten(bounds: &mut ColBounds, idx: usize, lo: Option<f64>, hi: Option<f64>) {
    let e = bounds.entry(idx).or_insert((None, None));
    if let Some(l) = lo {
        e.0 = Some(e.0.map_or(l, |x: f64| x.max(l)));
    }
    if let Some(h) = hi {
        e.1 = Some(e.1.map_or(h, |x: f64| x.min(h)));
    }
}

fn column_index(e: &Expr, schema: &Schema) -> Option<usize> {
    match e {
        Expr::Column { name, .. } => schema.index_of(name),
        _ => None,
    }
}

fn literal_f64(e: &Expr) -> Option<f64> {
    match e {
        Expr::Literal(v) => v.as_f64(),
        _ => None,
    }
}

/// Extract conservative zone-prunable bounds from a predicate: AND-split
/// into conjuncts, then keep `col <op> literal` (either orientation) and
/// `col BETWEEN lo AND hi`. Everything else (OR, NOT, expressions over the
/// column) contributes no bounds — parts it might match are never pruned.
fn zone_constraints(pred: &Expr, schema: &Schema) -> ColBounds {
    let mut bounds = ColBounds::new();
    for conj in pred.split_conjunction() {
        match conj {
            Expr::Binary { left, op, right } => {
                let (idx, lit, op) = match (column_index(left, schema), literal_f64(right)) {
                    (Some(i), Some(v)) => (i, v, *op),
                    _ => match (column_index(right, schema), literal_f64(left)) {
                        // flip so the column is on the left: 5 < x ⇒ x > 5
                        (Some(i), Some(v)) => (i, v, op.flip()),
                        _ => continue,
                    },
                };
                match op {
                    BinOp::Eq => tighten(&mut bounds, idx, Some(lit), Some(lit)),
                    BinOp::Lt | BinOp::LtEq => tighten(&mut bounds, idx, None, Some(lit)),
                    BinOp::Gt | BinOp::GtEq => tighten(&mut bounds, idx, Some(lit), None),
                    _ => {}
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let (Some(idx), lo, hi) =
                    (column_index(expr, schema), literal_f64(low), literal_f64(high))
                {
                    if lo.is_some() || hi.is_some() {
                        tighten(&mut bounds, idx, lo, hi);
                    }
                }
            }
            _ => {}
        }
    }
    bounds
}

/// Build a [`PhysicalPlan::PartScan`] for a scan over a part-backed table
/// version, or `None` when the version is fully resident (the materialized
/// `Scan` stays the fast path there). Zone-map pruning happens here, at
/// plan time, and is recorded in the store's counters.
#[allow(clippy::too_many_arguments)]
fn plan_part_scan(
    catalog: &Catalog,
    table: &str,
    version: &Option<u64>,
    projection: &Option<Vec<usize>>,
    schema: &Arc<Schema>,
    predicate: Option<&Expr>,
    provider: &dyn InferenceProvider,
    options: &ExecOptions,
) -> Result<Option<PhysicalPlan>> {
    let Some(store) = catalog.part_store() else {
        return Ok(None);
    };
    let t = catalog.table(table)?;
    let tv = match version {
        Some(v) => t.at_version(*v)?,
        None => t.current(),
    };
    if tv.parts.is_empty() {
        return Ok(None);
    }
    let src = &tv.data;
    let tail_cols: Vec<ColumnVector> = match projection {
        Some(indices) => indices.iter().map(|&i| src.column(i).clone()).collect(),
        None => src.columns().to_vec(),
    };
    let tail = RecordBatch::new(schema.clone(), tail_cols)?;

    let total = tv.parts.len();
    let bounds = predicate
        .map(|p| zone_constraints(p, schema))
        .unwrap_or_default();
    let parts: Vec<crate::parts::PartMeta> = tv
        .parts
        .iter()
        .filter(|p| {
            bounds.iter().all(|(&k, &(lo, hi))| {
                // output column k is base-table column projection[k]
                let zi = projection.as_ref().map_or(k, |pr| pr[k]);
                p.zones.get(zi).is_none_or(|z| z.overlaps(lo, hi, p.rows))
            })
        })
        .cloned()
        .collect();
    let pruned = total - parts.len();
    store
        .zonemap_parts_pruned
        .fetch_add(pruned as u64, AtomicOrdering::Relaxed);
    store
        .zonemap_parts_scanned
        .fetch_add(parts.len() as u64, AtomicOrdering::Relaxed);

    let predicate = predicate
        .map(|p| compile(p, schema, provider, options))
        .transpose()?;
    let est: usize =
        parts.iter().map(|p| p.rows as usize).sum::<usize>() + tail.num_rows();
    let policy = ParallelPolicy::from_options(options, est);
    Ok(Some(PhysicalPlan::PartScan {
        schema: schema.clone(),
        store: store.clone(),
        parts,
        pruned,
        total,
        tail,
        projection: projection.clone(),
        predicate,
        policy,
    }))
}

impl PhysicalPlan {
    /// Output-cardinality estimate. Exact for scans (the physical plan
    /// snapshots table data), heuristic above them — the same shape as the
    /// cross-optimizer's logical estimator, reused here for per-operator
    /// degree selection.
    pub fn estimated_rows(&self) -> usize {
        match self {
            PhysicalPlan::Scan { data } => data.num_rows(),
            PhysicalPlan::PartScan {
                parts,
                tail,
                predicate,
                ..
            } => {
                let n = parts.iter().map(|p| p.rows as usize).sum::<usize>() + tail.num_rows();
                if predicate.is_some() {
                    n / 3 + 1
                } else {
                    n
                }
            }
            PhysicalPlan::Values { rows, .. } => rows.len(),
            // filters keep an estimated third of their input
            PhysicalPlan::Filter { input, .. } => input.estimated_rows() / 3 + 1,
            PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Distinct { input } => input.estimated_rows(),
            PhysicalPlan::HashAggregate { input, group, .. } => {
                if group.is_empty() {
                    1
                } else {
                    (input.estimated_rows() / 10).max(1)
                }
            }
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                left.estimated_rows().max(right.estimated_rows())
            }
            PhysicalPlan::Limit { input, limit, .. } => {
                let n = input.estimated_rows();
                limit.map_or(n, |l| n.min(l as usize))
            }
            PhysicalPlan::Union { inputs, .. } => {
                inputs.iter().map(PhysicalPlan::estimated_rows).sum()
            }
        }
    }

    /// Execute without keeping the measurements (a throwaway metrics tree
    /// absorbs them). The instrumented entry point is
    /// [`PhysicalPlan::execute_metered`].
    pub fn execute(&self, ctx: &EvalContext) -> Result<RecordBatch> {
        self.execute_metered(ctx, &PlanMetrics::for_plan(self))
    }

    /// Execute while recording per-operator runtime metrics into a
    /// [`PlanMetrics`] tree built with [`PlanMetrics::for_plan`] (the tree
    /// must mirror this plan).
    pub fn execute_metered(&self, ctx: &EvalContext, m: &PlanMetrics) -> Result<RecordBatch> {
        // Cooperative cancellation point: every operator checks the token
        // before running, so a cancelled/timed-out query unwinds at the
        // next operator boundary even when its expressions are trivial.
        // Wall time already spent is recorded by the enclosing operators'
        // timers, leaving a partial-but-consistent metrics tree behind.
        ctx.cancel.check()?;
        let started = std::time::Instant::now();
        let out = self.execute_inner(ctx, m)?;
        m.op
            .wall_ns
            .fetch_add(started.elapsed().as_nanos() as u64, AtomicOrdering::Relaxed);
        m.op.batches.fetch_add(1, AtomicOrdering::Relaxed);
        m.op
            .rows_out
            .fetch_add(out.num_rows() as u64, AtomicOrdering::Relaxed);
        // Charge this operator's materialized output against the query's
        // row/memory budget (bytes are approximated column-major at 8
        // bytes per cell, the width of the numeric fast paths).
        ctx.budget.charge(
            out.num_rows() as u64,
            (out.num_rows() * out.num_columns() * 8) as u64,
        )?;
        Ok(out)
    }

    fn execute_inner(&self, ctx: &EvalContext, m: &PlanMetrics) -> Result<RecordBatch> {
        match self {
            PhysicalPlan::Scan { data } => {
                m.op
                    .rows_in
                    .fetch_add(data.num_rows() as u64, AtomicOrdering::Relaxed);
                Ok(data.clone())
            }
            PhysicalPlan::PartScan { schema, .. } => {
                let mut survivors: Vec<RecordBatch> = Vec::new();
                self.for_each_part_chunk(ctx, m, &mut |chunk| {
                    survivors.push(chunk);
                    Ok(())
                })?;
                RecordBatch::concat(schema.clone(), &survivors)
            }
            PhysicalPlan::Values { schema, rows } => {
                let empty = RecordBatch::empty(Arc::new(Schema::default()));
                let mut out_rows: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
                for row in rows {
                    let vals: Vec<Value> = row
                        .iter()
                        .map(|e| e.eval_row(&empty, 0, ctx))
                        .collect::<Result<_>>()?;
                    out_rows.push(vals);
                }
                RecordBatch::from_rows(schema.clone(), &out_rows)
            }
            PhysicalPlan::Filter {
                input,
                predicate,
                policy,
            } => {
                let batch = input.execute_metered(ctx, &m.children[0])?;
                m.op
                    .rows_in
                    .fetch_add(batch.num_rows() as u64, AtomicOrdering::Relaxed);
                let mask: Vec<bool> = if policy.fan_out(batch.num_rows()) {
                    m.op.record_fan_out(
                        batch.num_rows().div_ceil(policy.morsel_rows.max(1)),
                        policy.degree,
                    );
                    parallel::map_morsels(&batch, policy, |m| predicate.eval_mask(m, ctx))?
                        .concat()
                } else {
                    predicate.eval_mask(&batch, ctx)?
                };
                batch.filter(&mask)
            }
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
                policy,
            } => {
                let batch = input.execute_metered(ctx, &m.children[0])?;
                m.op
                    .rows_in
                    .fetch_add(batch.num_rows() as u64, AtomicOrdering::Relaxed);
                if policy.fan_out(batch.num_rows()) {
                    m.op.record_fan_out(
                        batch.num_rows().div_ceil(policy.morsel_rows.max(1)),
                        policy.degree,
                    );
                    let parts = parallel::map_morsels(&batch, policy, |m| {
                        let cols: Vec<ColumnVector> = exprs
                            .iter()
                            .map(|e| e.eval(m, ctx))
                            .collect::<Result<_>>()?;
                        RecordBatch::new(schema.clone(), cols)
                    })?;
                    return RecordBatch::concat(schema.clone(), &parts);
                }
                let columns: Vec<ColumnVector> = exprs
                    .iter()
                    .map(|e| e.eval(&batch, ctx))
                    .collect::<Result<_>>()?;
                RecordBatch::new(schema.clone(), columns)
            }
            PhysicalPlan::HashAggregate {
                input,
                group,
                aggs,
                schema,
                policy,
            } => {
                // Aggregates over a part-backed scan stream chunk-by-chunk
                // into the accumulators (partials merged in chunk order, so
                // results don't depend on part layout) — the concatenated
                // input batch never materializes.
                if matches!(input.as_ref(), PhysicalPlan::PartScan { .. })
                    && aggs
                        .iter()
                        .all(|(call, _)| Accumulator::mergeable(call.func, call.distinct))
                {
                    return execute_aggregate_streaming(input, group, aggs, schema, ctx, m);
                }
                let batch = input.execute_metered(ctx, &m.children[0])?;
                m.op
                    .rows_in
                    .fetch_add(batch.num_rows() as u64, AtomicOrdering::Relaxed);
                execute_aggregate(&batch, group, aggs, schema, policy, ctx, &m.op)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                join_type,
                filter,
                schema,
                policy,
            } => {
                let lb = left.execute_metered(ctx, &m.children[0])?;
                let rb = right.execute_metered(ctx, &m.children[1])?;
                m.op.rows_in.fetch_add(
                    (lb.num_rows() + rb.num_rows()) as u64,
                    AtomicOrdering::Relaxed,
                );
                execute_hash_join(
                    &lb, &rb, left_keys, right_keys, *join_type, filter, schema, policy, ctx,
                    &m.op,
                )
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                filter,
                schema,
            } => {
                let lb = left.execute_metered(ctx, &m.children[0])?;
                let rb = right.execute_metered(ctx, &m.children[1])?;
                m.op.rows_in.fetch_add(
                    (lb.num_rows() + rb.num_rows()) as u64,
                    AtomicOrdering::Relaxed,
                );
                let mut pairs: Vec<(usize, usize)> =
                    Vec::with_capacity(lb.num_rows() * rb.num_rows());
                for li in 0..lb.num_rows() {
                    ctx.cancel.check_every(li)?;
                    for ri in 0..rb.num_rows() {
                        pairs.push((li, ri));
                    }
                }
                finish_join(&lb, &rb, pairs, *join_type, filter, schema, ctx)
            }
            PhysicalPlan::Sort {
                input,
                keys,
                policy,
            } => {
                let batch = input.execute_metered(ctx, &m.children[0])?;
                m.op
                    .rows_in
                    .fetch_add(batch.num_rows() as u64, AtomicOrdering::Relaxed);
                execute_sort(&batch, keys, policy, ctx, &m.op)
            }
            PhysicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                let batch = input.execute_metered(ctx, &m.children[0])?;
                m.op
                    .rows_in
                    .fetch_add(batch.num_rows() as u64, AtomicOrdering::Relaxed);
                let start = (*offset as usize).min(batch.num_rows());
                let len = limit
                    .map(|l| l as usize)
                    .unwrap_or(batch.num_rows() - start);
                Ok(batch.slice(start, len))
            }
            PhysicalPlan::Union { inputs, schema } => {
                let batches: Vec<RecordBatch> = inputs
                    .iter()
                    .zip(&m.children)
                    .map(|(i, cm)| i.execute_metered(ctx, cm))
                    .collect::<Result<_>>()?;
                m.op.rows_in.fetch_add(
                    batches.iter().map(|b| b.num_rows() as u64).sum::<u64>(),
                    AtomicOrdering::Relaxed,
                );
                RecordBatch::concat(schema.clone(), &batches)
            }
            PhysicalPlan::Distinct { input } => {
                let batch = input.execute_metered(ctx, &m.children[0])?;
                m.op
                    .rows_in
                    .fetch_add(batch.num_rows() as u64, AtomicOrdering::Relaxed);
                let mut seen: std::collections::HashSet<GroupKey> =
                    std::collections::HashSet::new();
                let mut keep = Vec::new();
                for i in 0..batch.num_rows() {
                    ctx.cancel.check_every(i)?;
                    if seen.insert(GroupKey(batch.row(i))) {
                        keep.push(i);
                    }
                }
                batch.take(&keep)
            }
        }
    }

    /// Stream a part-backed scan: decode each part (projected), apply the
    /// fused filter, and hand the surviving chunk to `f`. Only valid on
    /// [`PhysicalPlan::PartScan`]. At most one decoded part is alive at a
    /// time — peak decode bytes go to the store's high-water counter.
    /// Bumps the scan's `rows_in` and charges the query budget per decoded
    /// chunk; output-side metrics are the caller's (either
    /// `execute_metered` on the materialized result, or the streaming
    /// aggregate recording per-chunk).
    fn for_each_part_chunk(
        &self,
        ctx: &EvalContext,
        m: &PlanMetrics,
        f: &mut dyn FnMut(RecordBatch) -> Result<()>,
    ) -> Result<()> {
        let PhysicalPlan::PartScan {
            schema,
            store,
            parts,
            tail,
            projection,
            predicate,
            policy,
            ..
        } = self
        else {
            return Err(crate::error::SqlError::Execution(
                "for_each_part_chunk on a non-PartScan operator".into(),
            ));
        };
        let mut peak = 0u64;
        let proj = projection.as_deref();
        for (i, part) in parts.iter().enumerate() {
            ctx.cancel.check()?;
            let raw = store.read_part_projected(part.id, proj)?;
            // decoded under the part's stored schema; present as ours
            let chunk = RecordBatch::new(schema.clone(), raw.columns().to_vec())?;
            peak = peak.max((chunk.num_rows() * chunk.num_columns() * 8) as u64);
            self.emit_chunk(chunk, predicate, policy, ctx, m, f)?;
            ctx.cancel.check_every(i)?;
        }
        ctx.cancel.check()?;
        self.emit_chunk(tail.clone(), predicate, policy, ctx, m, f)?;
        store.record_scan_peak(peak);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_chunk(
        &self,
        chunk: RecordBatch,
        predicate: &Option<PhysExpr>,
        policy: &ParallelPolicy,
        ctx: &EvalContext,
        m: &PlanMetrics,
        f: &mut dyn FnMut(RecordBatch) -> Result<()>,
    ) -> Result<()> {
        m.op
            .rows_in
            .fetch_add(chunk.num_rows() as u64, AtomicOrdering::Relaxed);
        ctx.budget.charge(
            chunk.num_rows() as u64,
            (chunk.num_rows() * chunk.num_columns() * 8) as u64,
        )?;
        let filtered = match predicate {
            Some(p) => {
                let mask = if policy.fan_out(chunk.num_rows()) {
                    m.op.record_fan_out(
                        chunk.num_rows().div_ceil(policy.morsel_rows.max(1)),
                        policy.degree,
                    );
                    parallel::map_morsels(&chunk, policy, |mo| p.eval_mask(mo, ctx))?.concat()
                } else {
                    p.eval_mask(&chunk, ctx)?
                };
                chunk.filter(&mask)?
            }
            None => chunk,
        };
        f(filtered)
    }

    /// Child operators, in the order `execute` runs them (and in which
    /// [`PlanMetrics::for_plan`] mirrors them).
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Scan { .. }
            | PhysicalPlan::PartScan { .. }
            | PhysicalPlan::Values { .. } => Vec::new(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => vec![left, right],
            PhysicalPlan::Union { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Operator name and shape detail for plan rendering.
    pub fn op_label(&self) -> (String, String) {
        match self {
            PhysicalPlan::Scan { data } => (
                "Scan".to_string(),
                format!("rows={}", data.num_rows()),
            ),
            PhysicalPlan::PartScan {
                parts,
                pruned,
                total,
                tail,
                predicate,
                ..
            } => {
                let disk_rows: u64 = parts.iter().map(|p| p.rows).sum();
                let mut detail = format!(
                    "parts pruned {pruned}/{total}, rows(disk)={disk_rows}, rows(tail)={}",
                    tail.num_rows()
                );
                if predicate.is_some() {
                    detail.push_str(", fused filter");
                }
                ("PartScan".to_string(), detail)
            }
            PhysicalPlan::Values { rows, .. } => {
                ("Values".to_string(), format!("rows={}", rows.len()))
            }
            PhysicalPlan::Filter { policy, .. } => {
                ("Filter".to_string(), policy_detail(policy))
            }
            PhysicalPlan::Project { exprs, policy, .. } => {
                let mut detail = format!("exprs={}", exprs.len());
                if exprs.iter().any(PhysExpr::contains_predict) {
                    detail.push_str(", predict");
                    let mut labels = Vec::new();
                    for e in exprs {
                        e.predict_labels(&mut labels);
                    }
                    if !labels.is_empty() {
                        detail.push_str(&format!("({})", labels.join("; ")));
                    }
                }
                if let Some(p) = policy_detail_opt(policy) {
                    detail.push_str(&format!(", {p}"));
                }
                ("Project".to_string(), detail)
            }
            PhysicalPlan::HashAggregate {
                group,
                aggs,
                policy,
                ..
            } => {
                let mut detail = format!("groups={}, aggs={}", group.len(), aggs.len());
                if let Some(p) = policy_detail_opt(policy) {
                    detail.push_str(&format!(", {p}"));
                }
                ("HashAggregate".to_string(), detail)
            }
            PhysicalPlan::HashJoin {
                join_type, policy, ..
            } => {
                let mut detail = format!("{join_type:?}");
                if let Some(p) = policy_detail_opt(policy) {
                    detail.push_str(&format!(", {p}"));
                }
                ("HashJoin".to_string(), detail)
            }
            PhysicalPlan::NestedLoopJoin { join_type, .. } => {
                ("NestedLoopJoin".to_string(), format!("{join_type:?}"))
            }
            PhysicalPlan::Sort { keys, policy, .. } => {
                let mut detail = format!("keys={}", keys.len());
                if let Some(p) = policy_detail_opt(policy) {
                    detail.push_str(&format!(", {p}"));
                }
                ("Sort".to_string(), detail)
            }
            PhysicalPlan::Limit { limit, offset, .. } => (
                "Limit".to_string(),
                match limit {
                    Some(l) => format!("limit={l}, offset={offset}"),
                    None => format!("offset={offset}"),
                },
            ),
            PhysicalPlan::Distinct { .. } => ("Distinct".to_string(), String::new()),
            PhysicalPlan::Union { inputs, .. } => {
                ("Union".to_string(), format!("inputs={}", inputs.len()))
            }
        }
    }

    /// Static plan-tree rendering (the `EXPLAIN` body): operator names and
    /// shape details, no runtime numbers.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let (name, detail) = self.op_label();
        let indent = "  ".repeat(depth);
        if detail.is_empty() {
            out.push_str(&format!("{indent}{name}\n"));
        } else {
            out.push_str(&format!("{indent}{name} [{detail}]\n"));
        }
        for c in self.children() {
            c.explain_into(depth + 1, out);
        }
    }

    /// Output schema of this physical operator.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            PhysicalPlan::Scan { data } => data.schema().clone(),
            PhysicalPlan::PartScan { schema, .. } => schema.clone(),
            PhysicalPlan::Values { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::HashAggregate { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. }
            | PhysicalPlan::Union { schema, .. }
            | PhysicalPlan::NestedLoopJoin { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => input.schema(),
        }
    }
}

/// `degree=N` when the operator may fan out, empty when planned serial.
fn policy_detail_opt(policy: &ParallelPolicy) -> Option<String> {
    (policy.degree > 1).then(|| format!("degree={}", policy.degree))
}

fn policy_detail(policy: &ParallelPolicy) -> String {
    policy_detail_opt(policy).unwrap_or_default()
}

// ------------------------------------------------------------- aggregate

/// Per-morsel partial aggregation state: groups in first-appearance order.
struct Partial {
    order: Vec<GroupKey>,
    groups: HashMap<GroupKey, Vec<Accumulator>>,
}

fn fresh_accs(aggs: &[(AggCall, Option<PhysExpr>)]) -> Vec<Accumulator> {
    aggs.iter()
        .map(|(call, _)| Accumulator::new(call.func, call.distinct))
        .collect()
}

/// Phase 1 of grouped aggregation over one batch (a morsel or the whole
/// input): evaluate group/arg expressions vectorized, then accumulate.
fn accumulate_groups(
    batch: &RecordBatch,
    group: &[PhysExpr],
    aggs: &[(AggCall, Option<PhysExpr>)],
    ctx: &EvalContext,
) -> Result<Partial> {
    let group_cols: Vec<ColumnVector> = group
        .iter()
        .map(|e| e.eval(batch, ctx))
        .collect::<Result<_>>()?;
    let arg_cols: Vec<Option<ColumnVector>> = aggs
        .iter()
        .map(|(_, arg)| arg.as_ref().map(|e| e.eval(batch, ctx)).transpose())
        .collect::<Result<_>>()?;
    let mut groups: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<GroupKey> = Vec::new();
    for row in 0..batch.num_rows() {
        ctx.cancel.check_every(row)?;
        let key = GroupKey(group_cols.iter().map(|c| c.get(row)).collect());
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            fresh_accs(aggs)
        });
        for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
            match arg {
                Some(col) => acc.update(Some(&col.get(row))),
                None => acc.update(None),
            }
        }
    }
    Ok(Partial { order, groups })
}

/// Phase 1 of a global (no GROUP BY) aggregate over one batch.
fn accumulate_global(
    batch: &RecordBatch,
    aggs: &[(AggCall, Option<PhysExpr>)],
    ctx: &EvalContext,
) -> Result<Vec<Accumulator>> {
    let arg_cols: Vec<Option<ColumnVector>> = aggs
        .iter()
        .map(|(_, arg)| arg.as_ref().map(|e| e.eval(batch, ctx)).transpose())
        .collect::<Result<_>>()?;
    let mut accs = fresh_accs(aggs);
    for row in 0..batch.num_rows() {
        ctx.cancel.check_every(row)?;
        for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
            match arg {
                Some(col) => acc.update(Some(&col.get(row))),
                None => acc.update(None),
            }
        }
    }
    Ok(accs)
}

#[allow(clippy::too_many_arguments)]
fn execute_aggregate(
    batch: &RecordBatch,
    group: &[PhysExpr],
    aggs: &[(AggCall, Option<PhysExpr>)],
    schema: &Arc<Schema>,
    policy: &ParallelPolicy,
    ctx: &EvalContext,
    op: &OpMetrics,
) -> Result<RecordBatch> {
    let mergeable = aggs
        .iter()
        .all(|(call, _)| Accumulator::mergeable(call.func, call.distinct));
    let parallel = mergeable && policy.fan_out(batch.num_rows());
    if parallel {
        op.record_fan_out(
            batch.num_rows().div_ceil(policy.morsel_rows.max(1)),
            policy.degree,
        );
    }

    // Global aggregate (no GROUP BY) needs no hash table.
    if group.is_empty() {
        let accs = if parallel {
            let partials =
                parallel::map_morsels(batch, policy, |m| accumulate_global(m, aggs, ctx))?;
            let mut merged = fresh_accs(aggs);
            for part in &partials {
                for (acc, p) in merged.iter_mut().zip(part) {
                    acc.merge(p);
                }
            }
            merged
        } else {
            accumulate_global(batch, aggs, ctx)?
        };
        let row: Vec<Value> = accs.iter().map(Accumulator::finish).collect();
        return RecordBatch::from_rows(schema.clone(), &[row]);
    }

    let partial = if parallel {
        // Two-phase: thread-local partials per morsel, merged at the
        // barrier in morsel order so group order (first appearance) and
        // partial-sum association match any other thread count.
        let partials =
            parallel::map_morsels(batch, policy, |m| accumulate_groups(m, group, aggs, ctx))?;
        let mut groups: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();
        let mut order: Vec<GroupKey> = Vec::new();
        for part in partials {
            for key in part.order {
                let accs = &part.groups[&key];
                match groups.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        for (dst, src) in e.get_mut().iter_mut().zip(accs) {
                            dst.merge(src);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        order.push(key);
                        e.insert(accs.clone());
                    }
                }
            }
        }
        Partial { order, groups }
    } else {
        accumulate_groups(batch, group, aggs, ctx)?
    };

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(partial.order.len());
    for key in partial.order {
        let accs = &partial.groups[&key];
        let mut row = key.0.clone();
        row.extend(accs.iter().map(Accumulator::finish));
        rows.push(row);
    }
    RecordBatch::from_rows(schema.clone(), &rows)
}

/// Aggregate over a part-backed scan without materializing its input:
/// each decoded (and filter-fused) chunk accumulates into a partial that
/// merges immediately, in chunk order — the same merge discipline the
/// morsel-parallel path uses, so group order is first-appearance across
/// the whole stream. Caller guarantees every aggregate is mergeable.
fn execute_aggregate_streaming(
    scan: &PhysicalPlan,
    group: &[PhysExpr],
    aggs: &[(AggCall, Option<PhysExpr>)],
    schema: &Arc<Schema>,
    ctx: &EvalContext,
    m: &PlanMetrics,
) -> Result<RecordBatch> {
    let cm = &m.children[0];
    let scan_started = std::time::Instant::now();

    if group.is_empty() {
        let mut merged = fresh_accs(aggs);
        scan.for_each_part_chunk(ctx, cm, &mut |chunk| {
            cm.op
                .rows_out
                .fetch_add(chunk.num_rows() as u64, AtomicOrdering::Relaxed);
            cm.op.batches.fetch_add(1, AtomicOrdering::Relaxed);
            m.op
                .rows_in
                .fetch_add(chunk.num_rows() as u64, AtomicOrdering::Relaxed);
            let part = accumulate_global(&chunk, aggs, ctx)?;
            for (acc, p) in merged.iter_mut().zip(&part) {
                acc.merge(p);
            }
            Ok(())
        })?;
        cm.op
            .wall_ns
            .fetch_add(scan_started.elapsed().as_nanos() as u64, AtomicOrdering::Relaxed);
        let row: Vec<Value> = merged.iter().map(Accumulator::finish).collect();
        return RecordBatch::from_rows(schema.clone(), &[row]);
    }

    let mut groups: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<GroupKey> = Vec::new();
    scan.for_each_part_chunk(ctx, cm, &mut |chunk| {
        cm.op
            .rows_out
            .fetch_add(chunk.num_rows() as u64, AtomicOrdering::Relaxed);
        cm.op.batches.fetch_add(1, AtomicOrdering::Relaxed);
        m.op
            .rows_in
            .fetch_add(chunk.num_rows() as u64, AtomicOrdering::Relaxed);
        let part = accumulate_groups(&chunk, group, aggs, ctx)?;
        for key in part.order {
            let accs = &part.groups[&key];
            match groups.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (dst, src) in e.get_mut().iter_mut().zip(accs) {
                        dst.merge(src);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(key);
                    e.insert(accs.clone());
                }
            }
        }
        Ok(())
    })?;
    cm.op
        .wall_ns
        .fetch_add(scan_started.elapsed().as_nanos() as u64, AtomicOrdering::Relaxed);

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(order.len());
    for key in order {
        let accs = &groups[&key];
        let mut row = key.0.clone();
        row.extend(accs.iter().map(Accumulator::finish));
        rows.push(row);
    }
    RecordBatch::from_rows(schema.clone(), &rows)
}

// ------------------------------------------------------------- hash join

fn group_key_hash(key: &GroupKey) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Join key of one row; `None` when any key part is NULL (never matches).
fn join_key(cols: &[ColumnVector], row: usize) -> Option<GroupKey> {
    let vals: Vec<Value> = cols.iter().map(|c| c.get(row)).collect();
    if vals.iter().any(Value::is_null) {
        None
    } else {
        Some(GroupKey(vals))
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_hash_join(
    lb: &RecordBatch,
    rb: &RecordBatch,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    join_type: JoinType,
    filter: &Option<PhysExpr>,
    schema: &Arc<Schema>,
    policy: &ParallelPolicy,
    ctx: &EvalContext,
    op: &OpMetrics,
) -> Result<RecordBatch> {
    let lk: Vec<ColumnVector> = left_keys
        .iter()
        .map(|e| e.eval(lb, ctx))
        .collect::<Result<_>>()?;
    let rk: Vec<ColumnVector> = right_keys
        .iter()
        .map(|e| e.eval(rb, ctx))
        .collect::<Result<_>>()?;

    let pairs = if policy.fan_out(lb.num_rows().max(rb.num_rows())) {
        // Partitioned build: key+hash extraction per morsel range, then one
        // build table per partition, each built by its own worker from the
        // rows that hash into it (in row order, so per-key match order is
        // identical to the serial build).
        let nparts = policy.degree;
        let build_ranges = parallel::morsel_ranges(rb.num_rows(), policy.morsel_rows);
        op.record_fan_out(build_ranges.len(), policy.degree);
        let rkeys: Vec<Option<(GroupKey, u64)>> =
            parallel::parallel_map(&build_ranges, policy.degree, |range| {
                ctx.cancel.check()?;
                Ok(range
                    .clone()
                    .map(|ri| join_key(&rk, ri).map(|k| {
                        let h = group_key_hash(&k);
                        (k, h)
                    }))
                    .collect::<Vec<_>>())
            })?
            .concat();
        let parts: Vec<usize> = (0..nparts).collect();
        let tables: Vec<HashMap<GroupKey, Vec<usize>>> =
            parallel::parallel_map(&parts, policy.degree, |&p| {
                ctx.cancel.check()?;
                let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
                for (ri, entry) in rkeys.iter().enumerate() {
                    if let Some((key, h)) = entry {
                        if (*h as usize) % nparts == p {
                            table.entry(key.clone()).or_default().push(ri);
                        }
                    }
                }
                Ok(table)
            })?;
        // Morsel-parallel probe; morsel order keeps left-row order intact.
        let probe_ranges = parallel::morsel_ranges(lb.num_rows(), policy.morsel_rows);
        op.record_fan_out(probe_ranges.len(), policy.degree);
        parallel::parallel_map(&probe_ranges, policy.degree, |range| {
            ctx.cancel.check()?;
            let mut out: Vec<(usize, usize)> = Vec::new();
            for li in range.clone() {
                if let Some(key) = join_key(&lk, li) {
                    let p = (group_key_hash(&key) as usize) % nparts;
                    if let Some(matches) = tables[p].get(&key) {
                        out.extend(matches.iter().map(|&ri| (li, ri)));
                    }
                }
            }
            Ok(out)
        })?
        .concat()
    } else {
        let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
        for ri in 0..rb.num_rows() {
            ctx.cancel.check_every(ri)?;
            if let Some(key) = join_key(&rk, ri) {
                table.entry(key).or_default().push(ri);
            }
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for li in 0..lb.num_rows() {
            ctx.cancel.check_every(li)?;
            if let Some(key) = join_key(&lk, li) {
                if let Some(matches) = table.get(&key) {
                    pairs.extend(matches.iter().map(|&ri| (li, ri)));
                }
            }
        }
        pairs
    };
    finish_join(lb, rb, pairs, join_type, filter, schema, ctx)
}

/// Materialize candidate pairs, apply the residual filter, and null-extend
/// unmatched left rows for LEFT joins.
fn finish_join(
    lb: &RecordBatch,
    rb: &RecordBatch,
    pairs: Vec<(usize, usize)>,
    join_type: JoinType,
    filter: &Option<PhysExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalContext,
) -> Result<RecordBatch> {
    let li: Vec<usize> = pairs.iter().map(|(l, _)| *l).collect();
    let ri: Vec<usize> = pairs.iter().map(|(_, r)| *r).collect();
    let left_part = lb.take(&li)?;
    let right_part = rb.take(&ri)?;
    let mut cols = left_part.columns().to_vec();
    cols.extend(right_part.columns().iter().cloned());
    let mut joined = RecordBatch::new(schema.clone(), cols)?;

    let mut matched_left: Vec<bool> = vec![false; lb.num_rows()];
    if let Some(f) = filter {
        let mask = f.eval_mask(&joined, ctx)?;
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                matched_left[li[i]] = true;
            }
        }
        joined = joined.filter(&mask)?;
    } else {
        for &l in &li {
            matched_left[l] = true;
        }
    }

    if join_type == JoinType::Left {
        let unmatched: Vec<usize> = (0..lb.num_rows())
            .filter(|&l| !matched_left[l])
            .collect();
        if !unmatched.is_empty() {
            let left_rows = lb.take(&unmatched)?;
            let mut cols = left_rows.columns().to_vec();
            for c in rb.columns() {
                let mut nulls = ColumnVector::with_capacity(c.data_type(), unmatched.len());
                for _ in 0..unmatched.len() {
                    nulls.push_null();
                }
                cols.push(nulls);
            }
            let null_ext = RecordBatch::new(schema.clone(), cols)?;
            joined = RecordBatch::concat(schema.clone(), &[joined, null_ext])?;
        }
    }
    Ok(joined)
}

// ------------------------------------------------------------- sort

fn execute_sort(
    batch: &RecordBatch,
    keys: &[(PhysExpr, bool)],
    policy: &ParallelPolicy,
    ctx: &EvalContext,
    op: &OpMetrics,
) -> Result<RecordBatch> {
    let n = batch.num_rows();
    let fan_out = policy.fan_out(n);
    if fan_out {
        op.record_fan_out(n.div_ceil(policy.morsel_rows.max(1)), policy.degree);
    }

    // Key columns for the whole batch; evaluated morsel-parallel when the
    // sort itself fans out (expression purity makes this equal to a single
    // whole-batch evaluation).
    let key_cols: Vec<(ColumnVector, bool)> = if fan_out {
        let parts = parallel::map_morsels(batch, policy, |m| {
            keys.iter()
                .map(|(e, _)| e.eval(m, ctx))
                .collect::<Result<Vec<_>>>()
        })?;
        let mut cols: Vec<ColumnVector> = parts[0].clone();
        for part in &parts[1..] {
            for (dst, src) in cols.iter_mut().zip(part) {
                dst.append(src)?;
            }
        }
        cols.into_iter()
            .zip(keys.iter().map(|(_, asc)| *asc))
            .collect()
    } else {
        keys.iter()
            .map(|(e, asc)| Ok((e.eval(batch, ctx)?, *asc)))
            .collect::<Result<_>>()?
    };

    let cmp_rows = |a: usize, b: usize| -> std::cmp::Ordering {
        for (col, asc) in &key_cols {
            let ord = col.get(a).total_cmp(&col.get(b));
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };

    if !fan_out {
        let mut indices: Vec<usize> = (0..n).collect();
        indices.sort_by(|&a, &b| cmp_rows(a, b));
        return batch.take(&indices);
    }

    // Parallel sort: stable-sort contiguous runs concurrently, then k-way
    // merge. Ties resolve to the earliest run (and stably within a run),
    // which reproduces the serial stable sort exactly, independent of the
    // run boundaries.
    let run_rows = n.div_ceil(policy.degree).max(policy.morsel_rows);
    let ranges = parallel::morsel_ranges(n, run_rows);
    op.record_fan_out(ranges.len(), policy.degree);
    let runs: Vec<Vec<usize>> = parallel::parallel_map(&ranges, policy.degree, |range| {
        ctx.cancel.check()?;
        let mut idx: Vec<usize> = range.clone().collect();
        idx.sort_by(|&a, &b| cmp_rows(a, b));
        Ok(idx)
    })?;

    let mut heads = vec![0usize; runs.len()];
    let mut indices: Vec<usize> = Vec::with_capacity(n);
    loop {
        ctx.cancel.check_every(indices.len())?;
        let mut best: Option<usize> = None;
        for (r, run) in runs.iter().enumerate() {
            if heads[r] >= run.len() {
                continue;
            }
            best = Some(match best {
                None => r,
                Some(b)
                    if cmp_rows(run[heads[r]], runs[b][heads[b]])
                        == std::cmp::Ordering::Less =>
                {
                    r
                }
                Some(b) => b,
            });
        }
        match best {
            Some(r) => {
                indices.push(runs[r][heads[r]]);
                heads[r] += 1;
            }
            None => break,
        }
    }
    batch.take(&indices)
}
