//! Aggregate accumulators and the grouping key.

use crate::plan::AggFunc;
use crate::types::Value;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// A grouping key: values compared with GROUP BY semantics
/// (NULL == NULL, numerics unified).
#[derive(Debug, Clone)]
pub struct GroupKey(pub Vec<Value>);

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| a.group_eq(b))
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            v.group_hash(state);
        }
    }
}

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum: f64,
    /// Exact integer sum, maintained while every input is Int/Bool so SUM
    /// stays lossless past 2^53 (where the f64 fold starts dropping ulps).
    int_sum: i128,
    /// Welford running state for VARIANCE/STDDEV: mean and the sum of
    /// squared deviations from it (M2). Numerically stable where the
    /// textbook `Σx² / n − mean²` cancels catastrophically.
    mean: f64,
    m2: f64,
    /// Count of values folded into the Welford state (diverges from
    /// `count` only for non-numeric inputs, which variance ignores).
    welford_n: i64,
    /// Whether all summed inputs were integers (SUM preserves Int type).
    int_only: bool,
    min: Option<Value>,
    max: Option<Value>,
    /// DISTINCT filter, keyed with GROUP BY semantics ([`GroupKey`]), so
    /// `DISTINCT` unifies Int(1)/Float(1.0) and 0.0/-0.0 exactly the way
    /// grouping does.
    seen: Option<HashSet<GroupKey>>,
}

impl Accumulator {
    pub fn new(func: AggFunc, distinct: bool) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: 0.0,
            int_sum: 0,
            mean: 0.0,
            m2: 0.0,
            welford_n: 0,
            int_only: true,
            min: None,
            max: None,
            seen: if distinct { Some(HashSet::new()) } else { None },
        }
    }

    /// Feed one input value. `None` means COUNT(*) (count every row).
    pub fn update(&mut self, value: Option<&Value>) {
        let Some(v) = value else {
            self.count += 1; // COUNT(*)
            return;
        };
        if v.is_null() {
            return; // aggregates skip NULLs
        }
        if let Some(seen) = &mut self.seen {
            if !seen.insert(GroupKey(vec![v.clone()])) {
                return;
            }
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                }
                match v {
                    Value::Int(i) => self.int_sum += *i as i128,
                    Value::Bool(b) => self.int_sum += *b as i128,
                    _ => self.int_only = false,
                }
            }
            AggFunc::Variance | AggFunc::StdDev => {
                if let Some(x) = v.as_f64() {
                    self.welford_n += 1;
                    let delta = x - self.mean;
                    self.mean += delta / self.welford_n as f64;
                    self.m2 += delta * (x - self.mean);
                }
            }
            AggFunc::Min => {
                let better = match &self.min {
                    None => true,
                    Some(m) => v.sql_cmp(m) == Some(std::cmp::Ordering::Less),
                };
                if better {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                let better = match &self.max {
                    None => true,
                    Some(m) => v.sql_cmp(m) == Some(std::cmp::Ordering::Greater),
                };
                if better {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    /// Whether this accumulator's state can be merged with a peer that saw
    /// a disjoint slice of the input. DISTINCT aggregates other than
    /// COUNT/MIN/MAX track only hashed keys, not values, so their partial
    /// states cannot be combined.
    pub fn mergeable(func: AggFunc, distinct: bool) -> bool {
        !distinct || matches!(func, AggFunc::Count | AggFunc::Min | AggFunc::Max)
    }

    /// Fold another accumulator (same func/distinct, fed a later slice of
    /// the input) into this one — the barrier step of two-phase parallel
    /// aggregation.
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.func, other.func);
        if let (Some(seen), Some(other_seen)) = (&mut self.seen, &other.seen) {
            // COUNT DISTINCT: count exactly the newly-seen keys.
            let mut fresh = 0i64;
            for key in other_seen {
                if seen.insert(key.clone()) {
                    fresh += 1;
                }
            }
            self.count += fresh;
        } else {
            // Chan et al. parallel variance merge — exact combination of
            // two Welford states over disjoint slices.
            if other.welford_n > 0 {
                if self.welford_n == 0 {
                    self.mean = other.mean;
                    self.m2 = other.m2;
                } else {
                    let n1 = self.welford_n as f64;
                    let n2 = other.welford_n as f64;
                    let n = n1 + n2;
                    let delta = other.mean - self.mean;
                    self.mean += delta * n2 / n;
                    self.m2 += other.m2 + delta * delta * n1 * n2 / n;
                }
                self.welford_n += other.welford_n;
            }
            self.count += other.count;
            self.sum += other.sum;
            self.int_sum += other.int_sum;
            self.int_only &= other.int_only;
        }
        if let Some(m) = &other.min {
            let better = match &self.min {
                None => true,
                Some(cur) => m.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
            };
            if better {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            let better = match &self.max {
                None => true,
                Some(cur) => m.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
            };
            if better {
                self.max = Some(m.clone());
            }
        }
    }

    /// Final aggregate value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.int_only {
                    // Exact while the sum fits an i64; overflow beyond that
                    // degrades to the closest float rather than wrapping.
                    i64::try_from(self.int_sum)
                        .map(Value::Int)
                        .unwrap_or(Value::Float(self.int_sum as f64))
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else if self.int_only {
                    Value::Float(self.int_sum as f64 / self.count as f64)
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Variance | AggFunc::StdDev => {
                if self.count == 0 {
                    return Value::Null;
                }
                let var = if self.welford_n == 0 {
                    0.0
                } else {
                    (self.m2 / self.welford_n as f64).max(0.0)
                };
                Value::Float(if self.func == AggFunc::StdDev {
                    var.sqrt()
                } else {
                    var
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_star_counts_nulls_via_none() {
        let mut a = Accumulator::new(AggFunc::Count, false);
        a.update(None);
        a.update(None);
        assert_eq!(a.finish(), Value::Int(2));
    }

    #[test]
    fn count_expr_skips_nulls() {
        let mut a = Accumulator::new(AggFunc::Count, false);
        a.update(Some(&Value::Int(1)));
        a.update(Some(&Value::Null));
        a.update(Some(&Value::Int(3)));
        assert_eq!(a.finish(), Value::Int(2));
    }

    #[test]
    fn sum_preserves_int_when_possible() {
        let mut a = Accumulator::new(AggFunc::Sum, false);
        a.update(Some(&Value::Int(2)));
        a.update(Some(&Value::Int(3)));
        assert_eq!(a.finish(), Value::Int(5));
        let mut b = Accumulator::new(AggFunc::Sum, false);
        b.update(Some(&Value::Int(2)));
        b.update(Some(&Value::Float(0.5)));
        assert_eq!(b.finish(), Value::Float(2.5));
    }

    #[test]
    fn empty_aggregates() {
        assert!(Accumulator::new(AggFunc::Sum, false).finish().is_null());
        assert!(Accumulator::new(AggFunc::Avg, false).finish().is_null());
        assert!(Accumulator::new(AggFunc::Min, false).finish().is_null());
        assert_eq!(
            Accumulator::new(AggFunc::Count, false).finish(),
            Value::Int(0)
        );
    }

    #[test]
    fn distinct_dedupes() {
        let mut a = Accumulator::new(AggFunc::Count, true);
        for v in [1, 2, 2, 3, 3, 3] {
            a.update(Some(&Value::Int(v)));
        }
        assert_eq!(a.finish(), Value::Int(3));
    }

    #[test]
    fn variance_and_stddev() {
        let mut v = Accumulator::new(AggFunc::Variance, false);
        let mut sd = Accumulator::new(AggFunc::StdDev, false);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            v.update(Some(&Value::Float(x)));
            sd.update(Some(&Value::Float(x)));
        }
        assert_eq!(v.finish(), Value::Float(4.0));
        assert_eq!(sd.finish(), Value::Float(2.0));
        assert!(Accumulator::new(AggFunc::StdDev, false).finish().is_null());
    }

    #[test]
    fn min_max_strings() {
        let mut a = Accumulator::new(AggFunc::Max, false);
        a.update(Some(&Value::Text("apple".into())));
        a.update(Some(&Value::Text("pear".into())));
        assert_eq!(a.finish(), Value::Text("pear".into()));
    }

    #[test]
    fn merge_matches_single_pass() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Variance,
            AggFunc::StdDev,
        ] {
            let values: Vec<Value> = (1..=8).map(Value::Int).collect();
            let mut whole = Accumulator::new(func, false);
            for v in &values {
                whole.update(Some(v));
            }
            let mut left = Accumulator::new(func, false);
            let mut right = Accumulator::new(func, false);
            for v in &values[..3] {
                left.update(Some(v));
            }
            for v in &values[3..] {
                right.update(Some(v));
            }
            left.merge(&right);
            assert_eq!(left.finish(), whole.finish(), "{func:?}");
        }
    }

    #[test]
    fn merge_count_distinct_unions_seen() {
        let mut a = Accumulator::new(AggFunc::Count, true);
        let mut b = Accumulator::new(AggFunc::Count, true);
        for v in [1, 2, 3] {
            a.update(Some(&Value::Int(v)));
        }
        for v in [2, 3, 4, 5] {
            b.update(Some(&Value::Int(v)));
        }
        a.merge(&b);
        assert_eq!(a.finish(), Value::Int(5));
        assert!(Accumulator::mergeable(AggFunc::Count, true));
        assert!(!Accumulator::mergeable(AggFunc::Sum, true));
        assert!(Accumulator::mergeable(AggFunc::Sum, false));
    }

    #[test]
    fn distinct_key_matches_group_by_semantics() {
        // Int(1) and Float(1.0) are one distinct value, like GROUP BY;
        // same for 0.0 and -0.0.
        let mut a = Accumulator::new(AggFunc::Count, true);
        a.update(Some(&Value::Int(1)));
        a.update(Some(&Value::Float(1.0)));
        a.update(Some(&Value::Float(0.0)));
        a.update(Some(&Value::Float(-0.0)));
        assert_eq!(a.finish(), Value::Int(2));

        // merge unifies across partials under the same semantics
        let mut b = Accumulator::new(AggFunc::Count, true);
        b.update(Some(&Value::Float(1.0)));
        b.update(Some(&Value::Int(7)));
        a.merge(&b);
        assert_eq!(a.finish(), Value::Int(3));
    }

    #[test]
    fn int_sum_is_exact_beyond_f64_precision() {
        // 2^53 + 1 + 1 + 1: the f64 fold silently drops every +1.
        let big = 1i64 << 53;
        let mut a = Accumulator::new(AggFunc::Sum, false);
        a.update(Some(&Value::Int(big)));
        for _ in 0..3 {
            a.update(Some(&Value::Int(1)));
        }
        assert_eq!(a.finish(), Value::Int(big + 3));

        // ... and stays exact through a parallel merge
        let mut left = Accumulator::new(AggFunc::Sum, false);
        let mut right = Accumulator::new(AggFunc::Sum, false);
        left.update(Some(&Value::Int(big)));
        right.update(Some(&Value::Int(1)));
        left.merge(&right);
        assert_eq!(left.finish(), Value::Int(big + 1));
    }

    #[test]
    fn variance_is_stable_for_large_means() {
        // mean 1e9, true population variance 2/3: the textbook
        // sumsq/n - mean^2 formula loses every significant digit here.
        let xs = [1e9, 1e9 + 1.0, 1e9 + 2.0];
        let mut v = Accumulator::new(AggFunc::Variance, false);
        for x in xs {
            v.update(Some(&Value::Float(x)));
        }
        let Value::Float(var) = v.finish() else {
            panic!("variance must be a float")
        };
        assert!((var - 2.0 / 3.0).abs() < 1e-9, "got {var}");

        // exact parallel merge: split the same data across two partials
        let mut left = Accumulator::new(AggFunc::StdDev, false);
        let mut right = Accumulator::new(AggFunc::StdDev, false);
        left.update(Some(&Value::Float(xs[0])));
        right.update(Some(&Value::Float(xs[1])));
        right.update(Some(&Value::Float(xs[2])));
        left.merge(&right);
        let Value::Float(sd) = left.finish() else {
            panic!("stddev must be a float")
        };
        assert!((sd - (2.0f64 / 3.0).sqrt()).abs() < 1e-9, "got {sd}");
    }

    #[test]
    fn group_key_semantics() {
        use std::collections::HashMap;
        let mut m: HashMap<GroupKey, i32> = HashMap::new();
        m.insert(GroupKey(vec![Value::Null]), 1);
        *m.entry(GroupKey(vec![Value::Null])).or_insert(0) += 10;
        assert_eq!(m.len(), 1, "NULL groups together");
        m.insert(GroupKey(vec![Value::Int(1)]), 2);
        *m.entry(GroupKey(vec![Value::Float(1.0)])).or_insert(0) += 1;
        assert_eq!(m.len(), 2, "Int(1) and Float(1.0) share a group");
    }
}
