//! Incremental windowed aggregation for continuous queries.
//!
//! [`WindowAggState`] maintains per-window partial aggregate states over an
//! append-only event stream. Events are assigned to every tumbling/sliding
//! window that contains their event time; a watermark (max observed event
//! time minus the stream's lag allowance) drives window close. The
//! per-window accumulation mirrors the batch HashAggregate exactly — same
//! [`Accumulator`] updates in the same row order — which is what makes a
//! closed window's output bit-equal to the equivalent batch `GROUP BY`
//! over the same captured events.

use std::collections::{BTreeMap, HashMap};

use crate::column::ColumnVector;
use crate::exec::agg::{Accumulator, GroupKey};
use crate::plan::AggCall;

/// Partial aggregate state of one open window: groups in first-appearance
/// order (matching the batch aggregate's output order) with one
/// accumulator per aggregate call.
#[derive(Debug, Default)]
struct WindowPartial {
    order: Vec<GroupKey>,
    groups: HashMap<GroupKey, Vec<Accumulator>>,
}

/// One closed (finalized) window, ready for emission.
#[derive(Debug)]
pub struct ClosedWindow {
    /// Inclusive window start (event-time ms).
    pub start: i64,
    /// Groups in first-appearance order; each row is the group key values
    /// followed by the finished aggregate values.
    pub keys: Vec<GroupKey>,
    pub aggs: Vec<Vec<crate::types::Value>>,
}

/// Incremental window-aggregation state for one continuous query.
#[derive(Debug)]
pub struct WindowAggState {
    size_ms: i64,
    slide_ms: i64,
    agg_specs: Vec<AggCall>,
    /// Open windows by start; BTreeMap keeps close-order ascending.
    windows: BTreeMap<i64, WindowPartial>,
    /// Largest event time observed (drives the watermark).
    pub max_event_ms: Option<i64>,
    /// Window starts strictly below this are closed; events whose every
    /// containing window is closed are late and dropped.
    closed_below: Option<i64>,
    /// Events dropped because every window containing them had closed.
    pub late_events: u64,
}

impl WindowAggState {
    /// `agg_specs` carries the aggregate functions (and DISTINCT flags);
    /// argument columns are evaluated by the caller and passed to
    /// [`WindowAggState::observe`] positionally.
    pub fn new(size_ms: i64, slide_ms: i64, agg_specs: Vec<AggCall>) -> Self {
        assert!(size_ms > 0 && slide_ms > 0 && slide_ms <= size_ms);
        WindowAggState {
            size_ms,
            slide_ms,
            agg_specs,
            windows: BTreeMap::new(),
            max_event_ms: None,
            closed_below: None,
            late_events: 0,
        }
    }

    /// The start of the latest window containing `et`.
    fn latest_start(&self, et: i64) -> i64 {
        et.div_euclid(self.slide_ms) * self.slide_ms
    }

    /// Feed one batch of events. `et` holds each row's event time;
    /// `group_cols` the evaluated group-by expressions; `agg_cols` the
    /// evaluated aggregate argument columns (`None` = `COUNT(*)`),
    /// positionally matching the `agg_specs` this state was built with.
    /// Rows must arrive in stream (insertion) order — that order is the
    /// bit-equality contract with the batch aggregate.
    pub fn observe(
        &mut self,
        et: &[i64],
        group_cols: &[ColumnVector],
        agg_cols: &[Option<ColumnVector>],
    ) {
        debug_assert_eq!(agg_cols.len(), self.agg_specs.len());
        for (row, &t) in et.iter().enumerate() {
            self.max_event_ms = Some(self.max_event_ms.map_or(t, |m| m.max(t)));
            let latest = self.latest_start(t);
            if self.closed_below.is_some_and(|floor| latest < floor) {
                // every window containing this event has already closed
                self.late_events += 1;
                continue;
            }
            let key = GroupKey(group_cols.iter().map(|c| c.get(row)).collect());
            // all windows [w, w+size) with w <= t < w+size, newest first
            let mut w = latest;
            while w + self.size_ms > t {
                // partially late: skip windows that already closed
                if self.closed_below.is_none_or(|floor| w >= floor) {
                    let partial = self.windows.entry(w).or_default();
                    let accs = partial.groups.entry(key.clone()).or_insert_with(|| {
                        partial.order.push(key.clone());
                        self.agg_specs
                            .iter()
                            .map(|a| Accumulator::new(a.func, a.distinct))
                            .collect()
                    });
                    for (acc, col) in accs.iter_mut().zip(agg_cols) {
                        match col {
                            Some(c) => acc.update(Some(&c.get(row))),
                            None => acc.update(None),
                        }
                    }
                }
                match w.checked_sub(self.slide_ms) {
                    Some(prev) => w = prev,
                    None => break,
                }
            }
        }
    }

    /// The current watermark given the stream's lag allowance, or `None`
    /// before any event has been seen.
    pub fn watermark(&self, lag_ms: i64) -> Option<i64> {
        self.max_event_ms.map(|m| m.saturating_sub(lag_ms))
    }

    /// Close every window fully below the watermark (`start + size <=
    /// watermark`), ascending by start, finalizing its aggregates. Closed
    /// windows are removed; subsequent events targeting them count as late.
    pub fn close_ready(&mut self, watermark_ms: i64) -> Vec<ClosedWindow> {
        let mut out = Vec::new();
        let ready: Vec<i64> = self
            .windows
            .keys()
            .copied()
            .take_while(|w| w + self.size_ms <= watermark_ms)
            .collect();
        for start in ready {
            let partial = self.windows.remove(&start).expect("window present");
            let mut keys = Vec::with_capacity(partial.order.len());
            let mut aggs = Vec::with_capacity(partial.order.len());
            for key in partial.order {
                let accs = &partial.groups[&key];
                aggs.push(accs.iter().map(|a| a.finish()).collect());
                keys.push(key);
            }
            self.closed_below = Some(start + self.slide_ms);
            out.push(ClosedWindow { start, keys, aggs });
        }
        out
    }

    /// Number of currently open windows (for metrics / tests).
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Forget everything but the configuration — used when the runtime
    /// must rebuild from the stream's full retained history.
    pub fn reset(&mut self) {
        self.windows.clear();
        self.max_event_ms = None;
        self.closed_below = None;
        self.late_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggFunc;
    use crate::types::{DataType, Value};

    fn count_call() -> AggCall {
        AggCall {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }
    }

    fn sum_call() -> AggCall {
        AggCall {
            func: AggFunc::Sum,
            arg: None, // engine evaluates the arg; tests pass the column
            distinct: false,
        }
    }

    fn int_col(vals: &[i64]) -> ColumnVector {
        let v: Vec<Value> = vals.iter().map(|&i| Value::Int(i)).collect();
        ColumnVector::from_values(DataType::Int, &v).unwrap()
    }

    #[test]
    fn tumbling_counts_and_close() {
        let mut s = WindowAggState::new(100, 100, vec![count_call()]);
        let et = [10i64, 20, 110, 150, 210];
        let keys = int_col(&[1, 1, 2, 2, 1]);
        s.observe(&et, std::slice::from_ref(&keys), &[None]);
        // watermark 210: windows [0,100) and [100,200) close
        let closed = s.close_ready(210);
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].start, 0);
        assert_eq!(closed[0].aggs, vec![vec![Value::Int(2)]]);
        assert_eq!(closed[1].start, 100);
        assert_eq!(closed[1].aggs, vec![vec![Value::Int(2)]]);
        assert_eq!(s.open_windows(), 1);
    }

    #[test]
    fn sliding_window_multi_assignment() {
        // size 200, slide 100: event at t=150 lands in [0,200) and [100,300)
        let mut s = WindowAggState::new(200, 100, vec![sum_call()]);
        let et = [150i64];
        let keys = int_col(&[7]);
        let args = int_col(&[5]);
        s.observe(&et, std::slice::from_ref(&keys), &[Some(args)]);
        assert_eq!(s.open_windows(), 2);
        let closed = s.close_ready(200);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].start, 0);
        assert_eq!(closed[0].aggs, vec![vec![Value::Int(5)]]);
    }

    #[test]
    fn late_events_dropped_and_counted() {
        let mut s = WindowAggState::new(100, 100, vec![count_call()]);
        let keys = int_col(&[1]);
        s.observe(&[250], std::slice::from_ref(&keys), &[None]);
        let _ = s.close_ready(200); // closes [0,100) implicitly none open there
        // window [0,100) is now below closed floor? closed_below set only
        // when a window actually closes; close the [200,300) region first.
        s.observe(&[350], std::slice::from_ref(&keys), &[None]);
        let closed = s.close_ready(300);
        assert_eq!(closed.len(), 1); // [200,300)
        s.observe(&[210], std::slice::from_ref(&keys), &[None]);
        assert_eq!(s.late_events, 1);
    }

    #[test]
    fn negative_event_times_use_floor_division() {
        let mut s = WindowAggState::new(100, 100, vec![count_call()]);
        let keys = int_col(&[1]);
        s.observe(&[-50], std::slice::from_ref(&keys), &[None]);
        let closed = s.close_ready(0);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].start, -100);
    }
}
