//! Compiled physical expressions and their vectorized evaluation.

use super::functions::{eval_function, like_match};
use crate::ast::{BinOp, Expr, PredictStrategy, UnOp};
use crate::batch::RecordBatch;
use crate::column::ColumnVector;
use crate::error::{Result, SqlError};
use crate::schema::Schema;
use crate::types::{DataType, Value};
use crate::udf::ProviderRef;

/// A compiled expression: column references are resolved to indices and
/// the output type is known.
#[derive(Debug, Clone)]
pub struct PhysExpr {
    pub node: PhysNode,
    pub data_type: DataType,
}

#[derive(Debug, Clone)]
pub enum PhysNode {
    Column(usize),
    Literal(Value),
    Binary {
        left: Box<PhysExpr>,
        op: BinOp,
        right: Box<PhysExpr>,
    },
    Unary {
        op: UnOp,
        expr: Box<PhysExpr>,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<PhysExpr>>,
        when_then: Vec<(PhysExpr, PhysExpr)>,
        else_expr: Option<Box<PhysExpr>>,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: Box<PhysExpr>,
        negated: bool,
    },
    Function {
        name: String,
        args: Vec<PhysExpr>,
    },
    Cast {
        expr: Box<PhysExpr>,
        to: DataType,
    },
    Predict {
        model: String,
        args: Vec<PhysExpr>,
        strategy: PredictStrategy,
        /// Provider-supplied description (model kind plus cross-optimizer
        /// transformations), captured at compile time for plan rendering.
        label: Option<String>,
    },
    /// `?` placeholder resolved at execute time from `EvalContext::params`.
    /// Kept unbound through planning so a prepared plan can be cached once
    /// and re-executed with different parameter values.
    Parameter(usize),
}

/// Runtime context shared by expression evaluation.
pub struct EvalContext {
    pub provider: ProviderRef,
    pub user: String,
    /// Worker threads available for parallel PREDICT.
    pub threads: usize,
    /// Cooperative cancellation token, checked at operator entries, morsel
    /// boundaries, and row strides. `CancelToken::none()` never fires.
    pub cancel: super::cancel::CancelToken,
    /// Per-query row/memory budget charged by `execute_metered`.
    pub budget: std::sync::Arc<super::cancel::QueryBudget>,
    /// Bound parameter values for `PhysNode::Parameter` slots, in `?` order.
    pub params: std::sync::Arc<Vec<Value>>,
}

impl EvalContext {
    /// Context with no cancellation and no budget (embedded/test callers).
    pub fn new(provider: ProviderRef, user: impl Into<String>, threads: usize) -> EvalContext {
        EvalContext {
            provider,
            user: user.into(),
            threads,
            cancel: super::cancel::CancelToken::none(),
            budget: std::sync::Arc::new(super::cancel::QueryBudget::unlimited()),
            params: std::sync::Arc::new(Vec::new()),
        }
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, cancel: super::cancel::CancelToken) -> EvalContext {
        self.cancel = cancel;
        self
    }

    /// Attach a row/memory budget.
    pub fn with_budget(mut self, budget: std::sync::Arc<super::cancel::QueryBudget>) -> EvalContext {
        self.budget = budget;
        self
    }

    /// Attach bound parameter values (prepared-statement execution).
    pub fn with_params(mut self, params: std::sync::Arc<Vec<Value>>) -> EvalContext {
        self.params = params;
        self
    }

    /// Look up a bound parameter; out-of-range is a typed execution error
    /// (never a panic) so arity mismatches surface cleanly at execute time.
    fn param(&self, i: usize) -> Result<&Value> {
        self.params.get(i).ok_or_else(|| {
            SqlError::Execution(format!(
                "no value bound for parameter ?{i} ({} provided)",
                self.params.len()
            ))
        })
    }
}

impl PhysExpr {
    /// Compile a resolved logical expression against an input schema.
    pub fn compile(
        expr: &Expr,
        schema: &Schema,
        provider: &dyn crate::udf::InferenceProvider,
    ) -> Result<PhysExpr> {
        let data_type =
            crate::plan::expr_type(expr, schema, provider)?.unwrap_or(DataType::Text);
        let node = match expr {
            Expr::Column { name, .. } => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| SqlError::Plan(format!("unresolved column '{name}'")))?;
                PhysNode::Column(idx)
            }
            Expr::Literal(v) => PhysNode::Literal(v.clone()),
            Expr::Binary { left, op, right } => PhysNode::Binary {
                left: Box::new(Self::compile(left, schema, provider)?),
                op: *op,
                right: Box::new(Self::compile(right, schema, provider)?),
            },
            Expr::Unary { op, expr } => PhysNode::Unary {
                op: *op,
                expr: Box::new(Self::compile(expr, schema, provider)?),
            },
            Expr::IsNull { expr, negated } => PhysNode::IsNull {
                expr: Box::new(Self::compile(expr, schema, provider)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => PhysNode::InList {
                expr: Box::new(Self::compile(expr, schema, provider)?),
                list: list
                    .iter()
                    .map(|e| Self::compile(e, schema, provider))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // desugar to (e >= low AND e <= high), possibly negated
                let e = Self::compile(expr, schema, provider)?;
                let lo = Self::compile(low, schema, provider)?;
                let hi = Self::compile(high, schema, provider)?;
                let ge = PhysExpr {
                    node: PhysNode::Binary {
                        left: Box::new(e.clone()),
                        op: BinOp::GtEq,
                        right: Box::new(lo),
                    },
                    data_type: DataType::Bool,
                };
                let le = PhysExpr {
                    node: PhysNode::Binary {
                        left: Box::new(e),
                        op: BinOp::LtEq,
                        right: Box::new(hi),
                    },
                    data_type: DataType::Bool,
                };
                let both = PhysNode::Binary {
                    left: Box::new(ge),
                    op: BinOp::And,
                    right: Box::new(le),
                };
                if *negated {
                    PhysNode::Unary {
                        op: UnOp::Not,
                        expr: Box::new(PhysExpr {
                            node: both,
                            data_type: DataType::Bool,
                        }),
                    }
                } else {
                    both
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => PhysNode::Like {
                expr: Box::new(Self::compile(expr, schema, provider)?),
                pattern: Box::new(Self::compile(pattern, schema, provider)?),
                negated: *negated,
            },
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => PhysNode::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(Self::compile(o, schema, provider)?)),
                    None => None,
                },
                when_then: when_then
                    .iter()
                    .map(|(w, t)| {
                        Ok((
                            Self::compile(w, schema, provider)?,
                            Self::compile(t, schema, provider)?,
                        ))
                    })
                    .collect::<Result<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(Self::compile(e, schema, provider)?)),
                    None => None,
                },
            },
            Expr::Function { name, args, .. } => PhysNode::Function {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|e| Self::compile(e, schema, provider))
                    .collect::<Result<_>>()?,
            },
            Expr::Cast { expr, to } => PhysNode::Cast {
                expr: Box::new(Self::compile(expr, schema, provider)?),
                to: *to,
            },
            Expr::Predict {
                model,
                args,
                strategy,
            } => PhysNode::Predict {
                model: model.clone(),
                args: args
                    .iter()
                    .map(|e| Self::compile(e, schema, provider))
                    .collect::<Result<_>>()?,
                strategy: *strategy,
                label: provider.describe(model),
            },
            Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
                return Err(SqlError::Plan(
                    "subquery should have been flattened before compilation".into(),
                ))
            }
            Expr::Wildcard => {
                return Err(SqlError::Plan("'*' is not a value expression".into()))
            }
            Expr::Parameter(i) => PhysNode::Parameter(*i),
        };
        Ok(PhysExpr { node, data_type })
    }

    /// The highest PREDICT parallelism requested anywhere in this tree
    /// (0 when no parallel PREDICT present).
    pub fn predict_parallelism(&self) -> usize {
        let mut max = 0usize;
        self.visit(&mut |e| {
            if let PhysNode::Predict {
                strategy: PredictStrategy::Parallel(n),
                ..
            } = &e.node
            {
                max = max.max(*n);
            }
        });
        max
    }

    /// Whether any PREDICT call appears in this tree.
    pub fn contains_predict(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e.node, PhysNode::Predict { .. }) {
                found = true;
            }
        });
        found
    }

    /// Provider descriptions of every PREDICT in this tree, in call order.
    pub fn predict_labels(&self, out: &mut Vec<String>) {
        self.visit(&mut |e| {
            if let PhysNode::Predict {
                label: Some(l), ..
            } = &e.node
            {
                out.push(l.clone());
            }
        });
    }

    fn visit(&self, f: &mut impl FnMut(&PhysExpr)) {
        f(self);
        match &self.node {
            PhysNode::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            PhysNode::Unary { expr, .. }
            | PhysNode::IsNull { expr, .. }
            | PhysNode::Cast { expr, .. } => expr.visit(f),
            PhysNode::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            PhysNode::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            PhysNode::Case {
                operand,
                when_then,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.visit(f);
                }
                for (w, t) in when_then {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            PhysNode::Function { args, .. } | PhysNode::Predict { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            PhysNode::Column(_) | PhysNode::Literal(_) | PhysNode::Parameter(_) => {}
        }
    }

    /// Whether evaluating this expression can touch a batch column or a
    /// model. Column-free, PREDICT-free subtrees (parameters, literals,
    /// casts and scalar functions over them — every built-in function is
    /// deterministic) produce the same value on every row, so the
    /// vectorized evaluator computes them once per batch and broadcasts.
    /// Prepared plans keep `CAST(?n AS ...)` unfolded so one cached plan
    /// serves every binding; this is what keeps that from costing a
    /// per-row cast on the serving hot path.
    fn is_column_free(&self) -> bool {
        let mut free = true;
        self.visit(&mut |e| {
            if matches!(e.node, PhysNode::Column(_) | PhysNode::Predict { .. }) {
                free = false;
            }
        });
        free
    }

    /// A column of `n` copies of `v`, typed like this expression.
    fn broadcast(&self, v: Value, n: usize) -> Result<ColumnVector> {
        match v {
            Value::Float(x) => Ok(ColumnVector::from_f64(std::iter::repeat_n(x, n))),
            Value::Int(x) => Ok(ColumnVector::from_i64(std::iter::repeat_n(x, n))),
            v => {
                let ty = v.data_type().unwrap_or(self.data_type);
                let mut col = ColumnVector::with_capacity(ty, n);
                for _ in 0..n {
                    col.push(v.clone())?;
                }
                Ok(col)
            }
        }
    }

    /// Evaluate as a selection mask: one `bool` per row, `true` only when
    /// the expression is SQL-true (NULL filters out). Shared by the serial
    /// and morsel-parallel filter paths.
    pub fn eval_mask(&self, batch: &RecordBatch, ctx: &EvalContext) -> Result<Vec<bool>> {
        let col = self.eval(batch, ctx)?;
        if let Some(bs) = col.as_bool_slice() {
            return Ok(bs.to_vec());
        }
        Ok((0..batch.num_rows())
            .map(|i| col.get(i).as_bool() == Some(true))
            .collect())
    }

    /// Vectorized evaluation over a batch.
    ///
    /// Doubles as the per-morsel cancellation point: every morsel closure
    /// of every parallel operator evaluates at least one expression, so
    /// checking here bounds how long a cancelled query keeps running by
    /// one morsel per worker.
    pub fn eval(&self, batch: &RecordBatch, ctx: &EvalContext) -> Result<ColumnVector> {
        ctx.cancel.check()?;
        // Constant hoisting: a compound expression that reads no column
        // evaluates once and broadcasts instead of once per row (leaf
        // literals/parameters already broadcast below without the
        // tree-walk check).
        if batch.num_rows() > 1
            && !matches!(
                self.node,
                PhysNode::Column(_) | PhysNode::Literal(_) | PhysNode::Parameter(_)
            )
            && self.is_column_free()
        {
            let v = self.eval_row(batch, 0, ctx)?;
            return self.broadcast(v, batch.num_rows());
        }
        match &self.node {
            PhysNode::Column(i) => Ok(batch.column(*i).clone()),
            PhysNode::Literal(Value::Float(x)) => {
                Ok(ColumnVector::from_f64(std::iter::repeat_n(*x, batch.num_rows())))
            }
            PhysNode::Literal(Value::Int(i)) => {
                Ok(ColumnVector::from_i64(std::iter::repeat_n(*i, batch.num_rows())))
            }
            PhysNode::Literal(v) => {
                let ty = v.data_type().unwrap_or(self.data_type);
                let mut col = ColumnVector::with_capacity(ty, batch.num_rows());
                for _ in 0..batch.num_rows() {
                    col.push(v.clone())?;
                }
                Ok(col)
            }
            PhysNode::Parameter(i) => {
                let v = ctx.param(*i)?.clone();
                self.broadcast(v, batch.num_rows())
            }
            // Row strategy models a scalar UDF: the engine invokes the
            // scorer once per row, re-paying slicing/dispatch each time —
            // the cost profile the paper's "Inline SQL 1x" anchor measures.
            PhysNode::Predict {
                strategy: PredictStrategy::Row,
                ..
            } => {
                let n = batch.num_rows();
                let mut out = ColumnVector::with_capacity(self.data_type, n);
                for row in 0..n {
                    ctx.cancel.check_every(row)?;
                    out.push(self.eval_row(batch, row, ctx)?)?;
                }
                Ok(out)
            }
            PhysNode::Predict {
                model,
                args,
                strategy,
                ..
            } => {
                let inputs: Vec<ColumnVector> = args
                    .iter()
                    .map(|a| a.eval(batch, ctx))
                    .collect::<Result<_>>()?;
                ctx.provider
                    .predict_cancellable(model, &inputs, *strategy, &ctx.user, &ctx.cancel)
            }
            // Fast path: numeric comparisons over float columns produce a
            // bool column without per-row boxing (this is the hot path of
            // inlined-model predicates).
            PhysNode::Binary { left, op, right } if op.is_comparison() => {
                let l = left.eval(batch, ctx)?;
                let r = right.eval(batch, ctx)?;
                if let (Some(ls), Some(rs)) = (l.as_f64_slice(), r.as_f64_slice()) {
                    let out = ls.iter().zip(rs).map(|(a, b)| match op {
                        BinOp::Eq => a == b,
                        BinOp::NotEq => a != b,
                        BinOp::Lt => a < b,
                        BinOp::LtEq => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::GtEq => a >= b,
                        _ => unreachable!(),
                    });
                    return Ok(ColumnVector::from_bool(out));
                }
                // Same fast path for int columns (key lookups and windowed
                // range scans — `id >= ?n` — are int-vs-int comparisons).
                if let (Some(ls), Some(rs)) = (l.as_i64_slice(), r.as_i64_slice()) {
                    let out = ls.iter().zip(rs).map(|(a, b)| match op {
                        BinOp::Eq => a == b,
                        BinOp::NotEq => a != b,
                        BinOp::Lt => a < b,
                        BinOp::LtEq => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::GtEq => a >= b,
                        _ => unreachable!(),
                    });
                    return Ok(ColumnVector::from_bool(out));
                }
                self.eval_rowwise_cols(batch, ctx, &[&l, &r], |vals| {
                    eval_binary(&vals[0], *op, &vals[1])
                })
            }
            // Vectorized AND/OR: evaluate both sides as columns (each
            // taking its own fast path — a conjunctive range filter like
            // `id >= ?1 AND id < ?2` stays columnar end-to-end) and
            // combine with the same three-valued `eval_binary` logic the
            // scalar walk uses. Eager right-side evaluation can reach a
            // row the short-circuiting scalar walk would skip; if it
            // errors, re-run row-wise so error semantics stay identical.
            PhysNode::Binary { left, op, right }
                if matches!(op, BinOp::And | BinOp::Or) =>
            {
                let l = left.eval(batch, ctx)?;
                match right.eval(batch, ctx) {
                    Ok(r) => {
                        // NULL-free bool columns (what comparison fast
                        // paths produce): two-valued logic on raw slices.
                        if let (Some(ls), Some(rs)) = (l.as_bool_slice(), r.as_bool_slice()) {
                            let out = ls.iter().zip(rs).map(|(a, b)| match op {
                                BinOp::And => *a && *b,
                                BinOp::Or => *a || *b,
                                _ => unreachable!(),
                            });
                            return Ok(ColumnVector::from_bool(out));
                        }
                        let n = batch.num_rows();
                        let mut out = ColumnVector::with_capacity(DataType::Bool, n);
                        for i in 0..n {
                            out.push(eval_binary(&l.get(i), *op, &r.get(i))?)?;
                        }
                        Ok(out)
                    }
                    Err(_) => {
                        let n = batch.num_rows();
                        let mut out = ColumnVector::with_capacity(self.data_type, n);
                        for row in 0..n {
                            ctx.cancel.check_every(row)?;
                            out.push(self.eval_row(batch, row, ctx)?)?;
                        }
                        Ok(out)
                    }
                }
            }
            // Fast path: SIGMOID over a float column (inlined logistic
            // models evaluate this once per row otherwise).
            PhysNode::Function { name, args } if name == "SIGMOID" && args.len() == 1 => {
                let a = args[0].eval(batch, ctx)?;
                if let Some(xs) = a.as_f64_slice() {
                    return Ok(ColumnVector::from_f64(
                        xs.iter().map(|x| 1.0 / (1.0 + (-x).exp())),
                    ));
                }
                self.eval_rowwise_cols(batch, ctx, &[&a], |vals| {
                    crate::exec::functions::eval_function("SIGMOID", &vals)
                })
            }
            // Fast path: COALESCE(col, literal) over floats — the shape
            // model inlining emits for imputation.
            PhysNode::Function { name, args }
                if name == "COALESCE"
                    && args.len() == 2
                    && matches!(args[1].node, PhysNode::Literal(Value::Float(_)))
                    && self.data_type == DataType::Float =>
            {
                let a = args[0].eval(batch, ctx)?;
                let PhysNode::Literal(Value::Float(fill)) = args[1].node else {
                    unreachable!()
                };
                if a.as_f64_slice().is_some() {
                    return Ok(a); // no NULLs: COALESCE is the identity
                }
                Ok(ColumnVector::from_f64(
                    (0..a.len()).map(|i| a.get_f64(i).unwrap_or(fill)),
                ))
            }
            // Fast path: pure-numeric binary arithmetic over float columns.
            PhysNode::Binary { left, op, right }
                if matches!(
                    op,
                    BinOp::Plus | BinOp::Minus | BinOp::Mul | BinOp::Div
                ) && self.data_type == DataType::Float =>
            {
                let l = left.eval(batch, ctx)?;
                let r = right.eval(batch, ctx)?;
                if let (Some(ls), Some(rs)) = (l.as_f64_slice(), r.as_f64_slice()) {
                    let out = match op {
                        BinOp::Plus => ls.iter().zip(rs).map(|(a, b)| a + b).collect::<Vec<_>>(),
                        BinOp::Minus => ls.iter().zip(rs).map(|(a, b)| a - b).collect(),
                        BinOp::Mul => ls.iter().zip(rs).map(|(a, b)| a * b).collect(),
                        BinOp::Div => {
                            if rs.contains(&0.0) {
                                return Err(SqlError::Execution("division by zero".into()));
                            }
                            ls.iter().zip(rs).map(|(a, b)| a / b).collect()
                        }
                        _ => unreachable!(),
                    };
                    return Ok(ColumnVector::from_f64(out));
                }
                self.eval_rowwise_cols(batch, ctx, &[&l, &r], |vals| {
                    eval_binary(&vals[0], *op, &vals[1])
                })
            }
            _ => {
                let n = batch.num_rows();
                let mut out = ColumnVector::with_capacity(self.data_type, n);
                for row in 0..n {
                    ctx.cancel.check_every(row)?;
                    out.push(self.eval_row(batch, row, ctx)?)?;
                }
                Ok(out)
            }
        }
    }

    /// Helper: row-wise evaluation over pre-evaluated argument columns.
    fn eval_rowwise_cols(
        &self,
        batch: &RecordBatch,
        _ctx: &EvalContext,
        cols: &[&ColumnVector],
        f: impl Fn(Vec<Value>) -> Result<Value>,
    ) -> Result<ColumnVector> {
        let n = batch.num_rows();
        let mut out = ColumnVector::with_capacity(self.data_type, n);
        for row in 0..n {
            let vals: Vec<Value> = cols.iter().map(|c| c.get(row)).collect();
            out.push(f(vals)?)?;
        }
        Ok(out)
    }

    /// Scalar evaluation of one row. PREDICT here degenerates to a one-row
    /// provider call — the "row UDF" code path the paper's Inline-SQL
    /// baseline measures.
    pub fn eval_row(&self, batch: &RecordBatch, row: usize, ctx: &EvalContext) -> Result<Value> {
        Ok(match &self.node {
            PhysNode::Column(i) => batch.column(*i).get(row),
            PhysNode::Literal(v) => v.clone(),
            PhysNode::Parameter(i) => ctx.param(*i)?.clone(),
            PhysNode::Binary { left, op, right } => {
                // short-circuit logic ops
                match op {
                    BinOp::And => {
                        let l = left.eval_row(batch, row, ctx)?;
                        if l.as_bool() == Some(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval_row(batch, row, ctx)?;
                        return eval_binary(&l, BinOp::And, &r);
                    }
                    BinOp::Or => {
                        let l = left.eval_row(batch, row, ctx)?;
                        if l.as_bool() == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval_row(batch, row, ctx)?;
                        return eval_binary(&l, BinOp::Or, &r);
                    }
                    _ => {}
                }
                let l = left.eval_row(batch, row, ctx)?;
                let r = right.eval_row(batch, row, ctx)?;
                return eval_binary(&l, *op, &r);
            }
            PhysNode::Unary { op, expr } => {
                let v = expr.eval_row(batch, row, ctx)?;
                match op {
                    UnOp::Not => match v {
                        Value::Null => Value::Null,
                        other => Value::Bool(!other.as_bool().ok_or_else(|| {
                            SqlError::Execution(format!("NOT requires boolean, got {other}"))
                        })?),
                    },
                    UnOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int(i) => Value::Int(i.checked_neg().ok_or_else(|| {
                            SqlError::Execution(format!(
                                "integer overflow evaluating -({i})"
                            ))
                        })?),
                        Value::Float(f) => Value::Float(-f),
                        other => {
                            return Err(SqlError::Execution(format!(
                                "cannot negate {other}"
                            )))
                        }
                    },
                }
            }
            PhysNode::IsNull { expr, negated } => {
                let v = expr.eval_row(batch, row, ctx)?;
                Value::Bool(v.is_null() != *negated)
            }
            PhysNode::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_row(batch, row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                let mut found = false;
                for item in list {
                    let iv = item.eval_row(batch, row, ctx)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if v == iv {
                        found = true;
                        break;
                    }
                }
                if found {
                    Value::Bool(!*negated)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                }
            }
            PhysNode::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval_row(batch, row, ctx)?;
                let p = pattern.eval_row(batch, row, ctx)?;
                match (v.as_str(), p.as_str()) {
                    (Some(s), Some(pat)) => Value::Bool(like_match(s, pat) != *negated),
                    _ => Value::Null,
                }
            }
            PhysNode::Case {
                operand,
                when_then,
                else_expr,
            } => {
                let op_v = match operand {
                    Some(o) => Some(o.eval_row(batch, row, ctx)?),
                    None => None,
                };
                for (w, t) in when_then {
                    let wv = w.eval_row(batch, row, ctx)?;
                    let hit = match &op_v {
                        Some(ov) => !ov.is_null() && *ov == wv,
                        None => wv.as_bool() == Some(true),
                    };
                    if hit {
                        return t.eval_row(batch, row, ctx);
                    }
                }
                match else_expr {
                    Some(e) => return e.eval_row(batch, row, ctx),
                    None => Value::Null,
                }
            }
            PhysNode::Function { name, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval_row(batch, row, ctx))
                    .collect::<Result<_>>()?;
                eval_function(name, &vals)?
            }
            PhysNode::Cast { expr, to } => expr.eval_row(batch, row, ctx)?.cast(*to)?,
            PhysNode::Predict { model, args, .. } => {
                let one_row = batch.slice(row, 1);
                let inputs: Vec<ColumnVector> = args
                    .iter()
                    .map(|a| a.eval(&one_row, ctx))
                    .collect::<Result<_>>()?;
                let out = ctx.provider.predict_cancellable(
                    model,
                    &inputs,
                    PredictStrategy::Row,
                    &ctx.user,
                    &ctx.cancel,
                )?;
                out.get(0)
            }
        })
    }
}

fn int_overflow(a: i64, op: BinOp, b: i64) -> SqlError {
    SqlError::Execution(format!("integer overflow evaluating {a} {op} {b}"))
}

/// SQL binary-operator semantics on scalars.
pub fn eval_binary(l: &Value, op: BinOp, r: &Value) -> Result<Value> {
    use BinOp::*;
    // three-valued logic for AND/OR
    match op {
        And => {
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            })
        }
        Or => {
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        _ => {}
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.sql_cmp(r).ok_or_else(|| {
            SqlError::Execution(format!("cannot compare {l} with {r}"))
        })?;
        let b = match op {
            Eq => ord == std::cmp::Ordering::Equal,
            NotEq => ord != std::cmp::Ordering::Equal,
            Lt => ord == std::cmp::Ordering::Less,
            LtEq => ord != std::cmp::Ordering::Greater,
            Gt => ord == std::cmp::Ordering::Greater,
            GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    if op == Concat {
        return Ok(Value::Text(format!("{l}{r}")));
    }
    // arithmetic
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            // Checked arithmetic: SQL integers must not silently wrap.
            Plus => Value::Int(a.checked_add(*b).ok_or_else(|| int_overflow(*a, op, *b))?),
            Minus => Value::Int(a.checked_sub(*b).ok_or_else(|| int_overflow(*a, op, *b))?),
            Mul => Value::Int(a.checked_mul(*b).ok_or_else(|| int_overflow(*a, op, *b))?),
            Div => {
                if *b == 0 {
                    return Err(SqlError::Execution("division by zero".into()));
                }
                Value::Float(*a as f64 / *b as f64)
            }
            Mod => {
                if *b == 0 {
                    return Err(SqlError::Execution("division by zero".into()));
                }
                // i64::MIN % -1 overflows in hardware even though the
                // mathematical result is 0.
                Value::Int(a.checked_rem(*b).ok_or_else(|| int_overflow(*a, op, *b))?)
            }
            _ => unreachable!(),
        }),
        // Date +/- integer days
        (Value::Date(d), Value::Int(n)) if matches!(op, Plus | Minus) => Ok(Value::Date(
            if op == Plus { d + *n as i32 } else { d - *n as i32 },
        )),
        (Value::Date(a), Value::Date(b)) if op == Minus => Ok(Value::Int((*a - *b) as i64)),
        _ => {
            let (a, b) = (
                l.as_f64().ok_or_else(|| {
                    SqlError::Execution(format!("cannot apply {op} to {l}"))
                })?,
                r.as_f64().ok_or_else(|| {
                    SqlError::Execution(format!("cannot apply {op} to {r}"))
                })?,
            );
            Ok(match op {
                Plus => Value::Float(a + b),
                Minus => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        return Err(SqlError::Execution("division by zero".into()));
                    }
                    Value::Float(a / b)
                }
                // `x % 0.0` is IEEE NaN in hardware, but SQL semantics
                // match integer modulo: division by zero is an error.
                Mod => {
                    if b == 0.0 {
                        return Err(SqlError::Execution("division by zero".into()));
                    }
                    Value::Float(a % b)
                }
                _ => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::NoInference;
    use std::sync::Arc;

    fn ctx() -> EvalContext {
        EvalContext::new(Arc::new(NoInference), "admin", 1)
    }

    fn test_batch() -> RecordBatch {
        let schema = Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Text),
        ]));
        RecordBatch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Float(0.5), Value::Text("apple".into())],
                vec![Value::Int(2), Value::Float(1.5), Value::Text("banana".into())],
                vec![Value::Null, Value::Float(2.5), Value::Text("cherry".into())],
            ],
        )
        .unwrap()
    }

    fn compile(sql: &str) -> PhysExpr {
        let e = crate::parser::parse_expr(sql).unwrap();
        let batch = test_batch();
        PhysExpr::compile(&e, batch.schema(), &NoInference).unwrap()
    }

    #[test]
    fn arithmetic_and_nulls() {
        let batch = test_batch();
        let e = compile("a + 10");
        let out = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(out.get(0), Value::Int(11));
        assert!(out.get(2).is_null());
    }

    #[test]
    fn integer_overflow_is_a_typed_error() {
        let max = Value::Int(i64::MAX);
        let min = Value::Int(i64::MIN);
        for (l, op, r) in [
            (&max, BinOp::Plus, &Value::Int(1)),
            (&min, BinOp::Minus, &Value::Int(1)),
            (&max, BinOp::Mul, &Value::Int(2)),
            (&min, BinOp::Mod, &Value::Int(-1)),
        ] {
            match eval_binary(l, op, r) {
                Err(SqlError::Execution(msg)) => {
                    assert!(msg.contains("integer overflow"), "got: {msg}")
                }
                other => panic!("expected overflow error for {l} {op} {r}, got {other:?}"),
            }
        }
        // In-range results are unaffected.
        assert_eq!(
            eval_binary(&max, BinOp::Plus, &Value::Int(0)).unwrap(),
            Value::Int(i64::MAX)
        );
        assert_eq!(
            eval_binary(&min, BinOp::Mod, &Value::Int(2)).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn negating_i64_min_is_a_typed_error() {
        let schema = Arc::new(Schema::from_pairs(&[("a", DataType::Int)]));
        let batch =
            RecordBatch::from_rows(schema.clone(), &[vec![Value::Int(i64::MIN)]]).unwrap();
        let e = crate::parser::parse_expr("-a").unwrap();
        let phys = PhysExpr::compile(&e, &schema, &NoInference).unwrap();
        match phys.eval(&batch, &ctx()) {
            Err(SqlError::Execution(msg)) => {
                assert!(msg.contains("integer overflow"), "got: {msg}")
            }
            other => panic!("expected overflow error, got {other:?}"),
        }
    }

    #[test]
    fn float_fast_path() {
        let batch = test_batch();
        let e = compile("b * 2.0");
        let out = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(out.get(1), Value::Float(3.0));
    }

    #[test]
    fn comparisons_and_logic() {
        let batch = test_batch();
        let e = compile("a >= 2 OR s = 'apple'");
        let out = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(out.get(0), Value::Bool(true));
        assert_eq!(out.get(1), Value::Bool(true));
        assert!(out.get(2).is_null(), "NULL OR false is NULL");
    }

    #[test]
    fn between_desugars() {
        let batch = test_batch();
        let e = compile("b BETWEEN 1.0 AND 2.0");
        let out = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(out.get(0), Value::Bool(false));
        assert_eq!(out.get(1), Value::Bool(true));
        assert_eq!(out.get(2), Value::Bool(false));
    }

    #[test]
    fn in_list_with_null_semantics() {
        let batch = test_batch();
        let e = compile("a IN (1, 3)");
        let out = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(out.get(0), Value::Bool(true));
        assert_eq!(out.get(1), Value::Bool(false));
        assert!(out.get(2).is_null());
    }

    #[test]
    fn like_and_case() {
        let batch = test_batch();
        let e = compile("CASE WHEN s LIKE '%an%' THEN 'has-an' ELSE 'no' END");
        let out = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(out.get(0), Value::Text("no".into()));
        assert_eq!(out.get(1), Value::Text("has-an".into()));
    }

    #[test]
    fn cast_and_functions() {
        let batch = test_batch();
        let e = compile("CAST(b AS INT) + LENGTH(s)");
        let out = e.eval(&batch, &ctx()).unwrap();
        assert_eq!(out.get(0), Value::Int(5)); // 0 + 5
    }

    #[test]
    fn division_by_zero_is_error() {
        let batch = test_batch();
        let e = compile("a / 0");
        assert!(e.eval(&batch, &ctx()).is_err());
    }

    #[test]
    fn date_arithmetic() {
        let l = Value::Date(crate::types::parse_date("1996-01-01").unwrap());
        let out = eval_binary(&l, BinOp::Plus, &Value::Int(31)).unwrap();
        assert_eq!(out, Value::Date(crate::types::parse_date("1996-02-01").unwrap()));
        let diff = eval_binary(
            &Value::Date(10),
            BinOp::Minus,
            &Value::Date(3),
        )
        .unwrap();
        assert_eq!(diff, Value::Int(7));
    }
}
