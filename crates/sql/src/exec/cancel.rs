//! Cooperative cancellation, statement deadlines, per-query budgets, and
//! the admission controller.
//!
//! A multi-tenant engine must be able to stop a running query without
//! killing the process: `Session::cancel()` and `SET statement_timeout`
//! both act through a [`CancelToken`] threaded into [`super::EvalContext`]
//! and checked at every operator entry, every morsel, and on a fixed row
//! stride inside long serial loops. Checks are a relaxed atomic load (plus
//! one clock read when a deadline is armed), so the fast path costs
//! nanoseconds per morsel — the `concurrency_overhead` bench bounds it
//! under 1% of a 1M-row aggregate.
//!
//! Cancellation is *cooperative*: a worker finishes its current stride,
//! observes the flag, and unwinds with a typed error through ordinary
//! `Result` propagation — never a panic, so no lock is ever poisoned and
//! partial [`super::OpMetrics`] survive for post-mortem inspection.

use crate::error::{Result, SqlError};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many rows a tight serial loop processes between cancellation
/// checks. Matches the default morsel size so serial and parallel paths
/// observe cancellation with the same granularity.
pub const CANCEL_CHECK_STRIDE: usize = 4096;

/// A cheap, clonable cancellation token: a shared flag (set by
/// [`CancelHandle::cancel`]) plus an optional per-statement deadline.
///
/// `CancelToken::none()` never fires and is the default for embedded /
/// test callers that construct an `EvalContext` directly.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("has_deadline", &self.deadline.is_some())
            .finish()
    }
}

impl CancelToken {
    /// A token that never fires.
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A token observing an externally-owned flag (the session's).
    pub fn from_flag(flag: Arc<AtomicBool>) -> CancelToken {
        CancelToken {
            flag: Some(flag),
            deadline: None,
        }
    }

    /// Arm a deadline `timeout` from now, keeping the flag.
    pub fn with_deadline(mut self, timeout: Duration) -> CancelToken {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Whether the cancel flag is currently set (deadline not consulted).
    pub fn is_cancelled(&self) -> bool {
        self.flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// The cooperative check point. Returns `SqlError::Cancelled` when the
    /// flag is set, `SqlError::Timeout` when the deadline has passed, and
    /// `Ok(())` otherwise. Called from every operator entry and morsel
    /// loop; must stay cheap.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return Err(SqlError::Cancelled(
                    "query cancelled by session".into(),
                ));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SqlError::Timeout(
                    "statement_timeout exceeded".into(),
                ));
            }
        }
        Ok(())
    }

    /// Stride helper for tight per-row loops: checks only every
    /// [`CANCEL_CHECK_STRIDE`] rows so the common case stays branch-cheap.
    #[inline]
    pub fn check_every(&self, row: usize) -> Result<()> {
        if row.is_multiple_of(CANCEL_CHECK_STRIDE) {
            self.check()?;
        }
        Ok(())
    }
}

/// A handle for cancelling a session's running statement from another
/// thread. Clonable; setting it is sticky until the session starts its
/// next statement.
#[derive(Clone)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    pub fn new(flag: Arc<AtomicBool>) -> CancelHandle {
        CancelHandle(flag)
    }

    /// Request cancellation of the statement currently executing (if any).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-query resource budget: cumulative rows and approximate bytes
/// materialized across all operators of one statement. Zero limits mean
/// unlimited. Charged from `execute_metered` after each operator produces
/// its output batch, so a runaway join or cross product aborts with a
/// typed error instead of exhausting memory.
#[derive(Debug, Default)]
pub struct QueryBudget {
    max_rows: u64,
    max_bytes: u64,
    rows: AtomicU64,
    bytes: AtomicU64,
}

impl QueryBudget {
    /// No limits.
    pub fn unlimited() -> QueryBudget {
        QueryBudget::default()
    }

    /// Limits on cumulative materialized rows / approximate bytes
    /// (0 = unlimited for each independently).
    pub fn limited(max_rows: u64, max_bytes: u64) -> QueryBudget {
        QueryBudget {
            max_rows,
            max_bytes,
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Charge one operator's output against the budget.
    pub fn charge(&self, rows: u64, bytes: u64) -> Result<()> {
        if self.max_rows == 0 && self.max_bytes == 0 {
            return Ok(());
        }
        let total_rows = self.rows.fetch_add(rows, Ordering::Relaxed) + rows;
        if self.max_rows > 0 && total_rows > self.max_rows {
            return Err(SqlError::Budget(format!(
                "query materialized {total_rows} rows, budget is {}",
                self.max_rows
            )));
        }
        let total_bytes = self.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if self.max_bytes > 0 && total_bytes > self.max_bytes {
            return Err(SqlError::Budget(format!(
                "query materialized ~{total_bytes} bytes, budget is {}",
                self.max_bytes
            )));
        }
        Ok(())
    }

    /// Rows charged so far (for tests/diagnostics).
    pub fn rows_used(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

/// Per-database admission controller: a counting semaphore over
/// concurrently executing queries. `try_acquire` never blocks — a full
/// database rejects immediately with a typed error so clients can shed
/// load instead of queueing unboundedly.
#[derive(Debug, Default)]
pub struct AdmissionController {
    active: AtomicUsize,
}

impl AdmissionController {
    pub fn new() -> AdmissionController {
        AdmissionController::default()
    }

    /// Queries currently holding a slot.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Try to claim a slot under `limit` (0 = unlimited; the slot is still
    /// counted so `active()` stays meaningful). Returns `None` when full.
    pub fn try_acquire(self: &Arc<Self>, limit: usize) -> Option<AdmissionSlot> {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if limit > 0 && cur >= limit {
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(AdmissionSlot(Arc::clone(self))),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// RAII admission slot: releases on drop, including every error/timeout
/// unwind path — a cancelled query can never leak its slot.
pub struct AdmissionSlot(Arc<AdmissionController>);

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_fires() {
        let t = CancelToken::none();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        for row in 0..10_000 {
            t.check_every(row).unwrap();
        }
    }

    #[test]
    fn flag_produces_cancelled() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::from_flag(flag.clone());
        assert!(t.check().is_ok());
        CancelHandle::new(flag).cancel();
        match t.check() {
            Err(SqlError::Cancelled(_)) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_produces_timeout() {
        let t = CancelToken::none().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        match t.check() {
            Err(SqlError::Timeout(_)) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn cancel_flag_wins_over_deadline() {
        let flag = Arc::new(AtomicBool::new(true));
        let t = CancelToken::from_flag(flag).with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(t.check(), Err(SqlError::Cancelled(_))));
    }

    #[test]
    fn budget_charges_and_rejects() {
        let b = QueryBudget::limited(100, 0);
        assert!(b.charge(60, 480).is_ok());
        match b.charge(60, 480) {
            Err(SqlError::Budget(m)) => assert!(m.contains("rows"), "{m}"),
            other => panic!("expected Budget, got {other:?}"),
        }
        let b = QueryBudget::limited(0, 1000);
        assert!(b.charge(10, 800).is_ok());
        assert!(matches!(b.charge(10, 800), Err(SqlError::Budget(_))));
        // unlimited never rejects
        let b = QueryBudget::unlimited();
        assert!(b.charge(u64::MAX / 2, u64::MAX / 2).is_ok());
    }

    #[test]
    fn admission_slots_release_on_drop() {
        let c = Arc::new(AdmissionController::new());
        let s1 = c.try_acquire(2).expect("slot 1");
        let _s2 = c.try_acquire(2).expect("slot 2");
        assert!(c.try_acquire(2).is_none(), "limit reached");
        assert_eq!(c.active(), 2);
        drop(s1);
        assert_eq!(c.active(), 1);
        assert!(c.try_acquire(2).is_some());
        // limit 0 = unlimited, still counted
        let c = Arc::new(AdmissionController::new());
        let slots: Vec<_> = (0..64).map(|_| c.try_acquire(0).unwrap()).collect();
        assert_eq!(c.active(), 64);
        drop(slots);
        assert_eq!(c.active(), 0);
    }
}
