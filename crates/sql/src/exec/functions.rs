//! Scalar function implementations.

use crate::error::{Result, SqlError};
use crate::types::{DataType, Value};

/// Evaluate a scalar function over already-evaluated argument values.
///
/// Functions follow SQL NULL propagation: any NULL argument yields NULL,
/// except COALESCE/IFNULL/NULLIF/GREATEST/LEAST which handle NULLs
/// explicitly.
pub fn eval_function(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "COALESCE" | "IFNULL" => {
            return Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null));
        }
        "NULLIF" => {
            let [a, b] = two(name, args)?;
            return Ok(if a == b { Value::Null } else { a.clone() });
        }
        "GREATEST" => return extremum(args, std::cmp::Ordering::Greater),
        "LEAST" => return extremum(args, std::cmp::Ordering::Less),
        _ => {}
    }
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    Ok(match name {
        "ABS" => match one(name, args)? {
            Value::Int(i) => Value::Int(i.abs()),
            v => Value::Float(num(name, v)?.abs()),
        },
        "ROUND" => {
            if args.len() == 2 {
                let x = num(name, &args[0])?;
                let d = num(name, &args[1])? as i32;
                let m = 10f64.powi(d);
                Value::Float((x * m).round() / m)
            } else {
                Value::Float(num(name, one(name, args)?)?.round())
            }
        }
        "FLOOR" => Value::Float(num(name, one(name, args)?)?.floor()),
        "CEIL" | "CEILING" => Value::Float(num(name, one(name, args)?)?.ceil()),
        "SQRT" => Value::Float(num(name, one(name, args)?)?.sqrt()),
        "EXP" => Value::Float(num(name, one(name, args)?)?.exp()),
        "LN" => Value::Float(num(name, one(name, args)?)?.ln()),
        "LOG" => Value::Float(num(name, one(name, args)?)?.log10()),
        "POWER" | "POW" => {
            let [a, b] = two(name, args)?;
            Value::Float(num(name, a)?.powf(num(name, b)?))
        }
        "SIGMOID" => {
            let x = num(name, one(name, args)?)?;
            Value::Float(1.0 / (1.0 + (-x).exp()))
        }
        "UPPER" => Value::Text(text(name, one(name, args)?)?.to_uppercase()),
        "LOWER" => Value::Text(text(name, one(name, args)?)?.to_lowercase()),
        "TRIM" => Value::Text(text(name, one(name, args)?)?.trim().to_string()),
        "LENGTH" => Value::Int(text(name, one(name, args)?)?.chars().count() as i64),
        "CONCAT" => {
            let mut s = String::new();
            for a in args {
                s.push_str(&a.to_string());
            }
            Value::Text(s)
        }
        "REPLACE" => {
            let [a, b, c] = three(name, args)?;
            Value::Text(text(name, a)?.replace(text(name, b)?, text(name, c)?))
        }
        "SUBSTR" | "SUBSTRING" => {
            let s = text(name, &args[0])?;
            let start = num(name, &args[1])? as i64;
            let chars: Vec<char> = s.chars().collect();
            let begin = (start.max(1) - 1) as usize;
            let len = if args.len() > 2 {
                num(name, &args[2])? as usize
            } else {
                chars.len().saturating_sub(begin)
            };
            let out: String = chars.iter().skip(begin).take(len).collect();
            Value::Text(out)
        }
        "YEAR" | "MONTH" | "DAY" => {
            let d = date(name, one(name, args)?)?;
            let s = crate::types::format_date(d);
            let mut parts = s.split('-');
            let pick = match name {
                "YEAR" => 0,
                "MONTH" => 1,
                _ => 2,
            };
            let part = parts.nth(pick).unwrap_or("0");
            Value::Int(part.parse::<i64>().unwrap_or(0))
        }
        other => {
            return Err(SqlError::Execution(format!("unknown function '{other}'")));
        }
    })
}

fn extremum(args: &[Value], want: std::cmp::Ordering) -> Result<Value> {
    let mut best: Option<&Value> = None;
    for a in args {
        if a.is_null() {
            continue;
        }
        best = Some(match best {
            None => a,
            Some(b) => {
                if a.sql_cmp(b) == Some(want) {
                    a
                } else {
                    b
                }
            }
        });
    }
    Ok(best.cloned().unwrap_or(Value::Null))
}

fn one<'a>(name: &str, args: &'a [Value]) -> Result<&'a Value> {
    args.first()
        .ok_or_else(|| SqlError::Execution(format!("{name} requires 1 argument")))
}

fn two<'a>(name: &str, args: &'a [Value]) -> Result<[&'a Value; 2]> {
    if args.len() < 2 {
        return Err(SqlError::Execution(format!("{name} requires 2 arguments")));
    }
    Ok([&args[0], &args[1]])
}

fn three<'a>(name: &str, args: &'a [Value]) -> Result<[&'a Value; 3]> {
    if args.len() < 3 {
        return Err(SqlError::Execution(format!("{name} requires 3 arguments")));
    }
    Ok([&args[0], &args[1], &args[2]])
}

fn num(name: &str, v: &Value) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| SqlError::Execution(format!("{name}: expected numeric, got {v}")))
}

fn text<'a>(name: &str, v: &'a Value) -> Result<&'a str> {
    v.as_str()
        .ok_or_else(|| SqlError::Execution(format!("{name}: expected text, got {v}")))
}

fn date(name: &str, v: &Value) -> Result<i32> {
    match v {
        Value::Date(d) => Ok(*d),
        Value::Text(s) => crate::types::parse_date(s)
            .ok_or_else(|| SqlError::Execution(format!("{name}: bad date '{s}'"))),
        other => match other.cast(DataType::Date) {
            Ok(Value::Date(d)) => Ok(d),
            _ => Err(SqlError::Execution(format!(
                "{name}: expected date, got {other}"
            ))),
        },
    }
}

/// SQL LIKE matching with `%` and `_` wildcards.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    like_rec(&t, &p)
}

fn like_rec(t: &[char], p: &[char]) -> bool {
    match p.split_first() {
        None => t.is_empty(),
        Some(('%', rest)) => {
            (0..=t.len()).any(|i| like_rec(&t[i..], rest))
        }
        Some(('_', rest)) => !t.is_empty() && like_rec(&t[1..], rest),
        Some((c, rest)) => t.first() == Some(c) && like_rec(&t[1..], rest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_functions() {
        assert_eq!(
            eval_function("ABS", &[Value::Int(-5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_function("ROUND", &[Value::Float(2.567), Value::Int(1)]).unwrap(),
            Value::Float(2.6)
        );
        assert_eq!(
            eval_function("POWER", &[Value::Int(2), Value::Int(10)]).unwrap(),
            Value::Float(1024.0)
        );
        let Value::Float(s) = eval_function("SIGMOID", &[Value::Float(0.0)]).unwrap() else {
            panic!()
        };
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            eval_function("UPPER", &[Value::Text("abc".into())]).unwrap(),
            Value::Text("ABC".into())
        );
        assert_eq!(
            eval_function("LENGTH", &[Value::Text("héllo".into())]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_function(
                "SUBSTR",
                &[Value::Text("hello".into()), Value::Int(2), Value::Int(3)]
            )
            .unwrap(),
            Value::Text("ell".into())
        );
        assert_eq!(
            eval_function("CONCAT", &[Value::Text("a".into()), Value::Int(1)]).unwrap(),
            Value::Text("a1".into())
        );
    }

    #[test]
    fn null_propagation_and_coalesce() {
        assert!(eval_function("ABS", &[Value::Null]).unwrap().is_null());
        assert_eq!(
            eval_function("COALESCE", &[Value::Null, Value::Int(2)]).unwrap(),
            Value::Int(2)
        );
        assert!(eval_function("NULLIF", &[Value::Int(1), Value::Int(1)])
            .unwrap()
            .is_null());
        assert_eq!(
            eval_function("GREATEST", &[Value::Int(1), Value::Null, Value::Int(3)]).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn date_parts() {
        let d = Value::Date(crate::types::parse_date("1996-03-15").unwrap());
        let arg = std::slice::from_ref(&d);
        assert_eq!(eval_function("YEAR", arg).unwrap(), Value::Int(1996));
        assert_eq!(eval_function("MONTH", arg).unwrap(), Value::Int(3));
        assert_eq!(eval_function("DAY", arg).unwrap(), Value::Int(15));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("a%c", "a%c"));
        assert!(like_match("special offer", "%special%"));
    }
}
