//! Per-operator runtime metrics — the observability layer under
//! `EXPLAIN ANALYZE`, the `flock_metrics` virtual table, and the query
//! log's runtime columns.
//!
//! Collection is lock-free: every physical operator owns an [`OpMetrics`]
//! of relaxed atomics inside a [`PlanMetrics`] tree that mirrors the plan
//! shape, so morsel workers can bump counters concurrently without
//! serializing on a lock. Because execution is batch-materialized, the
//! serial path pays one `Instant` read pair and a handful of atomic adds
//! *per operator per query* — nanoseconds against operators that
//! materialize whole batches (see DESIGN.md for the overhead budget).

use super::PhysicalPlan;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock-free counters for one physical operator.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Rows consumed from children (for leaves: rows materialized).
    pub rows_in: AtomicU64,
    /// Rows produced.
    pub rows_out: AtomicU64,
    /// Output batches produced (executions of this operator).
    pub batches: AtomicU64,
    /// Wall time of the whole subtree rooted here, in nanoseconds. Self
    /// time is derived at snapshot time by subtracting child subtrees.
    pub wall_ns: AtomicU64,
    /// Morsels executed by this operator's parallel sections (0 = the
    /// operator ran serially).
    pub morsels: AtomicU64,
    /// Maximum effective parallel degree observed: `min(policy degree,
    /// morsels available)`, 1 while the operator stays serial.
    pub par_degree: AtomicU64,
}

impl OpMetrics {
    /// Record one parallel section: `morsels` work items fanned out on
    /// (up to) `degree` workers.
    pub fn record_fan_out(&self, morsels: usize, degree: usize) {
        self.morsels.fetch_add(morsels as u64, Ordering::Relaxed);
        let effective = degree.min(morsels.max(1)) as u64;
        self.par_degree.fetch_max(effective, Ordering::Relaxed);
    }
}

/// A metrics tree mirroring a [`PhysicalPlan`]: `children` follow the
/// exact order in which `execute` recurses (join = [left, right], union =
/// input order), so plan node *i* always pairs with metrics node *i*.
#[derive(Debug, Default)]
pub struct PlanMetrics {
    pub op: OpMetrics,
    pub children: Vec<PlanMetrics>,
}

impl PlanMetrics {
    /// Build a zeroed metrics tree shaped like `plan`.
    pub fn for_plan(plan: &PhysicalPlan) -> PlanMetrics {
        let children = match plan {
            PhysicalPlan::Scan { .. }
            | PhysicalPlan::PartScan { .. }
            | PhysicalPlan::Values { .. } => Vec::new(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input } => vec![PlanMetrics::for_plan(input)],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                vec![PlanMetrics::for_plan(left), PlanMetrics::for_plan(right)]
            }
            PhysicalPlan::Union { inputs, .. } => {
                inputs.iter().map(PlanMetrics::for_plan).collect()
            }
        };
        PlanMetrics {
            op: OpMetrics::default(),
            children,
        }
    }

    /// Freeze the counters into a plain snapshot annotated with the plan's
    /// operator labels.
    pub fn snapshot(&self, plan: &PhysicalPlan) -> OpSnapshot {
        let (name, detail) = plan.op_label();
        let children: Vec<OpSnapshot> = self
            .children
            .iter()
            .zip(plan.children())
            .map(|(m, p)| m.snapshot(p))
            .collect();
        let total_ns = self.op.wall_ns.load(Ordering::Relaxed);
        let child_ns: u64 = children.iter().map(|c| c.total_ns).sum();
        OpSnapshot {
            name,
            detail,
            rows_in: self.op.rows_in.load(Ordering::Relaxed),
            rows_out: self.op.rows_out.load(Ordering::Relaxed),
            batches: self.op.batches.load(Ordering::Relaxed),
            total_ns,
            self_ns: total_ns.saturating_sub(child_ns),
            morsels: self.op.morsels.load(Ordering::Relaxed),
            degree: self.op.par_degree.load(Ordering::Relaxed).max(1),
            children,
        }
    }
}

/// Frozen per-operator measurements for one executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSnapshot {
    /// Operator name, e.g. `HashAggregate`.
    pub name: String,
    /// Shape detail, e.g. `groups=1, aggs=2`.
    pub detail: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub batches: u64,
    /// Wall time of the subtree rooted at this operator.
    pub total_ns: u64,
    /// Wall time attributable to this operator alone.
    pub self_ns: u64,
    pub morsels: u64,
    /// Effective parallel degree (1 = ran serially).
    pub degree: u64,
    pub children: Vec<OpSnapshot>,
}

impl OpSnapshot {
    /// Number of operators in this subtree that actually fanned out.
    pub fn parallel_ops(&self) -> u64 {
        u64::from(self.degree > 1)
            + self.children.iter().map(OpSnapshot::parallel_ops).sum::<u64>()
    }

    /// Rows materialized by the leaves (scans/values) of this subtree —
    /// the "rows scanned" number the query log records.
    pub fn rows_scanned(&self) -> u64 {
        if self.children.is_empty() {
            self.rows_out
        } else {
            self.children.iter().map(OpSnapshot::rows_scanned).sum()
        }
    }

    /// Every operator in the subtree, depth-first, with its depth.
    pub fn walk(&self) -> Vec<(usize, &OpSnapshot)> {
        let mut out = Vec::new();
        self.walk_into(0, &mut out);
        out
    }

    fn walk_into<'a>(&'a self, depth: usize, out: &mut Vec<(usize, &'a OpSnapshot)>) {
        out.push((depth, self));
        for c in &self.children {
            c.walk_into(depth + 1, out);
        }
    }

    /// Render the annotated plan tree (the `EXPLAIN ANALYZE` body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (depth, node) in self.walk() {
            let indent = "  ".repeat(depth);
            let detail = if node.detail.is_empty() {
                String::new()
            } else {
                format!(" [{}]", node.detail)
            };
            let parallel = if node.degree > 1 {
                format!(", morsels={}, degree={}", node.morsels, node.degree)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{indent}{}{detail} (rows={}, time={}{parallel})\n",
                node.name,
                node.rows_out,
                fmt_ns(node.self_ns),
            ));
        }
        out
    }
}

/// Human duration: ns below 1µs, µs below 1ms, else ms with 3 decimals.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}\u{b5}s", ns as f64 / 1_000.0)
    } else {
        format!("{:.3}ms", ns as f64 / 1_000_000.0)
    }
}

/// Engine-wide cumulative counters, surfaced by the `flock_metrics`
/// virtual table. One instance lives for the lifetime of a `Database`;
/// every executed query folds its plan snapshot in.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Queries executed (SELECT-shaped statements, including EXPLAIN
    /// ANALYZE runs).
    pub queries: AtomicU64,
    /// Rows materialized by scans across all queries.
    pub rows_scanned: AtomicU64,
    /// Rows returned to clients.
    pub rows_returned: AtomicU64,
    /// Total wall time spent inside plan execution.
    pub exec_ns: AtomicU64,
    /// Operators that ran with parallel degree > 1.
    pub parallel_ops: AtomicU64,
    /// Morsels executed by parallel operator sections.
    pub morsels: AtomicU64,
    /// Queries rejected up front by the admission controller.
    pub admission_rejected: AtomicU64,
    /// Queries aborted by an explicit `Session::cancel()`.
    pub queries_cancelled: AtomicU64,
    /// Queries aborted by `statement_timeout`.
    pub queries_timed_out: AtomicU64,
    /// Queries aborted for exceeding their row/memory budget.
    pub budget_rejected: AtomicU64,
    /// Continuous-query scheduler passes over an individual CQ.
    pub stream_cq_ticks: AtomicU64,
    /// Windows closed (finalized) by continuous queries.
    pub stream_windows_closed: AtomicU64,
    /// Rows emitted into continuous-query sink tables.
    pub stream_rows_emitted: AtomicU64,
    /// Stream events dropped because every window containing them closed.
    pub stream_late_events: AtomicU64,
    /// Continuous-query policy (WHEN-clause) breaches fired.
    pub stream_policy_breaches: AtomicU64,
    /// Closed windows scored through PREDICT-bearing continuous queries.
    pub stream_predict_windows: AtomicU64,
    /// Continuous-query tick failures (runtime discarded and rebuilt).
    pub stream_cq_errors: AtomicU64,
    /// Externally-owned counters registered by higher layers (e.g. the
    /// inference layer's compiled-pipeline cache), appended to [`rows`].
    registered: Mutex<Vec<(&'static str, Arc<AtomicU64>)>>,
}

impl EngineMetrics {
    /// Expose an externally-owned counter as a `flock_metrics` row. The
    /// caller keeps the handle and updates it; reads happen at snapshot
    /// time. Re-registering a name replaces the previous handle.
    pub fn register(&self, name: &'static str, counter: Arc<AtomicU64>) {
        let mut registered = self.registered.lock();
        if let Some(slot) = registered.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = counter;
        } else {
            registered.push((name, counter));
        }
    }

    /// Fold one executed query's snapshot into the cumulative counters.
    pub fn record_query(&self, snapshot: &OpSnapshot) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.rows_scanned
            .fetch_add(snapshot.rows_scanned(), Ordering::Relaxed);
        self.rows_returned
            .fetch_add(snapshot.rows_out, Ordering::Relaxed);
        self.exec_ns.fetch_add(snapshot.total_ns, Ordering::Relaxed);
        self.parallel_ops
            .fetch_add(snapshot.parallel_ops(), Ordering::Relaxed);
        let morsels: u64 = snapshot.walk().iter().map(|(_, n)| n.morsels).sum();
        self.morsels.fetch_add(morsels, Ordering::Relaxed);
    }

    /// Name/value pairs in a stable order (the `flock_metrics` rows):
    /// built-in execution counters first, then registered external ones
    /// in registration order.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        let mut rows = vec![
            ("queries", self.queries.load(Ordering::Relaxed)),
            ("rows_scanned", self.rows_scanned.load(Ordering::Relaxed)),
            ("rows_returned", self.rows_returned.load(Ordering::Relaxed)),
            ("exec_ns", self.exec_ns.load(Ordering::Relaxed)),
            ("parallel_ops", self.parallel_ops.load(Ordering::Relaxed)),
            ("morsels", self.morsels.load(Ordering::Relaxed)),
            (
                "admission_rejected",
                self.admission_rejected.load(Ordering::Relaxed),
            ),
            (
                "queries_cancelled",
                self.queries_cancelled.load(Ordering::Relaxed),
            ),
            (
                "queries_timed_out",
                self.queries_timed_out.load(Ordering::Relaxed),
            ),
            (
                "budget_rejected",
                self.budget_rejected.load(Ordering::Relaxed),
            ),
            (
                "stream_cq_ticks",
                self.stream_cq_ticks.load(Ordering::Relaxed),
            ),
            (
                "stream_windows_closed",
                self.stream_windows_closed.load(Ordering::Relaxed),
            ),
            (
                "stream_rows_emitted",
                self.stream_rows_emitted.load(Ordering::Relaxed),
            ),
            (
                "stream_late_events",
                self.stream_late_events.load(Ordering::Relaxed),
            ),
            (
                "stream_policy_breaches",
                self.stream_policy_breaches.load(Ordering::Relaxed),
            ),
            (
                "stream_predict_windows",
                self.stream_predict_windows.load(Ordering::Relaxed),
            ),
            (
                "stream_cq_errors",
                self.stream_cq_errors.load(Ordering::Relaxed),
            ),
        ];
        rows.extend(
            self.registered
                .lock()
                .iter()
                .map(|(name, c)| (*name, c.load(Ordering::Relaxed))),
        );
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(rows: u64, ns: u64) -> OpSnapshot {
        OpSnapshot {
            name: "Scan".into(),
            detail: String::new(),
            rows_in: rows,
            rows_out: rows,
            batches: 1,
            total_ns: ns,
            self_ns: ns,
            morsels: 0,
            degree: 1,
            children: vec![],
        }
    }

    #[test]
    fn snapshot_rollups() {
        let mut agg = leaf(4, 500);
        agg.name = "HashAggregate".into();
        agg.degree = 4;
        agg.morsels = 16;
        agg.total_ns = 2_000;
        agg.self_ns = 1_500;
        agg.children = vec![leaf(100, 500)];
        assert_eq!(agg.parallel_ops(), 1);
        assert_eq!(agg.rows_scanned(), 100);
        let rendered = agg.render();
        assert!(rendered.contains("HashAggregate"), "{rendered}");
        assert!(rendered.contains("degree=4"), "{rendered}");
        assert!(rendered.starts_with("HashAggregate"));
        assert!(rendered.contains("\n  Scan"), "{rendered}");
    }

    #[test]
    fn engine_metrics_accumulate() {
        let m = EngineMetrics::default();
        let mut root = leaf(10, 100);
        root.children = vec![leaf(50, 40)];
        m.record_query(&root);
        m.record_query(&root);
        let rows: std::collections::HashMap<_, _> = m.rows().into_iter().collect();
        assert_eq!(rows["queries"], 2);
        assert_eq!(rows["rows_scanned"], 100);
        assert_eq!(rows["rows_returned"], 20);
    }

    #[test]
    fn registered_counters_appear_in_rows() {
        let m = EngineMetrics::default();
        let c = Arc::new(AtomicU64::new(7));
        m.register("predict_compile_hits", Arc::clone(&c));
        c.fetch_add(1, Ordering::Relaxed);
        let rows: std::collections::HashMap<_, _> = m.rows().into_iter().collect();
        assert_eq!(rows["predict_compile_hits"], 8);
        // re-registering the same name replaces the handle
        m.register("predict_compile_hits", Arc::new(AtomicU64::new(0)));
        let rows: std::collections::HashMap<_, _> = m.rows().into_iter().collect();
        assert_eq!(rows["predict_compile_hits"], 0);
        assert_eq!(m.rows().len(), 18);
    }

    #[test]
    fn fan_out_records_effective_degree() {
        let op = OpMetrics::default();
        op.record_fan_out(3, 8); // only 3 morsels -> effective degree 3
        op.record_fan_out(100, 8);
        assert_eq!(op.morsels.load(Ordering::Relaxed), 103);
        assert_eq!(op.par_degree.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(2_500), "2.5\u{b5}s");
        assert_eq!(fmt_ns(1_250_000), "1.250ms");
    }
}
