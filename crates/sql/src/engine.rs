//! The database engine: sessions, transactions, DML, logging, auditing.

use crate::ast::{
    AlterAction, ColumnDecl, Expr, GrantObject, InsertSource, PredictStrategy, Statement,
    WindowSpec,
};
use crate::batch::RecordBatch;
use crate::catalog::{Catalog, ObjectRef, Privilege, ViewDef};
use crate::column::ColumnVector;
use crate::error::{Result, SqlError};
use crate::exec::window::WindowAggState;
use crate::exec::{
    create_physical_plan, AdmissionController, AdmissionSlot, CancelHandle, CancelToken,
    EngineMetrics, EvalContext, ExecOptions, OpSnapshot, PhysExpr, PlanMetrics, QueryBudget,
};
use crate::stream::{compile_cq, CompiledCq, CqSpec, StreamSpec, CQ_KIND, STREAM_KIND};
use crate::lexer::Token;
use crate::optimizer::{optimize, OptimizerConfig};
use crate::plan::{plan_query, rewrite_expr, LogicalPlan, PlanContext, PlanRewriter, SubqueryRunner};
use crate::plancache::{bind_slots, normalize, CacheHit, CacheKey, CachedPlan, ParamSlot, PlanCache};
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::trainer::{NoTrainer, TrainSpec, TrainerRef};
use crate::types::{DataType, Value};
use crate::udf::{NoInference, ProviderRef};
use crate::wal::{DurabilityOptions, DurableFs, RedoOp, StdFs, WalManager, WalRecord};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Classification of a statement for the query log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    Query,
    Insert,
    Update,
    Delete,
    Ddl,
    Txn,
    Grant,
    Other,
}

/// One entry in the query log; the provenance module's *lazy* capture mode
/// replays this log.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    pub id: u64,
    pub txn_id: u64,
    pub user: String,
    pub sql: String,
    pub kind: StatementKind,
    pub tables_read: Vec<String>,
    pub tables_written: Vec<String>,
    /// Table versions produced by this statement (name, new version).
    pub versions_written: Vec<(String, u64)>,
    pub timestamp_ms: u64,
    /// Rows materialized by scans while executing this statement
    /// (0 for non-query statements).
    pub rows_scanned: u64,
    /// Rows returned to the client.
    pub rows_returned: u64,
    /// Wall time spent executing the physical plan, in microseconds.
    pub elapsed_us: u64,
    /// Operators that ran with parallel degree > 1.
    pub parallel_ops: u64,
}

/// Measured runtime of one executed query, folded into its log entry.
#[derive(Debug, Clone, Copy, Default)]
struct QueryRuntime {
    rows_scanned: u64,
    rows_returned: u64,
    elapsed_us: u64,
    parallel_ops: u64,
}

/// One audit record. Every data/model access and every privileged action
/// lands here — "auditably tracked" in the paper's words.
#[derive(Debug, Clone)]
pub struct AuditRecord {
    pub seq: u64,
    pub user: String,
    pub action: String,
    pub object: String,
    pub detail: String,
    pub timestamp_ms: u64,
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

struct DbState {
    catalog: Catalog,
    next_txn: u64,
    next_log_id: u64,
    next_audit_seq: u64,
    query_log: Vec<QueryLogEntry>,
    audit_log: Vec<AuditRecord>,
    /// Write-ahead log; `None` for a purely in-memory database.
    wal: Option<WalManager>,
}

/// Canonical snapshot of the committed state (checkpoints and digests).
fn snapshot_of(state: &DbState) -> crate::wal::Snapshot {
    crate::wal::build_snapshot(
        &state.catalog,
        state.next_txn,
        state.next_log_id,
        state.next_audit_seq,
        &state.query_log,
        &state.audit_log,
    )
}

/// Upper bound on rows per part flushed by offload.
const MAX_PART_ROWS: usize = 65_536;
/// A merge folds at least this many consecutive same-level parts.
const MERGE_MIN_PARTS: usize = 4;
/// ... and never produces a part with more rows than this.
const MERGE_MAX_ROWS: u64 = 262_144;
/// Decoded-bytes cap for a merge when no memory budget is set.
const MERGE_DEFAULT_BYTES: u64 = 16 << 20;

/// Decoded-size cap for one merge: half the table memory budget (the
/// streaming scan decodes one part at a time, so this keeps a merged
/// part's decode within the same envelope), or a fixed default.
fn merge_byte_cap(budget: u64) -> u64 {
    if budget > 0 {
        (budget / 2).max(1)
    } else {
        MERGE_DEFAULT_BYTES
    }
}

/// Resident footprint estimate for a batch — the same coarse
/// 8-bytes-per-cell model the executor's memory accounting uses.
fn resident_bytes(b: &RecordBatch) -> u64 {
    (b.num_rows() as u64) * (b.num_columns() as u64) * 8
}

/// Reset the part store's inventory counters to the set of parts the live
/// catalog references (deduplicated: appends share parts across versions).
fn sync_part_inventory(catalog: &Catalog) {
    let Some(store) = catalog.part_store() else { return };
    let mut live: std::collections::BTreeMap<u64, &crate::parts::PartMeta> =
        std::collections::BTreeMap::new();
    for name in catalog.table_names() {
        if let Ok(t) = catalog.table(&name) {
            for v in t.versions() {
                for p in &v.parts {
                    live.insert(p.id, p);
                }
            }
        }
    }
    store.set_inventory(live.into_values());
}

/// Rewrite a snapshot into its fully resident logical form: each
/// part-backed version gets its parts decoded and prepended to the tail,
/// and its manifest cleared. Best-effort — an unreadable part leaves that
/// version physical (a state recovery would reject anyway).
fn logicalize_snapshot(
    snap: &mut crate::wal::Snapshot,
    store: Option<&Arc<crate::parts::PartStore>>,
) {
    let Some(store) = store else { return };
    for t in &mut snap.tables {
        for v in &mut t.versions {
            if v.parts.is_empty() {
                continue;
            }
            let mut batches = Vec::with_capacity(v.parts.len() + 1);
            let all_readable = v.parts.iter().all(|p| match store.read_part(p.id) {
                Ok(b) => {
                    batches.push(b);
                    true
                }
                Err(_) => false,
            });
            if !all_readable {
                continue;
            }
            batches.push(v.data.clone());
            if let Ok(full) = RecordBatch::concat(v.data.schema().clone(), &batches) {
                v.data = full;
                v.parts.clear();
            }
        }
    }
}

/// Fully materialize a table version: decode its disk parts (in order)
/// ahead of the resident tail. Full-rewrite paths (UPDATE/DELETE/ALTER)
/// go through this, so the new version they install never silently drops
/// rows that lived on disk.
fn materialize_version(
    catalog: &Catalog,
    v: &crate::table::TableVersion,
) -> Result<RecordBatch> {
    if v.parts.is_empty() {
        return Ok(v.data.clone());
    }
    let store = catalog.part_store().ok_or_else(|| {
        SqlError::Io("table has disk parts but no part store is attached".into())
    })?;
    let mut batches = Vec::with_capacity(v.parts.len() + 1);
    for p in &v.parts {
        batches.push(store.read_part(p.id)?);
    }
    batches.push(v.data.clone());
    RecordBatch::concat(v.data.schema().clone(), &batches)
}

/// One size-tiered merge step: find a run of [`MERGE_MIN_PARTS`]+
/// consecutive same-level parts in some table's current version whose
/// combined decoded size fits under `byte_cap`, fold them into a single
/// next-level part, and splice it in place. Decode and encode run outside
/// the catalog lock (parts are immutable); the splice re-verifies the run
/// is still current before swapping, and never deletes the source files —
/// older versions and older checkpoints may still reference them, so
/// reclamation belongs to checkpoint pruning. Purely physical: no WAL
/// record, no version bump, no logical-digest change.
fn merge_step(state: &RwLock<DbState>, byte_cap: u64) -> bool {
    let (name, start, run, store) = {
        let st = state.read();
        let Some(store) = st.catalog.part_store().cloned() else {
            return false;
        };
        let mut found = None;
        'tables: for name in st.catalog.table_names() {
            let Ok(table) = st.catalog.table(&name) else { continue };
            let parts = &table.current().parts;
            let mut i = 0;
            while i + MERGE_MIN_PARTS <= parts.len() {
                let level = parts[i].level;
                let mut j = i;
                let (mut rows, mut bytes) = (0u64, 0u64);
                while j < parts.len()
                    && parts[j].level == level
                    && rows + parts[j].rows <= MERGE_MAX_ROWS
                    && bytes + parts[j].decoded_bytes() <= byte_cap
                {
                    rows += parts[j].rows;
                    bytes += parts[j].decoded_bytes();
                    j += 1;
                }
                if j - i >= MERGE_MIN_PARTS {
                    found = Some((name.clone(), i, parts[i..j].to_vec()));
                    break 'tables;
                }
                i = if j > i { j } else { i + 1 };
            }
        }
        match found {
            Some((name, start, run)) => (name, start, run, store),
            None => return false,
        }
    };

    let mut batches = Vec::with_capacity(run.len());
    for m in &run {
        match store.read_part(m.id) {
            Ok(b) => batches.push(b),
            Err(_) => return false,
        }
    }
    let schema = batches[0].schema().clone();
    let Ok(folded) = RecordBatch::concat(schema, &batches) else {
        return false;
    };
    let Ok(merged) = store.write_part(&folded, run[0].level.saturating_add(1)) else {
        return false;
    };

    let mut st = state.write();
    let Ok(table) = st.catalog.table_mut(&name) else {
        store.remove_part(&merged);
        return false;
    };
    let cur = table.current();
    let still_current = cur.parts.len() >= start + run.len()
        && cur.parts[start..start + run.len()]
            .iter()
            .zip(&run)
            .all(|(a, b)| a.id == b.id);
    if !still_current {
        store.remove_part(&merged);
        return false;
    }
    let mut parts = cur.parts.clone();
    let tail = cur.data.clone();
    parts.splice(start..start + run.len(), [merged]);
    table.replace_current_with_parts(parts, tail);
    store.note_merged(run.len() as u64);
    true
}

/// Handle to the background part-merge thread: signals stop and joins on
/// drop (the last database handle dropping takes the thread with it).
struct MergerGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MergerGuard {
    fn spawn(state: Weak<RwLock<DbState>>, budget: Arc<AtomicU64>) -> MergerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("flock-part-merger".into())
            .spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_millis(25));
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                // Weak: the merger must not keep a closed database alive.
                let Some(state) = state.upgrade() else { return };
                let cap = merge_byte_cap(budget.load(Ordering::Relaxed));
                while merge_step(&state, cap) {
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                }
            })
            .expect("spawning part merger");
        MergerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for MergerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Per-continuous-query runtime state, kept outside the catalog: the
/// compiled per-window pipeline plus incremental ingest/window state.
/// Purely a cache — a crash (or an emission conflict) discards it and the
/// next tick rebuilds it from the stream's retained rows, with the CQ's
/// durable `next_emit_ms` cursor suppressing re-emission of windows that
/// already reached the sink.
struct CqRuntime {
    /// Options epoch the pipeline was compiled under (provider / exec
    /// option changes recompile; the query text itself is immutable).
    options_epoch: u64,
    compiled: CompiledCq,
    /// Stream rows already folded into window state. The stream table is
    /// append-only, so `slice(rows_seen..)` is exactly the new events.
    rows_seen: usize,
    /// Max event time over *all* ingested rows (pre-WHERE), driving the
    /// watermark even when the filter drops every recent event.
    max_event_ms: Option<i64>,
    state: WindowAggState,
    /// Late events already folded into the engine-wide counter.
    late_reported: u64,
}

/// Handle to the background continuous-query scheduler thread: signals
/// stop and joins on drop, exactly like [`MergerGuard`].
struct StreamGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StreamGuard {
    fn spawn(weak: WeakDb) -> StreamGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("flock-cq-scheduler".into())
            .spawn(move || loop {
                // Chunked sleep so large tick settings still join promptly.
                let tick = weak.stream_tick_ms.load(Ordering::Relaxed).max(1);
                let mut slept = 0u64;
                while slept < tick {
                    let step = (tick - slept).min(25);
                    std::thread::sleep(std::time::Duration::from_millis(step));
                    slept += step;
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                }
                // Weak: the scheduler must not keep a closed database alive.
                let Some(db) = weak.upgrade() else { return };
                db.stream_tick_once();
            })
            .expect("spawning cq scheduler");
        StreamGuard {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for StreamGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Commit observer: receives the committed catalog snapshot and the
/// conflict keys the transaction wrote (table names and `ext:kind:name`
/// extension keys). Fired outside the state lock; must not re-enter the
/// database.
pub type CommitHook = Arc<dyn Fn(&Catalog, &[String]) + Send + Sync>;

/// A shared, thread-safe database handle.
#[derive(Clone)]
pub struct Database {
    state: Arc<RwLock<DbState>>,
    provider: Arc<RwLock<ProviderRef>>,
    trainer: Arc<RwLock<TrainerRef>>,
    /// Observers fired after a transaction commits, outside the state
    /// lock, with the committed catalog snapshot and the written keys.
    /// Used by `flock-core` to keep its model registry in sync with
    /// engine-side model DDL (CREATE/RETRAIN/DROP MODEL).
    commit_hooks: Arc<RwLock<Vec<CommitHook>>>,
    options: Arc<RwLock<ExecOptions>>,
    optimizer: Arc<RwLock<OptimizerConfig>>,
    rewriters: Arc<RwLock<Vec<Arc<dyn PlanRewriter>>>>,
    metrics: Arc<EngineMetrics>,
    admission: Arc<AdmissionController>,
    last_query: Arc<RwLock<Option<OpSnapshot>>>,
    plan_cache: Arc<PlanCache>,
    /// Bumped when a transaction that ran DDL (or changed grants) commits;
    /// cached plans carry the epoch they were planned under.
    ddl_epoch: Arc<AtomicU64>,
    /// Bumped when exec options, optimizer config, plan rewriters, or the
    /// inference provider change — any of these can change what a plan
    /// compiles to.
    options_epoch: Arc<AtomicU64>,
    /// Engine-wide cap on a table's resident bytes (0 = offloading
    /// disabled). Commits that leave a written table over this budget
    /// flush its resident rows into disk parts as part of the commit.
    table_memory_budget: Arc<AtomicU64>,
    /// Background part-merge thread, if started. Dropped (stopped and
    /// joined) with the last handle to this database.
    merger: Arc<Mutex<Option<MergerGuard>>>,
    /// Continuous-query scheduler tick interval in milliseconds
    /// (engine-wide; also reachable as `SET stream_tick_ms = <ms>`).
    stream_tick_ms: Arc<AtomicU64>,
    /// Background continuous-query scheduler thread, if started.
    streams: Arc<Mutex<Option<StreamGuard>>>,
    /// Per-CQ incremental runtime state; the lock also serializes ticks,
    /// so the background scheduler and [`Database::stream_tick_now`] never
    /// interleave within one tick.
    stream_runtime: Arc<Mutex<HashMap<String, CqRuntime>>>,
}

/// Everything a background scheduler needs to reconstruct a [`Database`]
/// handle per tick without keeping the state alive: a weak state pointer
/// plus clones of the shared components. The reconstructed handle gets
/// fresh (empty) background-thread slots — schedulers never spawn peers.
struct WeakDb {
    state: Weak<RwLock<DbState>>,
    provider: Arc<RwLock<ProviderRef>>,
    trainer: Arc<RwLock<TrainerRef>>,
    commit_hooks: Arc<RwLock<Vec<CommitHook>>>,
    options: Arc<RwLock<ExecOptions>>,
    optimizer: Arc<RwLock<OptimizerConfig>>,
    rewriters: Arc<RwLock<Vec<Arc<dyn PlanRewriter>>>>,
    metrics: Arc<EngineMetrics>,
    admission: Arc<AdmissionController>,
    last_query: Arc<RwLock<Option<OpSnapshot>>>,
    plan_cache: Arc<PlanCache>,
    ddl_epoch: Arc<AtomicU64>,
    options_epoch: Arc<AtomicU64>,
    table_memory_budget: Arc<AtomicU64>,
    stream_tick_ms: Arc<AtomicU64>,
    stream_runtime: Arc<Mutex<HashMap<String, CqRuntime>>>,
}

impl WeakDb {
    fn upgrade(&self) -> Option<Database> {
        Some(Database {
            state: self.state.upgrade()?,
            provider: self.provider.clone(),
            trainer: self.trainer.clone(),
            commit_hooks: self.commit_hooks.clone(),
            options: self.options.clone(),
            optimizer: self.optimizer.clone(),
            rewriters: self.rewriters.clone(),
            metrics: self.metrics.clone(),
            admission: self.admission.clone(),
            last_query: self.last_query.clone(),
            plan_cache: self.plan_cache.clone(),
            ddl_epoch: self.ddl_epoch.clone(),
            options_epoch: self.options_epoch.clone(),
            table_memory_budget: self.table_memory_budget.clone(),
            merger: Arc::new(Mutex::new(None)),
            stream_tick_ms: self.stream_tick_ms.clone(),
            streams: Arc::new(Mutex::new(None)),
            stream_runtime: self.stream_runtime.clone(),
        })
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    pub fn new() -> Self {
        Self::from_state(DbState {
            catalog: Catalog::new(),
            next_txn: 1,
            next_log_id: 1,
            next_audit_seq: 1,
            query_log: Vec::new(),
            audit_log: Vec::new(),
            wal: None,
        })
    }

    fn from_state(state: DbState) -> Self {
        let metrics = Arc::new(EngineMetrics::default());
        let plan_cache = Arc::new(PlanCache::default());
        for (name, counter) in plan_cache.counters() {
            metrics.register(name, counter);
        }
        Database {
            state: Arc::new(RwLock::new(state)),
            provider: Arc::new(RwLock::new(Arc::new(NoInference))),
            trainer: Arc::new(RwLock::new(Arc::new(NoTrainer) as TrainerRef)),
            commit_hooks: Arc::new(RwLock::new(Vec::new())),
            options: Arc::new(RwLock::new(ExecOptions::default())),
            optimizer: Arc::new(RwLock::new(OptimizerConfig::default())),
            rewriters: Arc::new(RwLock::new(Vec::new())),
            metrics,
            admission: Arc::new(AdmissionController::new()),
            last_query: Arc::new(RwLock::new(None)),
            plan_cache,
            ddl_epoch: Arc::new(AtomicU64::new(0)),
            options_epoch: Arc::new(AtomicU64::new(0)),
            table_memory_budget: Arc::new(AtomicU64::new(0)),
            merger: Arc::new(Mutex::new(None)),
            stream_tick_ms: Arc::new(AtomicU64::new(25)),
            streams: Arc::new(Mutex::new(None)),
            stream_runtime: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    fn weak(&self) -> WeakDb {
        WeakDb {
            state: Arc::downgrade(&self.state),
            provider: self.provider.clone(),
            trainer: self.trainer.clone(),
            commit_hooks: self.commit_hooks.clone(),
            options: self.options.clone(),
            optimizer: self.optimizer.clone(),
            rewriters: self.rewriters.clone(),
            metrics: self.metrics.clone(),
            admission: self.admission.clone(),
            last_query: self.last_query.clone(),
            plan_cache: self.plan_cache.clone(),
            ddl_epoch: self.ddl_epoch.clone(),
            options_epoch: self.options_epoch.clone(),
            table_memory_budget: self.table_memory_budget.clone(),
            stream_tick_ms: self.stream_tick_ms.clone(),
            stream_runtime: self.stream_runtime.clone(),
        }
    }

    /// Open (or create) a durable database in a directory on the real
    /// filesystem. Recovery runs first: the newest valid checkpoint is
    /// loaded and the log replayed, so the returned handle sees exactly the
    /// committed state of the previous process.
    pub fn open(path: impl AsRef<std::path::Path>, opts: DurabilityOptions) -> Result<Database> {
        let fs = StdFs::new(path).map_err(|e| SqlError::Io(format!("opening database: {e}")))?;
        let db = Self::open_with_fs(Arc::new(fs), opts)?;
        db.start_background_merge();
        db.start_stream_scheduler();
        Ok(db)
    }

    /// Open a durable database on any [`DurableFs`] — the fault-injection
    /// harness runs the whole engine against in-memory and failpoint
    /// filesystems through this entry point. The background merger is
    /// *not* started here (so fault-injection runs stay deterministic);
    /// call [`Database::start_background_merge`] if you want it.
    pub fn open_with_fs(fs: Arc<dyn DurableFs>, opts: DurabilityOptions) -> Result<Database> {
        let rec = crate::wal::recover(fs, opts)?;
        let store = Arc::new(
            crate::parts::PartStore::open(rec.manager.fs().clone())
                .map_err(|e| SqlError::Io(format!("opening part store: {e}")))?,
        );
        let mut catalog = rec.catalog;
        catalog.set_part_store(store.clone());
        sync_part_inventory(&catalog);
        let db = Self::from_state(DbState {
            catalog,
            next_txn: rec.next_txn,
            next_log_id: rec.next_log_id,
            next_audit_seq: rec.next_audit_seq,
            query_log: rec.query_log,
            audit_log: rec.audit_log,
            wal: Some(rec.manager),
        });
        for (name, counter) in store.metric_counters() {
            db.metrics.register(name, counter);
        }
        Ok(db)
    }

    /// Durability options, or `None` for an in-memory database.
    pub fn durability(&self) -> Option<DurabilityOptions> {
        self.state.read().wal.as_ref().map(|w| w.options())
    }

    /// Force a checkpoint now. Returns its sequence number, or `None` for
    /// an in-memory database.
    pub fn checkpoint_now(&self) -> Result<Option<u64>> {
        let mut state = self.state.write();
        let snap = snapshot_of(&state);
        let r = match &mut state.wal {
            Some(wal) => wal
                .checkpoint(&snap)
                .map(Some)
                .map_err(|e| SqlError::Io(format!("checkpoint failed: {e}"))),
            None => Ok(None),
        };
        sync_part_inventory(&state.catalog);
        r
    }

    /// Deterministic digest of the committed logical state (catalog, both
    /// logs, and the log/audit id counters). `next_txn` is excluded: txn
    /// ids consumed by rolled-back or read-only transactions are not — and
    /// need not be — persisted by a redo-only log, so the counter may
    /// legitimately differ across a recovery while the logical state is
    /// bit-identical.
    /// The digest is taken over the *logical* form of the snapshot: every
    /// part-backed version is materialized into resident rows first, so the
    /// digest is independent of physical layout — offloading history into
    /// disk parts or merging parts never changes it, and a recovery that
    /// replays the WAL into a fully resident state digests identically to
    /// the part-backed state it recovered.
    pub fn state_digest(&self) -> u64 {
        let state = self.state.read();
        let mut snap = snapshot_of(&state);
        snap.next_txn = 0;
        logicalize_snapshot(&mut snap, state.catalog.part_store());
        crate::wal::digest(&snap)
    }

    /// Set the engine-wide resident-bytes budget per table (0 disables
    /// offloading). Also reachable as `SET table_memory_budget = <bytes>`.
    pub fn set_table_memory_budget(&self, bytes: u64) {
        self.table_memory_budget.store(bytes, Ordering::Relaxed);
    }

    pub fn table_memory_budget(&self) -> u64 {
        self.table_memory_budget.load(Ordering::Relaxed)
    }

    /// Synchronously run merge steps until no more apply (what the
    /// background thread does continuously). Returns merges performed.
    /// Deterministic alternative for tests and fault-injection harnesses.
    pub fn merge_now(&self) -> usize {
        let cap = merge_byte_cap(self.table_memory_budget.load(Ordering::Relaxed));
        let mut n = 0;
        while merge_step(&self.state, cap) {
            n += 1;
        }
        n
    }

    /// Start the background part-merge thread (idempotent; no-op for
    /// in-memory databases). [`Database::open`] starts it automatically;
    /// [`Database::open_with_fs`] leaves it off so fault-injection runs
    /// stay deterministic.
    pub fn start_background_merge(&self) {
        let mut slot = self.merger.lock();
        if slot.is_some() || self.state.read().catalog.part_store().is_none() {
            return;
        }
        *slot = Some(MergerGuard::spawn(
            Arc::downgrade(&self.state),
            self.table_memory_budget.clone(),
        ));
    }

    /// Stop and join the background merge thread, if running.
    pub fn stop_background_merge(&self) {
        *self.merger.lock() = None;
    }

    /// Start the background continuous-query scheduler (idempotent).
    /// [`Database::open`] starts it automatically; in-memory databases and
    /// fault-injection harnesses call [`Database::stream_tick_now`] for a
    /// deterministic, synchronous tick instead.
    pub fn start_stream_scheduler(&self) {
        let mut slot = self.streams.lock();
        if slot.is_some() {
            return;
        }
        *slot = Some(StreamGuard::spawn(self.weak()));
    }

    /// Stop and join the continuous-query scheduler, if running.
    pub fn stop_stream_scheduler(&self) {
        *self.streams.lock() = None;
    }

    /// Set the scheduler tick interval (also `SET stream_tick_ms = <ms>`).
    pub fn set_stream_tick_ms(&self, ms: u64) {
        self.stream_tick_ms.store(ms.max(1), Ordering::Relaxed);
    }

    /// Run one scheduler tick synchronously: feed every registered
    /// continuous query its newly appended stream rows, close every window
    /// the watermark has passed, and emit closed windows into their sink
    /// tables. Returns the number of windows emitted. The deterministic
    /// alternative to the background scheduler for tests and harnesses.
    pub fn stream_tick_now(&self) -> usize {
        self.stream_tick_once()
    }

    /// One scheduler pass over every registered continuous query. Errors
    /// are per-CQ: a failing query is counted, its runtime discarded (the
    /// next tick rebuilds from the stream's retained rows under the
    /// durable emission cursor), and the others proceed.
    fn stream_tick_once(&self) -> usize {
        let catalog = self.catalog();
        let cqs: Vec<(String, String, serde_json::Value)> = catalog
            .extensions_of_kind(CQ_KIND)
            .into_iter()
            .map(|o| (o.name.clone(), o.owner.clone(), o.current().metadata.clone()))
            .collect();
        let mut runtimes = self.stream_runtime.lock();
        runtimes.retain(|k, _| catalog.has_extension(CQ_KIND, k));
        let mut emitted = 0usize;
        for (name, owner, meta) in cqs {
            self.metrics.stream_cq_ticks.fetch_add(1, Ordering::Relaxed);
            match self.tick_cq(&mut runtimes, &catalog, &name, &owner, &meta) {
                Ok(n) => emitted += n,
                Err(_) => {
                    runtimes.remove(&name);
                    self.metrics.stream_cq_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        emitted
    }

    /// Tick one continuous query against a catalog snapshot: ingest the
    /// stream's new rows into incremental window state, close windows
    /// under the watermark, and emit them transactionally (sink append +
    /// cursor advance + any policy action commit or fail as one).
    fn tick_cq(
        &self,
        runtimes: &mut HashMap<String, CqRuntime>,
        catalog: &Catalog,
        name: &str,
        owner: &str,
        meta: &serde_json::Value,
    ) -> Result<usize> {
        let spec = CqSpec::from_metadata(meta)?;
        let stream_spec = StreamSpec::from_metadata(
            &catalog
                .extension(STREAM_KIND, &spec.stream)?
                .current()
                .metadata,
        )?;
        let table = catalog.table(&spec.stream)?;
        let data = materialize_version(catalog, table.current())?;
        let provider = self.inference_provider();
        let opt_epoch = self.options_epoch.load(Ordering::Relaxed);

        // (Re)build the runtime: missing, or the stream shrank under it
        // (dropped and recreated), or after a process restart. The durable
        // cursor suppresses re-emission during the replay below.
        let stale = match runtimes.get(name) {
            Some(rt) => rt.rows_seen > data.num_rows(),
            None => true,
        };
        if stale {
            let compiled = compile_cq(&spec, catalog, provider.as_ref())?;
            let state = WindowAggState::new(
                spec.window.size_ms,
                spec.window.slide_ms,
                compiled.agg_calls.clone(),
            );
            runtimes.insert(
                name.to_string(),
                CqRuntime {
                    options_epoch: opt_epoch,
                    compiled,
                    rows_seen: 0,
                    max_event_ms: None,
                    state,
                    late_reported: 0,
                },
            );
        }
        let rt = runtimes.get_mut(name).expect("runtime just ensured");
        if rt.options_epoch != opt_epoch {
            // provider / exec options moved: recompile the pipeline, keep
            // the window state (the query text is immutable).
            rt.compiled = compile_cq(&spec, catalog, provider.as_ref())?;
            rt.options_epoch = opt_epoch;
        }

        let eval_ctx = EvalContext::new(provider.clone(), owner.to_string(), 1);

        // Ingest rows appended since the last tick, in insertion order —
        // the same order the batch aggregate would scan them, which is the
        // bit-equality contract.
        let n = data.num_rows();
        if n > rt.rows_seen {
            let fresh = data.slice(rt.rows_seen, n - rt.rows_seen);
            rt.rows_seen = n;
            let et_all = event_times(&fresh, rt.compiled.et_index)?;
            if let Some(m) = et_all.iter().copied().max() {
                rt.max_event_ms = Some(rt.max_event_ms.map_or(m, |c| c.max(m)));
            }
            let (filtered, et) = match &rt.compiled.where_pred {
                Some(p) => {
                    let col = p.eval(&fresh, &eval_ctx)?;
                    let mask: Vec<bool> = (0..fresh.num_rows())
                        .map(|i| col.get(i).as_bool() == Some(true))
                        .collect();
                    let kept: Vec<i64> = et_all
                        .iter()
                        .zip(&mask)
                        .filter(|(_, keep)| **keep)
                        .map(|(t, _)| *t)
                        .collect();
                    (fresh.filter(&mask)?, kept)
                }
                None => (fresh, et_all),
            };
            if filtered.num_rows() > 0 {
                let group_cols: Vec<ColumnVector> = rt
                    .compiled
                    .group_exprs
                    .iter()
                    .map(|e| e.eval(&filtered, &eval_ctx))
                    .collect::<Result<_>>()?;
                let agg_cols: Vec<Option<ColumnVector>> = rt
                    .compiled
                    .agg_args
                    .iter()
                    .map(|a| a.as_ref().map(|e| e.eval(&filtered, &eval_ctx)).transpose())
                    .collect::<Result<_>>()?;
                rt.state.observe(&et, &group_cols, &agg_cols);
            }
            let late = rt.state.late_events;
            if late > rt.late_reported {
                self.metrics
                    .stream_late_events
                    .fetch_add(late - rt.late_reported, Ordering::Relaxed);
                rt.late_reported = late;
            }
        }

        // Close windows under the watermark, ascending by start.
        let Some(max_et) = rt.max_event_ms else {
            return Ok(0);
        };
        let watermark = max_et.saturating_sub(stream_spec.lag_ms);
        let closed = rt.state.close_ready(watermark);
        let Some(last_start) = closed.last().map(|c| c.start) else {
            return Ok(0);
        };
        // Replay suppression: windows below the durable cursor already
        // reached the sink before a crash/rebuild.
        let emit: Vec<_> = closed
            .into_iter()
            .filter(|c| spec.next_emit_ms.is_none_or(|cursor| c.start >= cursor))
            .collect();
        if emit.is_empty() {
            return Ok(0);
        }
        let emitted = emit.len();

        // Finalize each window: aggregate batch -> HAVING -> projection
        // (PREDICT here runs the batched serving kernel per window).
        let mut sink_rows: Vec<Vec<Value>> = Vec::new();
        for w in &emit {
            let rows: Vec<Vec<Value>> = w
                .keys
                .iter()
                .zip(&w.aggs)
                .map(|(k, a)| k.0.iter().cloned().chain(a.iter().cloned()).collect())
                .collect();
            let mut agg_batch = RecordBatch::from_rows(rt.compiled.agg_schema.clone(), &rows)?;
            if let Some(h) = &rt.compiled.having {
                let col = h.eval(&agg_batch, &eval_ctx)?;
                let mask: Vec<bool> = (0..agg_batch.num_rows())
                    .map(|i| col.get(i).as_bool() == Some(true))
                    .collect();
                agg_batch = agg_batch.filter(&mask)?;
            }
            self.metrics
                .stream_windows_closed
                .fetch_add(1, Ordering::Relaxed);
            if agg_batch.num_rows() == 0 {
                continue;
            }
            let proj_cols: Vec<ColumnVector> = rt
                .compiled
                .proj_exprs
                .iter()
                .map(|e| e.eval(&agg_batch, &eval_ctx))
                .collect::<Result<_>>()?;
            if !rt.compiled.predict_models.is_empty() {
                self.metrics
                    .stream_predict_windows
                    .fetch_add(1, Ordering::Relaxed);
            }
            for r in 0..agg_batch.num_rows() {
                let mut row = Vec::with_capacity(1 + proj_cols.len());
                row.push(Value::Int(w.start));
                row.extend(proj_cols.iter().map(|c| c.get(r)));
                sink_rows.push(row);
            }
        }
        let sink_batch = RecordBatch::from_rows(
            Arc::new(rt.compiled.sink_schema.clone()),
            &sink_rows,
        )?;

        // Policy check over the emitted rows (the sink shape the breach
        // predicate was compiled against).
        let mut breach_rows = 0usize;
        if let Some(p) = &rt.compiled.when_pred {
            if sink_batch.num_rows() > 0 {
                let col = p.eval(&sink_batch, &eval_ctx)?;
                breach_rows = (0..sink_batch.num_rows())
                    .filter(|&i| col.get(i).as_bool() == Some(true))
                    .count();
            }
        }

        // One transaction: sink append + durable cursor advance + any
        // policy action. A crash lands wholly before or wholly after.
        let rows_emitted = sink_batch.num_rows();
        let mut new_spec = spec.clone();
        new_spec.next_emit_ms = Some(last_start + spec.window.slide_ms);
        let hold = spec.hold_model.clone();
        let retrain = spec.retrain_model.clone();
        let mut session = self.session(owner);
        let cq_name = name.to_string();
        let sink_name = spec.sink.clone();
        session.with_autocommit(move |s| {
            if sink_batch.num_rows() > 0 {
                s.append_batch_txn(&sink_name, sink_batch)?;
            }
            s.update_extension_txn(CQ_KIND, &cq_name, Vec::new(), new_spec.to_metadata(), false)?;
            if breach_rows > 0 {
                s.audit(
                    "POLICY BREACH",
                    &cq_name,
                    &format!("{breach_rows} breaching row(s) in closed window(s)"),
                );
                if let Some(m) = &hold {
                    s.hold_model_txn(m)?;
                }
                if let Some(m) = &retrain {
                    s.retrain_model_txn(m, &format!("policy breach in '{cq_name}'"))?;
                }
            }
            Ok(())
        })?;
        self.metrics
            .stream_rows_emitted
            .fetch_add(rows_emitted as u64, Ordering::Relaxed);
        if breach_rows > 0 {
            self.metrics
                .stream_policy_breaches
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(emitted)
    }

    /// Commit-time offload: flush any written table whose resident bytes
    /// exceed the budget into disk parts and collapse its version history.
    /// Runs inside the committing transaction — the part-backed catalog
    /// installs with the commit and the history truncation rides the same
    /// WAL record batch, so a kill during the flush recovers to either the
    /// old state or the committed one, never a mix. Freshly flushed parts
    /// become reachable at the next checkpoint; until then a crash simply
    /// orphans them for checkpoint pruning to sweep.
    fn offload_over_budget(&self, txn: &mut Txn) -> Result<()> {
        let budget = self.table_memory_budget.load(Ordering::Relaxed);
        if budget == 0 {
            return Ok(());
        }
        let Some(store) = txn.catalog.part_store().cloned() else {
            return Ok(());
        };
        let keys: Vec<String> = txn
            .written
            .keys()
            .filter(|k| k.starts_with("table:"))
            .cloned()
            .collect();
        for key in keys {
            let name = key["table:".len()..].to_string();
            let Ok(table) = txn.catalog.table(&name) else {
                continue; // dropped in this transaction
            };
            let cur = table.current();
            if resident_bytes(&cur.data) <= budget {
                continue;
            }
            // Chunk so one part decodes back under half the budget: the
            // streaming scan's peak is then one part plus the tail.
            let ncols = cur.data.num_columns().max(1);
            let chunk_rows = ((budget as usize / (8 * ncols)) / 2).clamp(1, MAX_PART_ROWS);
            let mut parts = cur.parts.clone();
            for chunk in cur.data.chunks(chunk_rows) {
                parts.push(store.write_part(&chunk, 0)?);
            }
            let tail = RecordBatch::empty(cur.data.schema().clone());
            let pinned = lineage_pinned_versions(&txn.catalog, &name);
            let table = txn.catalog.table_mut(&name)?;
            let redo_table = table.name().to_string();
            table.replace_current_with_parts(parts, tail);
            // History versions hold the resident rows we just offloaded;
            // drop them unless a deployed model's lineage pins one (then
            // keep history and only the current version goes part-backed).
            if table
                .truncate_history_pinned(1, &pinned)
                .is_ok_and(|d| !d.is_empty())
            {
                txn.redo_buf.push(RedoOp::TruncateHistory {
                    table: redo_table,
                    keep: 1,
                });
            }
        }
        Ok(())
    }

    /// Cumulative engine-wide execution counters (the `flock_metrics`
    /// virtual table reads these).
    pub fn engine_metrics(&self) -> Arc<EngineMetrics> {
        self.metrics.clone()
    }

    /// Per-operator snapshot of the most recently executed query plan,
    /// across *all* sessions — concurrent sessions overwrite each other
    /// here. Use [`Session::last_query_metrics`] for the session-local
    /// snapshot.
    pub fn last_query_metrics(&self) -> Option<OpSnapshot> {
        self.last_query.read().clone()
    }

    /// The per-database admission controller (active-query gauge; the
    /// limit comes from [`ExecOptions::max_concurrent_queries`]).
    pub fn admission(&self) -> Arc<AdmissionController> {
        self.admission.clone()
    }

    /// Register a plan rewriter (e.g. the Flock cross-optimizer), applied
    /// after planning and before the relational optimizer.
    pub fn add_plan_rewriter(&self, rewriter: Arc<dyn PlanRewriter>) {
        self.rewriters.write().push(rewriter);
        self.options_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Remove all registered plan rewriters.
    pub fn clear_plan_rewriters(&self) {
        self.rewriters.write().clear();
        self.options_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The prepared-statement / plain-SQL plan cache.
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        self.plan_cache.clone()
    }

    fn apply_rewriters(&self, mut plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
        for r in self.rewriters.read().iter() {
            plan = r.rewrite(plan, catalog)?;
        }
        Ok(plan)
    }

    /// Open a session as `user` (the bootstrap superuser is "admin").
    pub fn session(&self, user: &str) -> Session {
        Session {
            db: self.clone(),
            user: user.to_string(),
            txn: None,
            cancel_flag: Arc::new(AtomicBool::new(false)),
            statement_timeout_ms: None,
            predict_strategy: None,
            last_query: None,
        }
    }

    /// Install the inference provider (done by `flock-core`).
    pub fn set_inference_provider(&self, provider: ProviderRef) {
        *self.provider.write() = provider;
        self.options_epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn inference_provider(&self) -> ProviderRef {
        self.provider.read().clone()
    }

    /// Install the model trainer backing `CREATE MODEL` / `RETRAIN MODEL`
    /// (done by `flock-core`).
    pub fn set_model_trainer(&self, trainer: TrainerRef) {
        *self.trainer.write() = trainer;
        self.options_epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn model_trainer(&self) -> TrainerRef {
        self.trainer.read().clone()
    }

    /// Register an observer fired after every successful commit, outside
    /// the state lock, with the committed catalog snapshot and the keys
    /// the transaction wrote. Hooks must not re-enter the database.
    pub fn add_commit_hook(&self, hook: CommitHook) {
        self.commit_hooks.write().push(hook);
    }

    /// Replace execution options (threading, default PREDICT strategy).
    /// Knobs are clamped into valid ranges — a zero-thread or zero-morsel
    /// configuration degrades to serial execution instead of panicking.
    pub fn set_exec_options(&self, options: ExecOptions) {
        *self.options.write() = options.validated();
        self.options_epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn exec_options(&self) -> ExecOptions {
        self.options.read().clone()
    }

    pub fn set_optimizer_config(&self, config: OptimizerConfig) {
        *self.optimizer.write() = config;
        self.options_epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn optimizer_config(&self) -> OptimizerConfig {
        *self.optimizer.read()
    }

    /// Snapshot of the committed catalog.
    pub fn catalog(&self) -> Catalog {
        self.state.read().catalog.clone()
    }

    /// Full query log (committed statements).
    pub fn query_log(&self) -> Vec<QueryLogEntry> {
        self.state.read().query_log.clone()
    }

    /// Full audit log.
    pub fn audit_log(&self) -> Vec<AuditRecord> {
        self.state.read().audit_log.clone()
    }

    /// Overlay the `flock_metrics` virtual table onto a catalog snapshot
    /// used for one query. A real user table of the same name shadows the
    /// virtual one; otherwise every user may SELECT it.
    fn overlay_metrics_table(&self, mut catalog: Catalog, user: &str) -> Catalog {
        if catalog.has_table("flock_metrics") {
            return catalog;
        }
        let schema = Schema::from_pairs(&[
            ("metric", crate::types::DataType::Text),
            ("value", crate::types::DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = self
            .metrics
            .rows()
            .into_iter()
            .map(|(name, v)| {
                vec![
                    Value::Text(name.to_string()),
                    Value::Int(i64::try_from(v).unwrap_or(i64::MAX)),
                ]
            })
            .collect();
        let built = (|| -> Result<Table> {
            let mut table = Table::new("flock_metrics", schema.clone(), 0)?;
            table.push_version(RecordBatch::from_rows(Arc::new(schema), &rows)?, 0)?;
            Ok(table)
        })();
        if let Ok(table) = built {
            if catalog.create_table(table).is_ok() {
                catalog
                    .access
                    .grant(user, ObjectRef::table("flock_metrics"), &[Privilege::Select]);
            }
        }
        catalog
    }

    /// Convenience: run a statement as admin with autocommit.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.session("admin").execute(sql)
    }

    /// Convenience: run a query as admin and return its batch.
    pub fn query(&self, sql: &str) -> Result<RecordBatch> {
        let res = self.execute(sql)?;
        res.batch
            .ok_or_else(|| SqlError::Execution("statement returned no rows".into()))
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result rows for queries / EXPLAIN, `None` for DML/DDL.
    pub batch: Option<RecordBatch>,
    pub rows_affected: usize,
    pub message: String,
}

impl QueryResult {
    fn none(message: impl Into<String>) -> Self {
        QueryResult {
            batch: None,
            rows_affected: 0,
            message: message.into(),
        }
    }

    fn affected(n: usize, message: impl Into<String>) -> Self {
        QueryResult {
            batch: None,
            rows_affected: n,
            message: message.into(),
        }
    }
}

/// Base state of one object at transaction start, for conflict detection.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BaseState {
    Absent,
    TableAt(u64),
    ExtensionAt(u64),
    ViewPresent,
}

struct Txn {
    id: u64,
    catalog: Catalog,
    /// Objects this txn wrote, with the committed state they were based on.
    written: HashMap<String, BaseState>,
    access_dirty: bool,
    /// True once any DDL ran (create/drop/alter of tables, views, or
    /// extension objects). A committing DDL txn bumps the database's DDL
    /// epoch, invalidating every cached plan.
    ddl: bool,
    /// Logical redo records, captured at mutation time in execution order.
    /// Replaying them over the base state reproduces the txn's effects.
    redo_buf: Vec<RedoOp>,
    log_buf: Vec<QueryLogEntry>,
    audit_buf: Vec<AuditRecord>,
}

/// A connection bound to a user, holding at most one open transaction.
pub struct Session {
    db: Database,
    user: String,
    txn: Option<Txn>,
    /// Cancel flag for the statement currently executing; reset at each
    /// statement start, set from other threads via [`CancelHandle`].
    cancel_flag: Arc<AtomicBool>,
    /// Session-local `SET statement_timeout` override, in milliseconds
    /// (`None` = fall back to [`ExecOptions::statement_timeout_ms`]).
    statement_timeout_ms: Option<u64>,
    /// Session-local `SET predict_strategy` override. Applied to every
    /// `PREDICT(...)` whose statement did not pin a strategy explicitly,
    /// *before* plan rewriters run (xopt consumes `Auto`), and keyed into
    /// the plan cache so sessions with different overrides never share
    /// a cached plan.
    predict_strategy: Option<PredictStrategy>,
    /// This session's most recent query snapshot — unlike the engine-wide
    /// [`Database::last_query_metrics`], concurrent sessions cannot
    /// clobber it.
    last_query: Option<OpSnapshot>,
}

impl Session {
    pub fn user(&self) -> &str {
        &self.user
    }

    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// A handle other threads use to cancel this session's currently
    /// executing statement (the flag resets when the next statement
    /// starts). Cancellation is cooperative: the executor notices
    /// at the next operator entry / morsel / row-stride boundary and
    /// unwinds with [`SqlError::Cancelled`].
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle::new(self.cancel_flag.clone())
    }

    /// Session-local statement timeout in milliseconds, equivalent to
    /// `SET statement_timeout = <ms>`. `None` restores the engine default
    /// ([`ExecOptions::statement_timeout_ms`]); `Some(0)` disables the
    /// timeout for this session even when the engine sets one.
    pub fn set_statement_timeout(&mut self, ms: Option<u64>) {
        self.statement_timeout_ms = ms;
    }

    /// The effective session-local timeout override, if any.
    pub fn statement_timeout(&self) -> Option<u64> {
        self.statement_timeout_ms
    }

    /// Per-operator snapshot of this session's most recent query
    /// (including partial metrics of a cancelled / timed-out query).
    pub fn last_query_metrics(&self) -> Option<OpSnapshot> {
        self.last_query.clone()
    }

    /// Execute one SQL statement (autocommit unless inside BEGIN/COMMIT).
    ///
    /// Plain `SELECT` text outside a transaction takes a fast path: the
    /// raw token stream keys the plan cache, so repeating the same query
    /// text skips parse/plan/optimize. Literals stay inline on this path —
    /// value-dependent optimizations (e.g. threshold-based model pruning)
    /// still see them.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        if self.txn.is_none() {
            if let Ok(tokens) = crate::lexer::tokenize(sql) {
                if matches!(tokens.first(),
                    Some(Token::Ident(w)) if w.eq_ignore_ascii_case("SELECT"))
                {
                    return self.execute_select_tokens(tokens, sql);
                }
            }
        }
        let stmt = crate::parser::parse_statement(sql)?;
        self.execute_statement(stmt, sql)
    }

    /// Execute with `?` placeholders bound to `params`.
    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let stmt = crate::parser::parse_statement(sql)?;
        let stmt = bind_parameters(stmt, params)?;
        self.execute_statement(stmt, sql)
    }

    /// Prepare a statement for repeated execution. `?` placeholders bind
    /// at execute time. Literal constants are parameterized out of queries,
    /// so executions that differ only in constants share one cached plan;
    /// the skip rules (LIMIT/OFFSET/VERSION, `DATE` literals, ORDER BY /
    /// GROUP BY ordinals) are documented on [`crate::plancache::normalize`].
    pub fn prepare(&mut self, sql: &str) -> Result<PreparedStatement> {
        let tokens = crate::lexer::tokenize(sql)?;
        let norm = normalize(&tokens);
        // Parse the normalized stream once: syntax errors surface at
        // prepare time, and the statement class picks the execute path.
        let (stmt, nparams) = crate::parser::parse_token_stream(norm.tokens.clone())?;
        debug_assert_eq!(nparams, norm.slots.len());
        let kind = match stmt {
            // Scalar/IN/EXISTS subqueries execute during planning, so such
            // a query cannot be planned parameter-generically; it falls
            // back to binding literals into the AST on every execute.
            Statement::Query(q) if !query_has_subqueries(&q) => PreparedKind::Query {
                tokens: norm.tokens,
                slots: norm.slots,
            },
            _ => {
                let (stmt, _) = crate::parser::parse_statement_with_params(sql)?;
                PreparedKind::Other {
                    stmt: Box::new(stmt),
                }
            }
        };
        let gauge = self.db.plan_cache.prepared_active.clone();
        gauge.fetch_add(1, Ordering::Relaxed);
        Ok(PreparedStatement {
            sql: sql.to_string(),
            kind,
            user_params: norm.user_params,
            gauge,
        })
    }

    /// Execute a prepared statement with `params` bound to its `?`
    /// placeholders. Queries go through the plan cache: steady state skips
    /// lex/parse/plan/optimize and jumps to the cached physical plan.
    pub fn execute_prepared(
        &mut self,
        prepared: &PreparedStatement,
        params: &[Value],
    ) -> Result<QueryResult> {
        if params.len() != prepared.user_params {
            return Err(SqlError::Plan(format!(
                "prepared statement expects {} parameter(s), got {}",
                prepared.user_params,
                params.len()
            )));
        }
        self.cancel_flag.store(false, Ordering::Relaxed);
        match &prepared.kind {
            PreparedKind::Query { tokens, slots } => {
                // An open user transaction bypasses the shared cache
                // entirely: a plan bound against uncommitted state must
                // not leak into (or out of) it.
                if self.txn.is_some() {
                    let (stmt, _) = crate::parser::parse_token_stream(tokens.clone())?;
                    let bound = bind_slots(slots, params)?;
                    let stmt = bind_parameters(stmt, &bound)?;
                    return self.run_in_txn(stmt, &prepared.sql);
                }
                let bound = Arc::new(bind_slots(slots, params)?);
                let key = CacheKey {
                    tokens: tokens.clone(),
                    param_types: bound.iter().map(Value::data_type).collect(),
                    predict: self.predict_strategy,
                };
                if let Some(result) = self.try_cached(&key, &bound, &prepared.sql)? {
                    return Ok(result);
                }
                let (stmt, _) = crate::parser::parse_token_stream(tokens.clone())?;
                let Statement::Query(q) = stmt else {
                    unreachable!("prepared Query kind parses back to a query");
                };
                self.plan_execute_insert(key, q, bound, &prepared.sql)
            }
            PreparedKind::Other { stmt } => {
                let stmt = bind_parameters((**stmt).clone(), params)?;
                self.execute_statement(stmt, &prepared.sql)
            }
        }
    }

    /// Cached execution of a plain `SELECT` given its raw token stream.
    fn execute_select_tokens(&mut self, tokens: Vec<Token>, sql: &str) -> Result<QueryResult> {
        self.cancel_flag.store(false, Ordering::Relaxed);
        let key = CacheKey {
            tokens,
            param_types: Vec::new(),
            predict: self.predict_strategy,
        };
        let params: Arc<Vec<Value>> = Arc::new(Vec::new());
        if let Some(result) = self.try_cached(&key, &params, sql)? {
            return Ok(result);
        }
        // Miss: parse the very tokens that keyed the lookup (never the raw
        // text — script execution reuses one text for many statements).
        let (stmt, _) = crate::parser::parse_token_stream(key.tokens.clone())?;
        match stmt {
            Statement::Query(q) => self.plan_execute_insert(key, q, params, sql),
            other => self.execute_statement(other, sql),
        }
    }

    /// Try to serve a query from the plan cache. `Ok(None)` means a miss
    /// (cold or invalidated) — the caller replans.
    fn try_cached(
        &mut self,
        key: &CacheKey,
        params: &Arc<Vec<Value>>,
        sql: &str,
    ) -> Result<Option<QueryResult>> {
        let db = self.db.clone();
        let provider = db.inference_provider();
        let epochs = (
            db.ddl_epoch.load(Ordering::Relaxed),
            db.options_epoch.load(Ordering::Relaxed),
            provider.plan_epoch(),
        );
        let catalog = db.catalog();
        let hit = db.plan_cache.lookup(key, epochs, |t| {
            catalog.table(t).ok().map(|tab| tab.current_version())
        });
        let entry = match hit {
            Ok(CacheHit::Ready(e)) => e,
            Ok(CacheHit::Rebind(e)) => {
                // Plain DML moved a table version under the plan: re-derive
                // only the physical plan (cheap — column data is
                // Arc-shared) from the cached logical plan and refresh the
                // entry in place.
                let options = self.session_options();
                let physical =
                    create_physical_plan(&e.logical, &catalog, provider.as_ref(), &options)?;
                let table_versions = e
                    .table_versions
                    .iter()
                    .map(|(t, _)| catalog.table(t).map(|tab| (t.clone(), tab.current_version())))
                    .collect::<Result<Vec<_>>>()?;
                db.plan_cache.insert(
                    key.clone(),
                    CachedPlan {
                        logical: e.logical.clone(),
                        physical,
                        tables: e.tables.clone(),
                        models: e.models.clone(),
                        table_versions,
                        ddl_epoch: e.ddl_epoch,
                        options_epoch: e.options_epoch,
                        model_epoch: e.model_epoch,
                    },
                )
            }
            Err(_) => return Ok(None),
        };
        // Per-execute ACL: a cached plan must never outlive a revocation.
        // (Revokes also bump the DDL epoch, but the check here makes the
        // property independent of epoch bookkeeping.)
        for t in &entry.tables {
            self.check_access(&catalog, &ObjectRef::table(t), Privilege::Select)?;
        }
        for m in &entry.models {
            self.check_model_executable(&catalog, m)?;
        }
        let options = self.session_options();
        let _slot = self.admit(&options)?;
        let cancel = self.statement_cancel(&options);
        self.run_physical(
            &entry.physical,
            provider,
            &options,
            cancel,
            params.clone(),
            entry.tables.clone(),
            sql,
        )
        .map(Some)
    }

    /// Cache-miss path: plan a query whose parameters stay unbound,
    /// execute it with `params`, and remember the plan under `key` unless
    /// the query is uncacheable.
    fn plan_execute_insert(
        &mut self,
        key: CacheKey,
        q: crate::ast::Query,
        params: Arc<Vec<Value>>,
        sql: &str,
    ) -> Result<QueryResult> {
        // Scalar/IN/EXISTS subqueries run at plan time; such a query can
        // neither stay parameter-generic nor be safely cached. (Prepared
        // statements filtered these out at prepare time, so params are
        // always empty here.)
        if query_has_subqueries(&q) {
            debug_assert!(params.is_empty());
            return self.run_in_txn(Statement::Query(q), sql);
        }
        // Typed parameters: wrap each `?i` in an identity CAST so type
        // derivation sees the bound type instead of a default.
        let q = annotate_param_types(q, &key.param_types)?;
        let catalog = self
            .db
            .overlay_metrics_table(self.db.catalog(), &self.user);
        let provider = self.db.inference_provider();
        let options = self.session_options();
        // Epochs are sampled BEFORE planning: if DDL commits concurrently,
        // the inserted entry is already stale and dies on first lookup.
        let epochs = (
            self.db.ddl_epoch.load(Ordering::Relaxed),
            self.db.options_epoch.load(Ordering::Relaxed),
            provider.plan_epoch(),
        );
        let cancel = self.statement_cancel(&options);
        let runner = EngineSubqueryRunner {
            catalog: &catalog,
            db: &self.db,
            user: &self.user,
            cancel: cancel.clone(),
        };
        let ctx = PlanContext::new(&catalog, provider.as_ref()).with_subqueries(&runner);
        let plan = plan_query(&q, &ctx)?;
        let (tables, models) = self.check_query_access(&catalog, &plan)?;
        let plan = self.apply_session_strategy(plan)?;
        let plan = self.db.apply_rewriters(plan, &catalog)?;
        let plan = optimize(plan, &self.db.optimizer_config())?;
        let physical = create_physical_plan(&plan, &catalog, provider.as_ref(), &options)?;

        // Record the bound version of every live (non-pinned) scan in the
        // *optimized* plan — that is what the physical plan snapshots.
        // Queries over the per-query `flock_metrics` overlay never cache.
        let mut table_versions = Vec::new();
        let mut cacheable = !tables
            .iter()
            .any(|t| t.eq_ignore_ascii_case("flock_metrics"));
        plan.visit(&mut |n| {
            if let LogicalPlan::Scan {
                table,
                version: None,
                ..
            } = n
            {
                if table.eq_ignore_ascii_case("flock_metrics") {
                    cacheable = false;
                } else {
                    match catalog.table(table) {
                        Ok(t) => table_versions.push((table.clone(), t.current_version())),
                        Err(_) => cacheable = false,
                    }
                }
            }
        });

        let slot = self.admit(&options)?;
        let result = self.run_physical(
            &physical,
            provider,
            &options,
            cancel,
            params,
            tables.clone(),
            sql,
        );
        drop(slot);
        // Insert even when execution failed (cancel/timeout/budget): the
        // plan itself is valid and the next execution should still hit.
        if cacheable {
            self.db.plan_cache.insert(
                key,
                CachedPlan {
                    logical: Arc::new(plan),
                    physical,
                    tables,
                    models,
                    table_versions,
                    ddl_epoch: epochs.0,
                    options_epoch: epochs.1,
                    model_epoch: epochs.2,
                },
            );
        }
        result
    }

    /// Shared execution tail for cached and freshly planned physical
    /// query plans: budget, eval context (with bound parameters), metered
    /// execution, metrics publication, and query logging.
    #[allow(clippy::too_many_arguments)]
    fn run_physical(
        &mut self,
        physical: &crate::exec::PhysicalPlan,
        provider: ProviderRef,
        options: &ExecOptions,
        cancel: CancelToken,
        params: Arc<Vec<Value>>,
        tables: Vec<String>,
        sql: &str,
    ) -> Result<QueryResult> {
        let budget = Arc::new(QueryBudget::limited(
            options.max_rows_budget,
            options.max_mem_bytes,
        ));
        let eval_ctx = EvalContext::new(provider, self.user.clone(), options.threads)
            .with_cancel(cancel)
            .with_budget(budget)
            .with_params(params);
        let plan_metrics = PlanMetrics::for_plan(physical);
        let started = std::time::Instant::now();
        let result = physical.execute_metered(&eval_ctx, &plan_metrics);
        let elapsed_us = started.elapsed().as_micros() as u64;
        let snapshot = plan_metrics.snapshot(physical);
        self.db.metrics.record_query(&snapshot);
        let rows_scanned = snapshot.rows_scanned();
        let parallel_ops = snapshot.parallel_ops();
        self.last_query = Some(snapshot.clone());
        *self.db.last_query.write() = Some(snapshot);
        let batch = match result {
            Ok(batch) => batch,
            Err(e) => {
                self.note_query_error(&e);
                return Err(e);
            }
        };
        let rows = batch.num_rows();
        let runtime = QueryRuntime {
            rows_scanned,
            rows_returned: rows as u64,
            elapsed_us,
            parallel_ops,
        };
        self.log_statement_runtime(sql, StatementKind::Query, tables, vec![], vec![], runtime);
        Ok(QueryResult {
            batch: Some(batch),
            rows_affected: rows,
            message: format!("{rows} row(s)"),
        })
    }

    /// Execute a whole script, statement by statement.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = crate::parser::parse_script(sql)?;
        let rendered: Vec<String> = stmts.iter().map(|_| sql.to_string()).collect();
        stmts
            .into_iter()
            .zip(rendered)
            .map(|(s, raw)| self.execute_statement(s, &raw))
            .collect()
    }

    /// Run a query and return the batch.
    pub fn query(&mut self, sql: &str) -> Result<RecordBatch> {
        self.execute(sql)?
            .batch
            .ok_or_else(|| SqlError::Execution("statement returned no rows".into()))
    }

    fn execute_statement(&mut self, stmt: Statement, sql: &str) -> Result<QueryResult> {
        // Every statement starts fresh: a cancel aimed at the previous
        // statement must not kill this one. (Commit/rollback are exempt
        // from cancellation entirely — aborting a commit mid-install is
        // exactly the partial-state hazard cancellation must avoid.)
        self.cancel_flag.store(false, Ordering::Relaxed);
        match stmt {
            Statement::Begin => self.begin(),
            Statement::Commit => self.commit(),
            Statement::Rollback => self.rollback(),
            Statement::Set { name, value } => self.run_set(&name, value),
            Statement::Explain { statement, analyze } => self.explain(*statement, analyze),
            other => self.run_in_txn(other, sql),
        }
    }

    /// `SET <var> = <value>` — session-local settings, outside any
    /// transaction (they are not transactional and never touch the WAL).
    fn run_set(&mut self, name: &str, value: Option<Expr>) -> Result<QueryResult> {
        match name.to_ascii_lowercase().as_str() {
            "statement_timeout" => {
                let ms = match value {
                    None => None, // SET statement_timeout = DEFAULT
                    Some(e) => {
                        let folded = crate::optimizer::fold_expr(e)?;
                        match folded {
                            // 0 is kept as an explicit override: it means
                            // "disabled for this session", shadowing any
                            // engine-wide ExecOptions::statement_timeout_ms.
                            Expr::Literal(Value::Int(i)) if i >= 0 => Some(i as u64),
                            other => {
                                return Err(SqlError::Plan(format!(
                                    "statement_timeout expects a non-negative integer \
                                     (milliseconds), got {other:?}"
                                )))
                            }
                        }
                    }
                };
                self.statement_timeout_ms = ms;
                Ok(QueryResult::none(match ms {
                    Some(0) => "statement_timeout = off".to_string(),
                    Some(v) => format!("statement_timeout = {v}ms"),
                    None => "statement_timeout = default".to_string(),
                }))
            }
            "table_memory_budget" => {
                let bytes = match value {
                    None => 0, // SET table_memory_budget = DEFAULT
                    Some(e) => {
                        let folded = crate::optimizer::fold_expr(e)?;
                        match folded {
                            Expr::Literal(Value::Int(i)) if i >= 0 => i as u64,
                            other => {
                                return Err(SqlError::Plan(format!(
                                    "table_memory_budget expects a non-negative integer \
                                     (bytes), got {other:?}"
                                )))
                            }
                        }
                    }
                };
                // Engine-wide, not session-local: offload happens at
                // commit, which serves every session.
                self.db.set_table_memory_budget(bytes);
                Ok(QueryResult::none(if bytes == 0 {
                    "table_memory_budget = off".to_string()
                } else {
                    format!("table_memory_budget = {bytes} bytes")
                }))
            }
            "stream_tick_ms" => {
                let ms = match value {
                    None => 25, // SET stream_tick_ms = DEFAULT
                    Some(e) => {
                        let folded = crate::optimizer::fold_expr(e)?;
                        match folded {
                            Expr::Literal(Value::Int(i)) if i > 0 => i as u64,
                            other => {
                                return Err(SqlError::Plan(format!(
                                    "stream_tick_ms expects a positive integer \
                                     (milliseconds), got {other:?}"
                                )))
                            }
                        }
                    }
                };
                // Engine-wide: one scheduler thread serves every session.
                self.db.set_stream_tick_ms(ms);
                Ok(QueryResult::none(format!("stream_tick_ms = {ms}ms")))
            }
            "predict_strategy" => {
                let strategy = match value {
                    None => None, // SET predict_strategy = DEFAULT
                    Some(e) => {
                        let folded = crate::optimizer::fold_expr(e)?;
                        let Expr::Literal(Value::Text(s)) = folded else {
                            return Err(SqlError::Plan(format!(
                                "predict_strategy expects a string literal, got {folded:?}"
                            )));
                        };
                        match s.to_ascii_lowercase().as_str() {
                            "auto" | "default" => None,
                            "row" => Some(PredictStrategy::Row),
                            "vectorized" => Some(PredictStrategy::Vectorized),
                            "batched" => Some(PredictStrategy::Batched),
                            // Degree is resolved once at SET time from the
                            // engine-wide thread budget.
                            "parallel" => Some(PredictStrategy::Parallel(
                                self.db.exec_options().threads.max(1),
                            )),
                            other => {
                                return Err(SqlError::Plan(format!(
                                    "predict_strategy expects one of 'row' | 'vectorized' \
                                     | 'batched' | 'parallel' | 'auto', got '{other}'"
                                )))
                            }
                        }
                    }
                };
                self.predict_strategy = strategy;
                Ok(QueryResult::none(match strategy {
                    Some(PredictStrategy::Parallel(n)) => {
                        format!("predict_strategy = parallel({n})")
                    }
                    Some(s) => format!("predict_strategy = {s:?}").to_ascii_lowercase(),
                    None => "predict_strategy = default".to_string(),
                }))
            }
            other => Err(SqlError::Plan(format!(
                "unknown session variable '{other}'"
            ))),
        }
    }

    /// This session's effective [`ExecOptions`]: the engine-wide options
    /// with any `SET predict_strategy` override folded into
    /// `default_predict`, so `Auto` strategies that reach physical
    /// compilation untouched still resolve to the session's choice.
    fn session_options(&self) -> ExecOptions {
        let mut options = self.db.exec_options();
        if let Some(s) = self.predict_strategy {
            options.default_predict = s;
        }
        options
    }

    /// Apply the session `SET predict_strategy` override to a logical
    /// plan: every `PREDICT` that did not pin a strategy in SQL (i.e.
    /// still `Auto`) adopts the override. Must run *before*
    /// [`Database::apply_rewriters`] — the cross-optimizer's operator
    /// selection consumes `Auto` there, after which the override would be
    /// silently lost.
    fn apply_session_strategy(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        match self.predict_strategy {
            Some(s) => override_auto_predict(plan, s),
            None => Ok(plan),
        }
    }

    /// Cancellation token for one statement: the session's cancel flag
    /// plus the effective deadline (session `SET statement_timeout`
    /// overrides the engine-wide [`ExecOptions::statement_timeout_ms`]).
    fn statement_cancel(&self, options: &ExecOptions) -> CancelToken {
        let mut token = CancelToken::from_flag(self.cancel_flag.clone());
        let timeout_ms = self
            .statement_timeout_ms
            .unwrap_or(options.statement_timeout_ms);
        if timeout_ms > 0 {
            token = token.with_deadline(std::time::Duration::from_millis(timeout_ms));
        }
        token
    }

    /// Claim an admission slot for one query, or reject with a typed
    /// error. The RAII slot releases on every exit path, including
    /// cancellation/timeout unwinds.
    fn admit(&self, options: &ExecOptions) -> Result<AdmissionSlot> {
        self.db
            .admission
            .try_acquire(options.max_concurrent_queries)
            .ok_or_else(|| {
                self.db
                    .metrics
                    .admission_rejected
                    .fetch_add(1, Ordering::Relaxed);
                SqlError::Admission(format!(
                    "database is at max_concurrent_queries = {}",
                    options.max_concurrent_queries
                ))
            })
    }

    /// Fold a failed query's error kind into the engine counters.
    fn note_query_error(&self, e: &SqlError) {
        let m = &self.db.metrics;
        match e {
            SqlError::Cancelled(_) => m.queries_cancelled.fetch_add(1, Ordering::Relaxed),
            SqlError::Timeout(_) => m.queries_timed_out.fetch_add(1, Ordering::Relaxed),
            SqlError::Budget(_) => m.budget_rejected.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }

    // ------------------------------------------------------- transactions

    pub fn begin(&mut self) -> Result<QueryResult> {
        if self.txn.is_some() {
            return Err(SqlError::Transaction("transaction already open".into()));
        }
        let mut state = self.db.state.write();
        let id = state.next_txn;
        state.next_txn += 1;
        self.txn = Some(Txn {
            id,
            catalog: state.catalog.clone(),
            written: HashMap::new(),
            access_dirty: false,
            ddl: false,
            redo_buf: Vec::new(),
            log_buf: Vec::new(),
            audit_buf: Vec::new(),
        });
        Ok(QueryResult::none(format!("BEGIN (txn {id})")))
    }

    pub fn commit(&mut self) -> Result<QueryResult> {
        let mut txn = self
            .txn
            .take()
            .ok_or_else(|| SqlError::Transaction("no open transaction".into()))?;
        let mut guard = self.db.state.write();
        let state = &mut *guard;
        // Conflict detection: every written object must still be at its
        // base state in the committed catalog.
        for (key, base) in &txn.written {
            let current = object_state(&state.catalog, key);
            if current != *base {
                return Err(SqlError::Transaction(format!(
                    "write-write conflict on '{key}' (txn {})",
                    txn.id
                )));
            }
        }

        // Memory-budget offload rides this commit (durable databases
        // only). A part-write failure aborts the commit cleanly: nothing
        // reached the WAL and the committed catalog was never touched.
        if state.wal.is_some() {
            self.db.offload_over_budget(&mut txn)?;
        }

        // Assign log ids up front (counters are bumped only after the WAL
        // accepts the records, so a failed commit consumes nothing).
        let mut log_entries = txn.log_buf;
        let mut next_log_id = state.next_log_id;
        for e in &mut log_entries {
            e.id = next_log_id;
            next_log_id += 1;
        }
        let mut audit_entries = txn.audit_buf;
        let mut next_audit_seq = state.next_audit_seq;
        for a in &mut audit_entries {
            a.seq = next_audit_seq;
            next_audit_seq += 1;
        }

        // Write-ahead: encode and append the whole transaction before any
        // in-memory install. An I/O failure fails the commit outright —
        // memory never runs ahead of what the log accepted.
        if let Some(wal) = state.wal.as_mut() {
            let mut redo = txn.redo_buf;
            if txn.access_dirty {
                redo.push(RedoOp::AccessSet(txn.catalog.access.dump()));
            }
            let mut records = Vec::new();
            if !redo.is_empty() {
                records.push(WalRecord::Begin { txn_id: txn.id });
                for op in redo {
                    records.push(WalRecord::Op {
                        txn_id: txn.id,
                        op,
                    });
                }
                records.push(WalRecord::Commit { txn_id: txn.id });
            }
            records.extend(log_entries.iter().cloned().map(WalRecord::QueryLog));
            records.extend(audit_entries.iter().cloned().map(WalRecord::Audit));
            if !records.is_empty() {
                wal.append(&records).map_err(|e| {
                    SqlError::Io(format!("wal append failed; commit aborted: {e}"))
                })?;
            }
        }

        // Point of no return: install final states.
        for key in txn.written.keys() {
            apply_object(&mut state.catalog, &txn.catalog, key);
        }
        if txn.access_dirty {
            state.catalog.access = txn.catalog.access.clone();
        }
        state.next_log_id = next_log_id;
        state.next_audit_seq = next_audit_seq;
        state.query_log.extend(log_entries);
        state.audit_log.extend(audit_entries);

        // Committed DDL — or any grant/revoke — moves the epoch every
        // cached plan was validated against, so stale plans (including
        // ones a revoked user could still score through) die on their
        // next lookup.
        if txn.ddl || txn.access_dirty {
            self.db.ddl_epoch.fetch_add(1, Ordering::Relaxed);
        }

        // Periodic checkpoint (best-effort: a failed checkpoint leaves the
        // previous one and the log intact, so it never loses data).
        if state.wal.as_mut().is_some_and(|w| w.note_commit()) {
            let snap = snapshot_of(state);
            if let Some(wal) = &mut state.wal {
                let _ = wal.checkpoint(&snap);
            }
            sync_part_inventory(&state.catalog);
        }
        let id = txn.id;

        // Commit hooks observe the committed snapshot outside the state
        // lock (they may take their own locks — e.g. the model registry).
        let hooks = self.db.commit_hooks.read().clone();
        let hook_ctx = if hooks.is_empty() {
            None
        } else {
            let keys: Vec<String> = txn.written.keys().cloned().collect();
            Some((state.catalog.clone(), keys))
        };
        drop(guard);
        if let Some((catalog, keys)) = hook_ctx {
            for hook in &hooks {
                hook(&catalog, &keys);
            }
        }
        Ok(QueryResult::none(format!("COMMIT (txn {id})")))
    }

    pub fn rollback(&mut self) -> Result<QueryResult> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| SqlError::Transaction("no open transaction".into()))?;
        Ok(QueryResult::none(format!("ROLLBACK (txn {})", txn.id)))
    }

    /// Run one statement inside the open transaction, or autocommit.
    fn run_in_txn(&mut self, stmt: Statement, sql: &str) -> Result<QueryResult> {
        if self.txn.is_some() {
            let result = self.dispatch(stmt, sql);
            if result.is_err() {
                // statement-level failure aborts the transaction
                self.abort_txn();
            }
            return result;
        }
        self.begin()?;
        match self.dispatch(stmt, sql) {
            Ok(res) => {
                self.commit()?;
                Ok(res)
            }
            Err(e) => {
                self.abort_txn();
                Err(e)
            }
        }
    }

    /// Abort the open transaction, preserving its audit records — denied
    /// accesses and other security events must survive rollback.
    fn abort_txn(&mut self) {
        if let Some(txn) = self.txn.take() {
            let mut state = self.db.state.write();
            flush_logs(&mut state, vec![], txn.audit_buf);
        }
    }

    fn txn_mut(&mut self) -> &mut Txn {
        self.txn.as_mut().expect("transaction must be open")
    }

    // ------------------------------------------------------- dispatch

    fn dispatch(&mut self, stmt: Statement, sql: &str) -> Result<QueryResult> {
        match stmt {
            Statement::Query(q) => self.run_query(&q, sql),
            Statement::Insert {
                table,
                columns,
                source,
            } => self.run_insert(&table, columns.as_deref(), source, sql),
            Statement::Update {
                table,
                assignments,
                selection,
            } => self.run_update(&table, &assignments, selection.as_ref(), sql),
            Statement::Delete { table, selection } => {
                self.run_delete(&table, selection.as_ref(), sql)
            }
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => self.run_create_table(&name, &columns, if_not_exists, sql),
            Statement::DropTable { name, if_exists } => {
                self.run_drop_table(&name, if_exists, sql)
            }
            Statement::CreateView { name, query: _ } => {
                // store the original SQL text of the view body
                let body = sql.split_once(" AS ").map(|x| x.1)
                    .or_else(|| sql.split_once(" as ").map(|x| x.1))
                    .unwrap_or(sql)
                    .trim()
                    .trim_end_matches(';')
                    .to_string();
                let txn = self.txn_mut();
                let base = object_state(&txn.catalog, &format!("view:{}", name.to_ascii_lowercase()));
                txn.catalog.create_view(ViewDef {
                    name: name.clone(),
                    sql: body.clone(),
                })?;
                txn.redo_buf.push(RedoOp::CreateView {
                    name: name.clone(),
                    sql: body,
                });
                let key = format!("view:{}", name.to_ascii_lowercase());
                txn.written.entry(key).or_insert(base);
                txn.ddl = true;
                self.audit("CREATE VIEW", &name, "");
                Ok(QueryResult::none(format!("view '{name}' created")))
            }
            Statement::DropView { name } => {
                let txn = self.txn_mut();
                let key = format!("view:{}", name.to_ascii_lowercase());
                let base = object_state(&txn.catalog, &key);
                txn.catalog.drop_view(&name)?;
                txn.redo_buf.push(RedoOp::DropView { name: name.clone() });
                txn.written.entry(key).or_insert(base);
                txn.ddl = true;
                self.audit("DROP VIEW", &name, "");
                Ok(QueryResult::none(format!("view '{name}' dropped")))
            }
            Statement::AlterTable { name, action } => self.run_alter_table(&name, action, sql),
            Statement::ShowTables => self.show_tables(),
            Statement::Describe { name } => self.describe(&name),
            Statement::CreateUser { name } => {
                self.require_superuser("CREATE USER")?;
                let txn = self.txn_mut();
                txn.catalog.access.create_user(&name);
                txn.access_dirty = true;
                self.audit("CREATE USER", &name, "");
                Ok(QueryResult::none(format!("user '{name}' created")))
            }
            Statement::Grant {
                privileges,
                object,
                user,
            } => self.run_grant(&privileges, &object, &user, false),
            Statement::Revoke {
                privileges,
                object,
                user,
            } => self.run_grant(&privileges, &object, &user, true),
            Statement::CreateStream {
                name,
                columns,
                event_time,
                lag_ms,
                if_not_exists,
            } => self.run_create_stream(&name, &columns, &event_time, lag_ms, if_not_exists, sql),
            Statement::DropStream { name } => self.run_drop_stream(&name, sql),
            Statement::CreateContinuousQuery {
                name,
                stream,
                window,
                sink,
                query,
                when,
                hold_model,
                retrain_model,
            } => self.run_create_cq(
                &name,
                &stream,
                window,
                &sink,
                &query,
                when,
                hold_model,
                retrain_model,
                sql,
            ),
            Statement::DropContinuousQuery { name } => self.run_drop_cq(&name, sql),
            Statement::ShowStreams => self.show_streams(),
            Statement::CreateModel {
                name,
                kind,
                options,
                target,
                output,
                query,
            } => {
                let spec = TrainSpec {
                    name: name.clone(),
                    kind,
                    options,
                    target,
                    output: output
                        .unwrap_or_else(|| format!("{}_score", name.to_ascii_lowercase())),
                };
                self.run_create_model(&spec, &query, sql)
            }
            Statement::RetrainModel { name } => self.run_retrain_model(&name, sql),
            Statement::DropModel { name } => self.run_drop_model(&name, sql),
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Set { .. }
            | Statement::Explain { .. } => {
                unreachable!("handled by execute_statement")
            }
        }
    }

    fn explain(&mut self, stmt: Statement, analyze: bool) -> Result<QueryResult> {
        let Statement::Query(q) = stmt else {
            return Err(SqlError::Plan("EXPLAIN supports only queries".into()));
        };
        let catalog = self
            .db
            .overlay_metrics_table(self.working_catalog(), &self.user);
        let provider = self.db.inference_provider();
        let options = self.session_options();
        let cancel = self.statement_cancel(&options);
        let runner = EngineSubqueryRunner {
            catalog: &catalog,
            db: &self.db,
            user: &self.user,
            cancel: cancel.clone(),
        };
        let ctx = PlanContext::new(&catalog, provider.as_ref()).with_subqueries(&runner);
        let plan = plan_query(&q, &ctx)?;

        // EXPLAIN ANALYZE actually executes, so it is subject to the same
        // access control as a plain query.
        if analyze {
            self.check_query_access(&catalog, &plan)?;
        }

        let plan = self.apply_session_strategy(plan)?;
        let plan = self.db.apply_rewriters(plan, &catalog)?;
        let optimized = optimize(plan, &self.db.optimizer_config())?;
        let text = if analyze {
            let _slot = self.admit(&options)?;
            let budget = Arc::new(QueryBudget::limited(
                options.max_rows_budget,
                options.max_mem_bytes,
            ));
            let physical =
                create_physical_plan(&optimized, &catalog, provider.as_ref(), &options)?;
            let eval_ctx = EvalContext::new(provider, self.user.clone(), options.threads)
                .with_cancel(cancel)
                .with_budget(budget);
            let plan_metrics = PlanMetrics::for_plan(&physical);
            let result = physical.execute_metered(&eval_ctx, &plan_metrics);
            // Partial metrics survive a cancelled/failed run: publish the
            // snapshot before propagating the error.
            let snapshot = plan_metrics.snapshot(&physical);
            self.db.metrics.record_query(&snapshot);
            let text = snapshot.render();
            self.last_query = Some(snapshot.clone());
            *self.db.last_query.write() = Some(snapshot);
            if let Err(e) = result {
                self.note_query_error(&e);
                return Err(e);
            }
            text
        } else {
            optimized.explain()
        };
        let schema = Arc::new(Schema::from_pairs(&[("plan", crate::types::DataType::Text)]));
        let rows: Vec<Vec<Value>> = text
            .lines()
            .map(|l| vec![Value::Text(l.to_string())])
            .collect();
        Ok(QueryResult {
            batch: Some(RecordBatch::from_rows(schema, &rows)?),
            rows_affected: 0,
            message: if analyze { "EXPLAIN ANALYZE" } else { "EXPLAIN" }.into(),
        })
    }

    /// ALTER TABLE: schema evolution as a new table version. Added columns
    /// backfill NULL; dropped columns disappear from the current schema but
    /// remain visible through time-travel reads of older versions.
    fn run_alter_table(
        &mut self,
        name: &str,
        action: AlterAction,
        sql: &str,
    ) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        reject_stream_write(&catalog, name, "ALTER TABLE")?;
        self.check_access(&catalog, &ObjectRef::table(name), Privilege::Create)?;
        let table = catalog.table(name)?;
        let schema = table.schema().clone();
        let data = materialize_version(&catalog, table.current())?;

        let (new_schema, new_batch, detail) = match action {
            AlterAction::AddColumn(decl) => {
                if schema.index_of(&decl.name).is_some() {
                    return Err(SqlError::Catalog(format!(
                        "column '{}' already exists in '{name}'",
                        decl.name
                    )));
                }
                let mut cols: Vec<ColumnDef> = schema.columns().to_vec();
                cols.push(ColumnDef {
                    name: decl.name.clone(),
                    data_type: decl.data_type,
                    nullable: true,
                });
                let new_schema = Schema::new(cols);
                let mut columns = data.columns().to_vec();
                let mut fresh = ColumnVector::with_capacity(decl.data_type, data.num_rows());
                for _ in 0..data.num_rows() {
                    fresh.push_null();
                }
                columns.push(fresh);
                let batch = RecordBatch::new(Arc::new(new_schema.clone()), columns)?;
                (new_schema, batch, format!("ADD COLUMN {}", decl.name))
            }
            AlterAction::DropColumn(col) => {
                let idx = schema.index_of(&col).ok_or_else(|| {
                    SqlError::Catalog(format!("column '{col}' does not exist in '{name}'"))
                })?;
                if schema.len() == 1 {
                    return Err(SqlError::Constraint(
                        "cannot drop the last column of a table".into(),
                    ));
                }
                let keep: Vec<usize> = (0..schema.len()).filter(|&i| i != idx).collect();
                let new_schema = schema.project(&keep);
                let columns: Vec<ColumnVector> =
                    keep.iter().map(|&i| data.column(i).clone()).collect();
                let batch = RecordBatch::new(Arc::new(new_schema.clone()), columns)?;
                (new_schema, batch, format!("DROP COLUMN {col}"))
            }
        };

        let txn_id = self.txn_mut().id;
        let txn = self.txn_mut();
        let key = format!("table:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        let redo_data = new_batch.clone();
        let table = txn.catalog.table_mut(name)?;
        let redo_table = table.name().to_string();
        let version = table.evolve(new_schema, new_batch, txn_id)?;
        // The logged batch carries the evolved schema, so replay restores
        // the ALTER through the ordinary push-version path.
        txn.redo_buf.push(RedoOp::PushVersion {
            table: redo_table,
            version,
            txn_id,
            data: redo_data,
        });
        txn.written.entry(key).or_insert(base);
        txn.ddl = true;
        self.log_statement(
            sql,
            StatementKind::Ddl,
            vec![],
            vec![name.to_string()],
            vec![(name.to_string(), version)],
        );
        self.audit("ALTER TABLE", name, &detail);
        Ok(QueryResult::none(format!(
            "table '{name}' altered ({detail}); version {version}"
        )))
    }

    // -------------------------------------------------- data discovery

    /// `SHOW TABLES` — the catalog's discovery surface (paper §4.2:
    /// "Data Discovery support is virtually non-existent" in file-based
    /// workflows; a managed catalog fixes that).
    fn show_tables(&mut self) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        let schema = Arc::new(Schema::from_pairs(&[
            ("name", crate::types::DataType::Text),
            ("columns", crate::types::DataType::Int),
            ("rows", crate::types::DataType::Int),
            ("version", crate::types::DataType::Int),
        ]));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for name in catalog.table_names() {
            // only list tables this user may read
            if catalog
                .access
                .check(&self.user, &ObjectRef::table(&name), Privilege::Select)
                .is_err()
            {
                continue;
            }
            let t = catalog.table(&name)?;
            rows.push(vec![
                Value::Text(name.clone()),
                Value::Int(t.schema().len() as i64),
                Value::Int(t.row_count() as i64),
                Value::Int(t.current_version() as i64),
            ]);
        }
        let batch = RecordBatch::from_rows(schema, &rows)?;
        Ok(QueryResult {
            rows_affected: batch.num_rows(),
            batch: Some(batch),
            message: "SHOW TABLES".into(),
        })
    }

    /// `DESCRIBE <table>` — per-column data profile straight from the
    /// table's statistics: type, nullability, null count, distinct count,
    /// and numeric min/max.
    fn describe(&mut self, name: &str) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        self.check_access(&catalog, &ObjectRef::table(name), Privilege::Select)?;
        let table = catalog.table(name)?;
        let stats = &table.current().stats;
        let schema = Arc::new(Schema::from_pairs(&[
            ("column", crate::types::DataType::Text),
            ("type", crate::types::DataType::Text),
            ("nullable", crate::types::DataType::Bool),
            ("nulls", crate::types::DataType::Int),
            ("distinct", crate::types::DataType::Int),
            ("min", crate::types::DataType::Float),
            ("max", crate::types::DataType::Float),
        ]));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (i, col) in table.schema().columns().iter().enumerate() {
            let cs = &stats.columns[i];
            rows.push(vec![
                Value::Text(col.name.clone()),
                Value::Text(col.data_type.to_string()),
                Value::Bool(col.nullable),
                Value::Int(cs.null_count as i64),
                Value::Int(cs.distinct_count as i64),
                cs.min.map(Value::Float).unwrap_or(Value::Null),
                cs.max.map(Value::Float).unwrap_or(Value::Null),
            ]);
        }
        let batch = RecordBatch::from_rows(schema, &rows)?;
        Ok(QueryResult {
            rows_affected: batch.num_rows(),
            batch: Some(batch),
            message: format!("DESCRIBE {name}"),
        })
    }

    // ------------------------------------------------------- queries

    fn working_catalog(&self) -> Catalog {
        match &self.txn {
            Some(t) => t.catalog.clone(),
            None => self.db.catalog(),
        }
    }

    /// Access control runs on the *pre-rewrite* plan: SELECT on every
    /// scanned table, EXECUTE on every referenced model. Rewriters may
    /// inline a model away, but inlining must not bypass its ACL.
    /// Returns the scanned table and model names — the query log wants the
    /// tables, and cached plans re-check both lists on every execute.
    fn check_query_access(
        &mut self,
        catalog: &Catalog,
        plan: &LogicalPlan,
    ) -> Result<(Vec<String>, Vec<String>)> {
        let mut tables = Vec::new();
        plan.visit(&mut |n| {
            if let LogicalPlan::Scan { table, .. } = n {
                tables.push(table.clone());
            }
        });
        for t in &tables {
            self.check_access(catalog, &ObjectRef::table(t), Privilege::Select)?;
        }
        let mut models = Vec::new();
        plan.visit_exprs(&mut |e| {
            e.walk(&mut |x| {
                if let Expr::Predict { model, .. } = x {
                    models.push(model.clone());
                }
            })
        });
        for m in &models {
            self.check_model_executable(catalog, m)?;
        }
        Ok((tables, models))
    }

    fn run_query(&mut self, q: &crate::ast::Query, sql: &str) -> Result<QueryResult> {
        let catalog = self
            .db
            .overlay_metrics_table(self.working_catalog(), &self.user);
        let provider = self.db.inference_provider();
        let options = self.session_options();
        let _slot = self.admit(&options)?;
        let cancel = self.statement_cancel(&options);
        let budget = Arc::new(QueryBudget::limited(
            options.max_rows_budget,
            options.max_mem_bytes,
        ));
        let runner = EngineSubqueryRunner {
            catalog: &catalog,
            db: &self.db,
            user: &self.user,
            cancel: cancel.clone(),
        };
        let ctx = PlanContext::new(&catalog, provider.as_ref()).with_subqueries(&runner);
        let plan = plan_query(q, &ctx)?;

        let (tables, _models) = self.check_query_access(&catalog, &plan)?;

        let plan = self.apply_session_strategy(plan)?;
        let plan = self.db.apply_rewriters(plan, &catalog)?;
        let plan = optimize(plan, &self.db.optimizer_config())?;

        let physical = create_physical_plan(&plan, &catalog, provider.as_ref(), &options)?;
        let eval_ctx = EvalContext::new(provider, self.user.clone(), options.threads)
            .with_cancel(cancel)
            .with_budget(budget);
        let plan_metrics = PlanMetrics::for_plan(&physical);
        let started = std::time::Instant::now();
        let result = physical.execute_metered(&eval_ctx, &plan_metrics);
        let elapsed_us = started.elapsed().as_micros() as u64;
        // Snapshot unconditionally: a cancelled / timed-out / over-budget
        // query still publishes the partial counters it accumulated.
        let snapshot = plan_metrics.snapshot(&physical);
        self.db.metrics.record_query(&snapshot);
        let rows_scanned = snapshot.rows_scanned();
        let parallel_ops = snapshot.parallel_ops();
        self.last_query = Some(snapshot.clone());
        *self.db.last_query.write() = Some(snapshot);
        let batch = match result {
            Ok(batch) => batch,
            Err(e) => {
                self.note_query_error(&e);
                return Err(e);
            }
        };
        let rows = batch.num_rows();
        let runtime = QueryRuntime {
            rows_scanned,
            rows_returned: rows as u64,
            elapsed_us,
            parallel_ops,
        };
        self.log_statement_runtime(sql, StatementKind::Query, tables, vec![], vec![], runtime);
        Ok(QueryResult {
            batch: Some(batch),
            rows_affected: rows,
            message: format!("{rows} row(s)"),
        })
    }

    // ------------------------------------------------------- DML

    fn run_insert(
        &mut self,
        table_name: &str,
        columns: Option<&[String]>,
        source: InsertSource,
        sql: &str,
    ) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        self.check_access(&catalog, &ObjectRef::table(table_name), Privilege::Insert)?;
        let table = catalog.table(table_name)?;
        let schema = table.schema().clone();

        // Map provided columns to schema positions.
        let positions: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| SqlError::Plan(format!("unknown column '{c}'")))
                })
                .collect::<Result<_>>()?,
            None => (0..schema.len()).collect(),
        };

        let incoming: Vec<Vec<Value>> = match source {
            InsertSource::Values(rows) => {
                let provider = self.db.inference_provider();
                let empty = RecordBatch::empty(Arc::new(Schema::default()));
                let eval_ctx =
                    EvalContext::new(provider.clone(), self.user.clone(), 1)
                        .with_cancel(self.statement_cancel(&self.db.exec_options()));
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if row.len() != positions.len() {
                        return Err(SqlError::Constraint(format!(
                            "INSERT row has {} values, expected {}",
                            row.len(),
                            positions.len()
                        )));
                    }
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let folded = crate::optimizer::fold_expr(e)?;
                        let compiled =
                            PhysExpr::compile(&folded, &Schema::default(), provider.as_ref())?;
                        vals.push(compiled.eval_row(&empty, 0, &eval_ctx)?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Query(q) => {
                let res = self.run_query(&q, sql)?;
                let batch = res.batch.expect("query returns batch");
                if batch.num_columns() != positions.len() {
                    return Err(SqlError::Constraint(format!(
                        "INSERT source has {} columns, expected {}",
                        batch.num_columns(),
                        positions.len()
                    )));
                }
                (0..batch.num_rows()).map(|i| batch.row(i)).collect()
            }
        };

        // Build the appended rows as their own batch (the WAL logs just
        // this delta), then append it to the current snapshot.
        let n_inserted = incoming.len();
        let mut delta_cols: Vec<ColumnVector> = schema
            .columns()
            .iter()
            .map(|c| ColumnVector::with_capacity(c.data_type, n_inserted))
            .collect();
        for row in &incoming {
            for (ci, col) in delta_cols.iter_mut().enumerate() {
                let val = positions
                    .iter()
                    .position(|&p| p == ci)
                    .map(|slot| row[slot].clone())
                    .unwrap_or(Value::Null);
                if val.is_null() && !schema.column(ci).nullable {
                    return Err(SqlError::Constraint(format!(
                        "column '{}' is NOT NULL",
                        schema.column(ci).name
                    )));
                }
                col.push(val)?;
            }
        }
        let delta = RecordBatch::new(schema.clone(), delta_cols)?;
        let current = &catalog.table(table_name)?.current().data;
        let mut new_cols: Vec<ColumnVector> = current.columns().to_vec();
        for (dst, src) in new_cols.iter_mut().zip(delta.columns()) {
            dst.append(src)?;
        }
        let new_batch = RecordBatch::new(schema, new_cols)?;
        let version = self.install_table_version(table_name, new_batch, Some(delta))?;
        self.log_statement(
            sql,
            StatementKind::Insert,
            vec![],
            vec![table_name.to_string()],
            vec![(table_name.to_string(), version)],
        );
        self.audit("INSERT", table_name, &format!("{n_inserted} row(s)"));
        if catalog.has_extension(STREAM_KIND, table_name) {
            self.trim_stream_history(table_name)?;
        }
        Ok(QueryResult::affected(
            n_inserted,
            format!("{n_inserted} row(s) inserted"),
        ))
    }

    fn run_update(
        &mut self,
        table_name: &str,
        assignments: &[(String, Expr)],
        selection: Option<&Expr>,
        sql: &str,
    ) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        reject_stream_write(&catalog, table_name, "UPDATE")?;
        self.check_access(&catalog, &ObjectRef::table(table_name), Privilege::Update)?;
        let table = catalog.table(table_name)?;
        let schema = table.schema().clone();
        let data = materialize_version(&catalog, table.current())?;
        let provider = self.db.inference_provider();
        let eval_ctx = EvalContext::new(provider.clone(), self.user.clone(), 1)
            .with_cancel(self.statement_cancel(&self.db.exec_options()));

        let pred = selection
            .map(|p| PhysExpr::compile(p, &schema, provider.as_ref()))
            .transpose()?;
        let compiled: Vec<(usize, PhysExpr)> = assignments
            .iter()
            .map(|(col, e)| {
                let idx = schema
                    .index_of(col)
                    .ok_or_else(|| SqlError::Plan(format!("unknown column '{col}'")))?;
                Ok((idx, PhysExpr::compile(e, &schema, provider.as_ref())?))
            })
            .collect::<Result<_>>()?;

        let mut rows: Vec<Vec<Value>> = (0..data.num_rows()).map(|i| data.row(i)).collect();
        let mut updated = 0usize;
        for (i, row) in rows.iter_mut().enumerate() {
            let hit = match &pred {
                Some(p) => p.eval_row(&data, i, &eval_ctx)?.as_bool() == Some(true),
                None => true,
            };
            if !hit {
                continue;
            }
            updated += 1;
            for (idx, e) in &compiled {
                let v = e.eval_row(&data, i, &eval_ctx)?;
                if v.is_null() && !schema.column(*idx).nullable {
                    return Err(SqlError::Constraint(format!(
                        "column '{}' is NOT NULL",
                        schema.column(*idx).name
                    )));
                }
                row[*idx] = v;
            }
        }
        let new_batch = RecordBatch::from_rows(schema, &rows)?;
        let version = self.install_table_version(table_name, new_batch, None)?;
        self.log_statement(
            sql,
            StatementKind::Update,
            vec![table_name.to_string()],
            vec![table_name.to_string()],
            vec![(table_name.to_string(), version)],
        );
        self.audit("UPDATE", table_name, &format!("{updated} row(s)"));
        Ok(QueryResult::affected(
            updated,
            format!("{updated} row(s) updated"),
        ))
    }

    fn run_delete(
        &mut self,
        table_name: &str,
        selection: Option<&Expr>,
        sql: &str,
    ) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        reject_stream_write(&catalog, table_name, "DELETE")?;
        self.check_access(&catalog, &ObjectRef::table(table_name), Privilege::Delete)?;
        let table = catalog.table(table_name)?;
        let schema = table.schema().clone();
        let data = materialize_version(&catalog, table.current())?;
        let provider = self.db.inference_provider();
        let eval_ctx = EvalContext::new(provider.clone(), self.user.clone(), 1)
            .with_cancel(self.statement_cancel(&self.db.exec_options()));
        let mask: Vec<bool> = match selection {
            Some(p) => {
                let compiled = PhysExpr::compile(p, &schema, provider.as_ref())?;
                let col = compiled.eval(&data, &eval_ctx)?;
                (0..data.num_rows())
                    .map(|i| col.get(i).as_bool() != Some(true))
                    .collect()
            }
            None => vec![false; data.num_rows()],
        };
        let deleted = mask.iter().filter(|k| !**k).count();
        let new_batch = data.filter(&mask)?;
        let version = self.install_table_version(table_name, new_batch, None)?;
        self.log_statement(
            sql,
            StatementKind::Delete,
            vec![table_name.to_string()],
            vec![table_name.to_string()],
            vec![(table_name.to_string(), version)],
        );
        self.audit("DELETE", table_name, &format!("{deleted} row(s)"));
        Ok(QueryResult::affected(
            deleted,
            format!("{deleted} row(s) deleted"),
        ))
    }

    // ------------------------------------------------------- DDL

    fn run_create_table(
        &mut self,
        name: &str,
        columns: &[crate::ast::ColumnDecl],
        if_not_exists: bool,
        sql: &str,
    ) -> Result<QueryResult> {
        let txn_id = self.txn_mut().id;
        {
            let txn = self.txn_mut();
            if txn.catalog.has_table(name) {
                if if_not_exists {
                    return Ok(QueryResult::none(format!("table '{name}' already exists")));
                }
                return Err(SqlError::Catalog(format!("table '{name}' already exists")));
            }
            let key = format!("table:{}", name.to_ascii_lowercase());
            let base = object_state(&txn.catalog, &key);
            let schema = Schema::new(
                columns
                    .iter()
                    .map(|c| ColumnDef {
                        name: c.name.clone(),
                        data_type: c.data_type,
                        nullable: c.nullable,
                    })
                    .collect(),
            );
            let table = Table::new(name, schema.clone(), txn_id)?;
            txn.catalog.create_table(table)?;
            txn.redo_buf.push(RedoOp::CreateTable {
                name: name.to_string(),
                schema,
                txn_id,
            });
            txn.written.entry(key).or_insert(base);
            txn.ddl = true;
            // creator gets full rights on the new table
            let user = self.user.clone();
            let txn = self.txn_mut();
            txn.catalog
                .access
                .grant(&user, ObjectRef::table(name), &Privilege::ALL);
            txn.access_dirty = true;
        }
        self.log_statement(sql, StatementKind::Ddl, vec![], vec![name.to_string()], vec![]);
        self.audit("CREATE TABLE", name, "");
        Ok(QueryResult::none(format!("table '{name}' created")))
    }

    fn run_drop_table(
        &mut self,
        name: &str,
        if_exists: bool,
        sql: &str,
    ) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        if catalog.has_extension(STREAM_KIND, name) {
            return Err(SqlError::Constraint(format!(
                "'{name}' is a stream; use DROP STREAM {name}"
            )));
        }
        if !catalog.has_table(name) {
            if if_exists {
                return Ok(QueryResult::none(format!("table '{name}' does not exist")));
            }
            return Err(SqlError::Catalog(format!("table '{name}' does not exist")));
        }
        self.check_access(&catalog, &ObjectRef::table(name), Privilege::Drop)?;
        let txn = self.txn_mut();
        let key = format!("table:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        txn.catalog.drop_table(name)?;
        txn.redo_buf.push(RedoOp::DropTable {
            name: name.to_string(),
        });
        txn.written.entry(key).or_insert(base);
        txn.ddl = true;
        self.log_statement(sql, StatementKind::Ddl, vec![], vec![name.to_string()], vec![]);
        self.audit("DROP TABLE", name, "");
        Ok(QueryResult::none(format!("table '{name}' dropped")))
    }

    // ------------------------------- streams and continuous queries (DDL)

    /// Create a table inside the open transaction from an already-built
    /// schema, granting the creator full rights. Shared by stream backing
    /// tables and continuous-query sink tables.
    fn create_table_from_schema_txn(&mut self, name: &str, schema: Schema) -> Result<()> {
        let txn_id = self.txn_mut().id;
        let txn = self.txn_mut();
        if txn.catalog.has_table(name) {
            return Err(SqlError::Catalog(format!("table '{name}' already exists")));
        }
        let key = format!("table:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        let table = Table::new(name, schema.clone(), txn_id)?;
        txn.catalog.create_table(table)?;
        txn.redo_buf.push(RedoOp::CreateTable {
            name: name.to_string(),
            schema,
            txn_id,
        });
        txn.written.entry(key).or_insert(base);
        txn.ddl = true;
        let user = self.user.clone();
        let txn = self.txn_mut();
        txn.catalog
            .access
            .grant(&user, ObjectRef::table(name), &Privilege::ALL);
        txn.access_dirty = true;
        Ok(())
    }

    /// `CREATE STREAM name (cols...) WATERMARK (col, lag_ms)`: an
    /// append-only table plus a stream extension object carrying the
    /// event-time column and watermark lag. Both are WAL-durable through
    /// the existing redo records — no new log format.
    #[allow(clippy::too_many_arguments)]
    fn run_create_stream(
        &mut self,
        name: &str,
        columns: &[ColumnDecl],
        event_time: &str,
        lag_ms: i64,
        if_not_exists: bool,
        sql: &str,
    ) -> Result<QueryResult> {
        {
            let txn = self.txn_mut();
            if txn.catalog.has_table(name) || txn.catalog.has_extension(STREAM_KIND, name) {
                if if_not_exists && txn.catalog.has_extension(STREAM_KIND, name) {
                    return Ok(QueryResult::none(format!("stream '{name}' already exists")));
                }
                return Err(SqlError::Catalog(format!(
                    "stream or table '{name}' already exists"
                )));
            }
        }
        let et = columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(event_time))
            .ok_or_else(|| {
                SqlError::Catalog(format!(
                    "watermark column '{event_time}' is not a column of stream '{name}'"
                ))
            })?;
        if et.data_type != crate::types::DataType::Int {
            return Err(SqlError::Constraint(format!(
                "watermark column '{event_time}' must be INT (event-time milliseconds)"
            )));
        }
        let schema = Schema::new(
            columns
                .iter()
                .map(|c| ColumnDef {
                    name: c.name.clone(),
                    data_type: c.data_type,
                    nullable: c.nullable,
                })
                .collect(),
        );
        self.create_table_from_schema_txn(name, schema)?;
        let spec = StreamSpec {
            event_time: et.name.clone(),
            lag_ms,
        };
        self.create_extension_txn(STREAM_KIND, name, Vec::new(), spec.to_metadata())?;
        self.log_statement(sql, StatementKind::Ddl, vec![], vec![name.to_string()], vec![]);
        Ok(QueryResult::none(format!("stream '{name}' created")))
    }

    fn run_drop_stream(&mut self, name: &str, sql: &str) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        if !catalog.has_extension(STREAM_KIND, name) {
            return Err(SqlError::Catalog(format!("stream '{name}' does not exist")));
        }
        for cq in catalog.extensions_of_kind(CQ_KIND) {
            let spec = CqSpec::from_metadata(&cq.current().metadata)?;
            if spec.stream.eq_ignore_ascii_case(name) {
                return Err(SqlError::Constraint(format!(
                    "stream '{name}' is read by continuous query '{}'; drop that first",
                    cq.name
                )));
            }
        }
        self.check_access(&catalog, &ObjectRef::table(name), Privilege::Drop)?;
        self.drop_extension_txn(STREAM_KIND, name)?;
        let txn = self.txn_mut();
        let key = format!("table:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        txn.catalog.drop_table(name)?;
        txn.redo_buf.push(RedoOp::DropTable {
            name: name.to_string(),
        });
        txn.written.entry(key).or_insert(base);
        txn.ddl = true;
        self.log_statement(sql, StatementKind::Ddl, vec![], vec![name.to_string()], vec![]);
        self.audit("DROP STREAM", name, "");
        Ok(QueryResult::none(format!("stream '{name}' dropped")))
    }

    /// `CREATE CONTINUOUS QUERY`: validates and compiles the whole
    /// pipeline up front (window shape, query plan, PREDICT models, WHEN
    /// predicate), creates the sink table from the compiled output schema,
    /// and registers the CQ as an extension object the scheduler picks up
    /// on its next tick.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn run_create_cq(
        &mut self,
        name: &str,
        stream: &str,
        window: WindowSpec,
        sink: &str,
        query: &crate::ast::Query,
        when: Option<Expr>,
        hold_model: Option<String>,
        retrain_model: Option<String>,
        sql: &str,
    ) -> Result<QueryResult> {
        crate::stream::validate_window(&window)?;
        let catalog = self.working_catalog();
        if catalog.has_extension(CQ_KIND, name) {
            return Err(SqlError::Catalog(format!(
                "continuous query '{name}' already exists"
            )));
        }
        if !catalog.has_extension(STREAM_KIND, stream) {
            return Err(SqlError::Catalog(format!("stream '{stream}' does not exist")));
        }
        if catalog.has_table(sink) {
            return Err(SqlError::Catalog(format!(
                "sink table '{sink}' already exists"
            )));
        }
        self.check_access(&catalog, &ObjectRef::table(stream), Privilege::Select)?;
        // Both policy actions mutate the target model (hold flips its
        // metadata, retrain deploys a new version); the creator must hold
        // that right up front.
        for m in hold_model.iter().chain(retrain_model.iter()) {
            if !catalog.has_extension("model", m) {
                return Err(SqlError::Catalog(format!("model '{m}' does not exist")));
            }
            self.check_access(&catalog, &ObjectRef::extension(m), Privilege::Update)?;
        }
        let spec = CqSpec {
            stream: stream.to_string(),
            window,
            sink: sink.to_string(),
            query_sql: query.to_string(),
            when_sql: when.as_ref().map(|e| e.to_string()),
            hold_model,
            retrain_model,
            next_emit_ms: None,
        };
        let provider = self.db.inference_provider();
        let compiled = crate::stream::compile_cq(&spec, &catalog, provider.as_ref())?;
        for m in &compiled.predict_models {
            self.check_access(&catalog, &ObjectRef::extension(m), Privilege::Execute)?;
        }
        self.create_table_from_schema_txn(sink, compiled.sink_schema.clone())?;
        self.create_extension_txn(CQ_KIND, name, Vec::new(), spec.to_metadata())?;
        self.log_statement(
            sql,
            StatementKind::Ddl,
            vec![stream.to_string()],
            vec![name.to_string(), sink.to_string()],
            vec![],
        );
        Ok(QueryResult::none(format!(
            "continuous query '{name}' created (sink '{sink}')"
        )))
    }

    /// Drop a continuous query. Its sink table survives as ordinary
    /// queryable data.
    fn run_drop_cq(&mut self, name: &str, sql: &str) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        if !catalog.has_extension(CQ_KIND, name) {
            return Err(SqlError::Catalog(format!(
                "continuous query '{name}' does not exist"
            )));
        }
        self.drop_extension_txn(CQ_KIND, name)?;
        self.log_statement(sql, StatementKind::Ddl, vec![], vec![name.to_string()], vec![]);
        Ok(QueryResult::none(format!(
            "continuous query '{name}' dropped; sink table retained"
        )))
    }

    // ------------------------------------------------------- models

    /// Run a training query and report, alongside the materialized batch,
    /// the exact committed version of every table it scanned — the
    /// provenance pins recorded in the model's lineage. Time-travel scans
    /// pin the version they read; everything else pins the version current
    /// in this transaction's snapshot.
    fn run_training_query(
        &mut self,
        q: &crate::ast::Query,
    ) -> Result<(RecordBatch, Vec<(String, u64)>)> {
        let working = self.working_catalog();
        let catalog = self.db.overlay_metrics_table(working.clone(), &self.user);
        let provider = self.db.inference_provider();
        let options = self.session_options();
        let _slot = self.admit(&options)?;
        let cancel = self.statement_cancel(&options);
        let budget = Arc::new(QueryBudget::limited(
            options.max_rows_budget,
            options.max_mem_bytes,
        ));
        let runner = EngineSubqueryRunner {
            catalog: &catalog,
            db: &self.db,
            user: &self.user,
            cancel: cancel.clone(),
        };
        let ctx = PlanContext::new(&catalog, provider.as_ref()).with_subqueries(&runner);
        let plan = plan_query(q, &ctx)?;
        self.check_query_access(&catalog, &plan)?;

        let mut pins: Vec<(String, u64)> = Vec::new();
        plan.visit(&mut |n| {
            if let LogicalPlan::Scan { table, version, .. } = n {
                // virtual overlays (flock_metrics) have no catalog version
                if let Ok(t) = working.table(table) {
                    let v = version.unwrap_or_else(|| t.current_version());
                    pins.push((table.to_ascii_lowercase(), v));
                }
            }
        });
        pins.sort();
        pins.dedup();

        let plan = self.apply_session_strategy(plan)?;
        let plan = self.db.apply_rewriters(plan, &catalog)?;
        let plan = optimize(plan, &self.db.optimizer_config())?;
        let physical = create_physical_plan(&plan, &catalog, provider.as_ref(), &options)?;
        let eval_ctx = EvalContext::new(provider, self.user.clone(), options.threads)
            .with_cancel(cancel)
            .with_budget(budget);
        let plan_metrics = PlanMetrics::for_plan(&physical);
        let batch = physical.execute_metered(&eval_ctx, &plan_metrics)?;
        Ok((batch, pins))
    }

    fn run_create_model(
        &mut self,
        spec: &TrainSpec,
        query: &crate::ast::Query,
        sql: &str,
    ) -> Result<QueryResult> {
        let name = spec.name.as_str();
        let kind = spec.kind.as_str();
        let catalog = self.working_catalog();
        if catalog.has_extension("model", name) {
            return Err(SqlError::Catalog(format!("model '{name}' already exists")));
        }
        let (batch, pins) = self.run_training_query(query)?;
        let artifact = self.db.model_trainer().train(spec, &batch)?;
        let metadata = stamp_lineage(artifact.metadata, sql, &pins, &self.user)?;
        self.create_extension_txn("model", name, artifact.payload, metadata)?;
        self.audit(
            "MODEL TRAIN",
            name,
            &format!(
                "kind {kind}; {} train / {} eval rows",
                artifact.train_rows, artifact.eval_rows
            ),
        );
        let tables_read = pins.iter().map(|(t, _)| t.clone()).collect();
        self.log_statement(sql, StatementKind::Ddl, tables_read, vec![name.to_string()], vec![]);
        Ok(QueryResult::none(format!(
            "model '{name}' trained ({} train rows, {} held-out eval rows) and deployed",
            artifact.train_rows, artifact.eval_rows
        )))
    }

    fn run_retrain_model(&mut self, name: &str, sql: &str) -> Result<QueryResult> {
        let (train_rows, eval_rows, v) = self.retrain_model_txn(name, "manual RETRAIN MODEL")?;
        self.log_statement(sql, StatementKind::Ddl, vec![], vec![name.to_string()], vec![]);
        Ok(QueryResult::none(format!(
            "model '{name}' retrained to v{v} ({train_rows} train rows, {eval_rows} held-out eval rows)"
        )))
    }

    /// Re-run a model's recorded training statement against current data
    /// and deploy the result as a new version, inside the open
    /// transaction. The policy machinery fires this from `WHEN ... THEN
    /// RETRAIN MODEL m`, transactionally with the window emission.
    fn retrain_model_txn(&mut self, name: &str, trigger: &str) -> Result<(usize, usize, u64)> {
        let catalog = self.working_catalog();
        let recorded = catalog
            .extension("model", name)?
            .current()
            .metadata
            .get("lineage")
            .and_then(|l| l.get("training_query"))
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| {
                SqlError::Plan(format!(
                    "model '{name}' has no recorded training statement to re-run"
                ))
            })?;
        self.check_access(&catalog, &ObjectRef::extension(name), Privilege::Update)?;
        let stmt = crate::parser::parse_statement(&recorded)?;
        let Statement::CreateModel {
            kind,
            options,
            target,
            output,
            query,
            ..
        } = stmt
        else {
            return Err(SqlError::Plan(format!(
                "recorded training statement for '{name}' is not a CREATE MODEL statement"
            )));
        };
        let (batch, pins) = self.run_training_query(&query)?;
        let spec = TrainSpec {
            name: name.to_string(),
            kind: kind.clone(),
            options,
            target,
            output: output.unwrap_or_else(|| format!("{}_score", name.to_ascii_lowercase())),
        };
        let artifact = self.db.model_trainer().train(&spec, &batch)?;
        let user = self.user.clone();
        let metadata = stamp_lineage(artifact.metadata, &recorded, &pins, &user)?;
        let v = self.update_extension_txn("model", name, artifact.payload, metadata, true)?;
        self.audit(
            "MODEL RETRAIN",
            name,
            &format!(
                "{trigger}; v{v}, {} train / {} eval rows",
                artifact.train_rows, artifact.eval_rows
            ),
        );
        Ok((artifact.train_rows, artifact.eval_rows, v))
    }

    fn run_drop_model(&mut self, name: &str, sql: &str) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        if !catalog.has_extension("model", name) {
            return Err(SqlError::Catalog(format!("model '{name}' does not exist")));
        }
        self.drop_extension_txn("model", name)?;
        self.log_statement(sql, StatementKind::Ddl, vec![], vec![name.to_string()], vec![]);
        Ok(QueryResult::none(format!("model '{name}' dropped")))
    }

    fn show_streams(&mut self) -> Result<QueryResult> {
        let catalog = self.working_catalog();
        let schema = Arc::new(Schema::from_pairs(&[
            ("name", crate::types::DataType::Text),
            ("event_time", crate::types::DataType::Text),
            ("lag_ms", crate::types::DataType::Int),
            ("rows", crate::types::DataType::Int),
            ("continuous_queries", crate::types::DataType::Int),
        ]));
        let mut streams = catalog.extensions_of_kind(STREAM_KIND);
        streams.sort_by(|a, b| a.name.cmp(&b.name));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for s in streams {
            // only list streams this user may read
            if catalog
                .access
                .check(&self.user, &ObjectRef::table(&s.name), Privilege::Select)
                .is_err()
            {
                continue;
            }
            let spec = StreamSpec::from_metadata(&s.current().metadata)?;
            let t = catalog.table(&s.name)?;
            let cqs = catalog
                .extensions_of_kind(CQ_KIND)
                .into_iter()
                .filter(|c| {
                    CqSpec::from_metadata(&c.current().metadata)
                        .map(|cs| cs.stream.eq_ignore_ascii_case(&s.name))
                        .unwrap_or(false)
                })
                .count();
            rows.push(vec![
                Value::Text(s.name.clone()),
                Value::Text(spec.event_time),
                Value::Int(spec.lag_ms),
                Value::Int(t.row_count() as i64),
                Value::Int(cqs as i64),
            ]);
        }
        let batch = RecordBatch::from_rows(schema, &rows)?;
        Ok(QueryResult {
            rows_affected: batch.num_rows(),
            batch: Some(batch),
            message: "SHOW STREAMS".into(),
        })
    }

    fn run_grant(
        &mut self,
        privileges: &[Privilege],
        object: &GrantObject,
        user: &str,
        revoke: bool,
    ) -> Result<QueryResult> {
        let obj_ref = match object {
            GrantObject::Table(t) => ObjectRef::table(t),
            GrantObject::Model(m) => ObjectRef::extension(m),
        };
        // Granting requires GRANT privilege on the object (or superuser).
        let catalog = self.working_catalog();
        self.check_access(&catalog, &obj_ref, Privilege::Grant)?;
        let txn = self.txn_mut();
        if revoke {
            txn.catalog.access.revoke(user, &obj_ref, privileges);
        } else {
            txn.catalog.access.grant(user, obj_ref.clone(), privileges);
        }
        txn.access_dirty = true;
        let verb = if revoke { "REVOKE" } else { "GRANT" };
        self.audit(verb, &obj_ref.name.clone(), &format!("{privileges:?} {user}"));
        Ok(QueryResult::none(format!("{verb} applied")))
    }

    /// Bulk-append a prepared batch to a table (the fast-load path used by
    /// benchmarks and ETL). Columns are matched by position and must have
    /// the table's types; constraint checks still apply.
    pub fn append_batch(&mut self, table_name: &str, batch: RecordBatch) -> Result<u64> {
        self.with_autocommit(|s| s.append_batch_txn(table_name, batch))
    }

    /// [`Session::append_batch`] body, runnable inside an open transaction
    /// so continuous queries can bundle a sink append with their cursor
    /// advance and policy actions.
    fn append_batch_txn(&mut self, table_name: &str, batch: RecordBatch) -> Result<u64> {
        let catalog = self.working_catalog();
        self.check_access(&catalog, &ObjectRef::table(table_name), Privilege::Insert)?;
        let table = catalog.table(table_name)?;
        let schema = table.schema().clone();
        if batch.num_columns() != schema.len() {
            return Err(SqlError::Constraint(format!(
                "batch has {} columns, table '{}' has {}",
                batch.num_columns(),
                table_name,
                schema.len()
            )));
        }
        for (i, col) in batch.columns().iter().enumerate() {
            let expected = schema.column(i).data_type;
            if col.data_type() != expected {
                return Err(SqlError::Constraint(format!(
                    "column {i} has type {} but table expects {expected}",
                    col.data_type()
                )));
            }
            if !schema.column(i).nullable && col.null_count() > 0 {
                return Err(SqlError::Constraint(format!(
                    "column '{}' is NOT NULL",
                    schema.column(i).name
                )));
            }
        }
        let mut cols = table.current().data.columns().to_vec();
        for (dst, src) in cols.iter_mut().zip(batch.columns()) {
            dst.append(src)?;
        }
        let rows = batch.num_rows();
        let delta = RecordBatch::new(schema.clone(), batch.columns().to_vec())?;
        let new_batch = RecordBatch::new(schema, cols)?;
        let version = self.install_table_version(table_name, new_batch, Some(delta))?;
        self.log_statement(
            &format!("BULK INSERT INTO {table_name} ({rows} rows)"),
            StatementKind::Insert,
            vec![],
            vec![table_name.to_string()],
            vec![(table_name.to_string(), version)],
        );
        self.audit("BULK INSERT", table_name, &format!("{rows} row(s)"));
        if catalog.has_extension(STREAM_KIND, table_name) {
            self.trim_stream_history(table_name)?;
        }
        Ok(version)
    }

    /// Streams forgo time travel: keep only the newest version so the
    /// append-only log doesn't accrete per-append snapshot history.
    fn trim_stream_history(&mut self, name: &str) -> Result<()> {
        let txn = self.txn_mut();
        let key = format!("table:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        let table = txn.catalog.table_mut(name)?;
        let redo_table = table.name().to_string();
        let dropped = table.truncate_history_pinned(1, &[])?;
        if !dropped.is_empty() {
            txn.redo_buf.push(RedoOp::TruncateHistory {
                table: redo_table,
                keep: 1,
            });
            txn.written.entry(key).or_insert(base);
        }
        Ok(())
    }

    // ------------------------------------------- extension objects (models)

    /// Create a versioned extension object (e.g. a model). Used by
    /// `flock-core` to implement CREATE MODEL.
    pub fn create_extension_object(
        &mut self,
        kind: &str,
        name: &str,
        payload: Vec<u8>,
        metadata: serde_json::Value,
    ) -> Result<()> {
        self.with_autocommit(|s| s.create_extension_txn(kind, name, payload, metadata))
    }

    fn create_extension_txn(
        &mut self,
        kind: &str,
        name: &str,
        payload: Vec<u8>,
        metadata: serde_json::Value,
    ) -> Result<()> {
        let user = self.user.clone();
        let txn_id = self.txn_mut().id;
        let txn = self.txn_mut();
        let key = format!("ext:{kind}:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        txn.catalog.create_extension(
            kind,
            name,
            &user,
            payload.clone(),
            metadata.clone(),
            txn_id,
        )?;
        txn.redo_buf.push(RedoOp::CreateExtension {
            kind: kind.to_string(),
            name: name.to_string(),
            owner: user.clone(),
            txn_id,
            payload,
            metadata,
        });
        txn.written.entry(key).or_insert(base);
        txn.ddl = true;
        let txn = self.txn_mut();
        txn.catalog
            .access
            .grant(&user, ObjectRef::extension(name), &Privilege::ALL);
        txn.access_dirty = true;
        self.audit(&format!("CREATE {}", kind.to_uppercase()), name, "");
        Ok(())
    }

    /// Append a new version to an extension object.
    pub fn update_extension_object(
        &mut self,
        kind: &str,
        name: &str,
        payload: Vec<u8>,
        metadata: serde_json::Value,
    ) -> Result<u64> {
        self.with_autocommit(|s| s.update_extension_txn(kind, name, payload, metadata, true))
    }

    /// `ddl: false` skips the ddl-epoch bump (and the audit entry): the
    /// continuous-query scheduler advances its durable cursor through this
    /// path every emission, and neither cached plans nor the audit trail
    /// should churn for that bookkeeping.
    fn update_extension_txn(
        &mut self,
        kind: &str,
        name: &str,
        payload: Vec<u8>,
        metadata: serde_json::Value,
        ddl: bool,
    ) -> Result<u64> {
        let catalog = self.working_catalog();
        self.check_access(&catalog, &ObjectRef::extension(name), Privilege::Update)?;
        let txn_id = self.txn_mut().id;
        let txn = self.txn_mut();
        let key = format!("ext:{kind}:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        let v = txn.catalog.update_extension(
            kind,
            name,
            payload.clone(),
            metadata.clone(),
            txn_id,
        )?;
        txn.redo_buf.push(RedoOp::UpdateExtension {
            kind: kind.to_string(),
            name: name.to_string(),
            version: v,
            txn_id,
            payload,
            metadata,
        });
        txn.written.entry(key).or_insert(base);
        if ddl {
            txn.ddl = true;
            self.audit(&format!("UPDATE {}", kind.to_uppercase()), name, &format!("v{v}"));
        }
        Ok(v)
    }

    /// Place a model on hold inside the open transaction: further PREDICT
    /// calls against it are refused until an operator clears the `hold`
    /// metadata flag. Fired by continuous-query policy breaches.
    fn hold_model_txn(&mut self, model: &str) -> Result<()> {
        let catalog = self.working_catalog();
        let cur = catalog.extension("model", model)?.current();
        let payload = cur.payload.clone();
        let mut metadata = cur.metadata.clone();
        match metadata.as_object_mut() {
            Some(m) => {
                m.insert("hold".to_string(), serde_json::Value::Bool(true));
            }
            None => {
                return Err(SqlError::Constraint(format!(
                    "model '{model}' has non-object metadata"
                )))
            }
        }
        self.update_extension_txn("model", model, payload, metadata, true)?;
        self.audit("MODEL HOLD", model, "policy breach");
        Ok(())
    }

    /// Drop an extension object.
    pub fn drop_extension_object(&mut self, kind: &str, name: &str) -> Result<()> {
        self.with_autocommit(|s| s.drop_extension_txn(kind, name))
    }

    fn drop_extension_txn(&mut self, kind: &str, name: &str) -> Result<()> {
        let catalog = self.working_catalog();
        self.check_access(&catalog, &ObjectRef::extension(name), Privilege::Drop)?;
        let txn = self.txn_mut();
        let key = format!("ext:{kind}:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        txn.catalog.drop_extension(kind, name)?;
        txn.redo_buf.push(RedoOp::DropExtension {
            kind: kind.to_string(),
            name: name.to_string(),
        });
        txn.written.entry(key).or_insert(base);
        txn.ddl = true;
        self.audit(&format!("DROP {}", kind.to_uppercase()), name, "");
        Ok(())
    }

    /// Truncate a table's version history to the newest `keep` versions.
    /// Refuses to drop any version that a deployed model's lineage pins as
    /// its training data — reproducibility ("which data trained this
    /// model?") outranks space reclamation. Returns the dropped versions.
    pub fn truncate_table_history(&mut self, name: &str, keep: usize) -> Result<Vec<u64>> {
        self.with_autocommit(|s| {
            let catalog = s.working_catalog();
            s.check_access(&catalog, &ObjectRef::table(name), Privilege::Drop)?;
            let pinned = lineage_pinned_versions(&catalog, name);
            let txn = s.txn_mut();
            let key = format!("table:{}", name.to_ascii_lowercase());
            let base = object_state(&txn.catalog, &key);
            let table = txn.catalog.table_mut(name)?;
            let redo_table = table.name().to_string();
            let dropped = table.truncate_history_pinned(keep, &pinned)?;
            if !dropped.is_empty() {
                txn.redo_buf.push(RedoOp::TruncateHistory {
                    table: redo_table,
                    keep: keep as u64,
                });
                txn.written.entry(key).or_insert(base);
                txn.ddl = true;
            }
            s.audit(
                "TRUNCATE HISTORY",
                name,
                &format!("kept {keep}, dropped {} version(s)", dropped.len()),
            );
            Ok(dropped)
        })
    }

    /// Run `f` inside the open transaction, or begin+commit around it.
    fn with_autocommit<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        if self.txn.is_some() {
            let r = f(self);
            if r.is_err() {
                self.abort_txn();
            }
            return r;
        }
        self.begin()?;
        match f(self) {
            Ok(v) => {
                self.commit()?;
                Ok(v)
            }
            Err(e) => {
                self.abort_txn();
                Err(e)
            }
        }
    }

    // ------------------------------------------------------- helpers

    /// Install a new table version inside the open transaction. When the
    /// new version is the old one plus appended rows (INSERT), callers pass
    /// the appended rows as `delta` so the WAL logs O(rows added) instead
    /// of a full snapshot; other writes log the whole new snapshot.
    fn install_table_version(
        &mut self,
        name: &str,
        batch: RecordBatch,
        delta: Option<RecordBatch>,
    ) -> Result<u64> {
        let txn_id = self.txn_mut().id;
        let txn = self.txn_mut();
        let key = format!("table:{}", name.to_ascii_lowercase());
        let base = object_state(&txn.catalog, &key);
        let table = txn.catalog.table_mut(name)?;
        let redo = match delta {
            Some(rows) => RedoOp::AppendRows {
                table: table.name().to_string(),
                version: table.current_version() + 1,
                txn_id,
                rows,
            },
            None => RedoOp::PushVersion {
                table: table.name().to_string(),
                version: table.current_version() + 1,
                txn_id,
                data: batch.clone(),
            },
        };
        // Appends carry the disk-part prefix forward (the batch is the
        // grown resident tail); full rewrites install fully resident.
        let version = match &redo {
            RedoOp::AppendRows { .. } => {
                let carried = table.current().parts.clone();
                table.push_version_with_parts(carried, batch, txn_id)?
            }
            _ => table.push_version(batch, txn_id)?,
        };
        txn.redo_buf.push(redo);
        txn.written.entry(key).or_insert(base);
        Ok(version)
    }

    fn check_access(
        &mut self,
        catalog: &Catalog,
        object: &ObjectRef,
        privilege: Privilege,
    ) -> Result<()> {
        let r = catalog.access.check(&self.user, object, privilege);
        if r.is_err() {
            self.audit(
                "ACCESS DENIED",
                &object.name.clone(),
                &format!("{privilege:?}"),
            );
        }
        r
    }

    /// A model is scoreable when the user holds Execute on it AND no
    /// policy hold is in force. Checked per-execute (not at plan time) so
    /// a hold placed by a continuous query bites immediately, including
    /// through cached plans.
    fn check_model_executable(&mut self, catalog: &Catalog, model: &str) -> Result<()> {
        self.check_access(catalog, &ObjectRef::extension(model), Privilege::Execute)?;
        if let Ok(obj) = catalog.extension("model", model) {
            let held = obj
                .current()
                .metadata
                .get("hold")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            if held {
                self.audit("HOLD BLOCKED", model, "model is on policy hold");
                return Err(SqlError::AccessDenied(format!(
                    "model '{model}' is on hold"
                )));
            }
        }
        Ok(())
    }

    fn require_superuser(&mut self, action: &str) -> Result<()> {
        if self.user.eq_ignore_ascii_case("admin") {
            Ok(())
        } else {
            Err(SqlError::AccessDenied(format!(
                "{action} requires superuser"
            )))
        }
    }

    fn audit(&mut self, action: &str, object: &str, detail: &str) {
        let record = AuditRecord {
            seq: 0, // assigned on flush
            user: self.user.clone(),
            action: action.to_string(),
            object: object.to_string(),
            detail: detail.to_string(),
            timestamp_ms: now_ms(),
        };
        match &mut self.txn {
            Some(t) => t.audit_buf.push(record),
            None => {
                let mut state = self.db.state.write();
                flush_logs(&mut state, vec![], vec![record]);
            }
        }
    }

    fn log_statement(
        &mut self,
        sql: &str,
        kind: StatementKind,
        tables_read: Vec<String>,
        tables_written: Vec<String>,
        versions_written: Vec<(String, u64)>,
    ) {
        self.log_statement_runtime(
            sql,
            kind,
            tables_read,
            tables_written,
            versions_written,
            QueryRuntime::default(),
        );
    }

    fn log_statement_runtime(
        &mut self,
        sql: &str,
        kind: StatementKind,
        tables_read: Vec<String>,
        tables_written: Vec<String>,
        versions_written: Vec<(String, u64)>,
        runtime: QueryRuntime,
    ) {
        let entry = QueryLogEntry {
            id: 0, // assigned on flush
            txn_id: self.txn.as_ref().map(|t| t.id).unwrap_or(0),
            user: self.user.clone(),
            sql: sql.to_string(),
            kind,
            tables_read,
            tables_written,
            versions_written,
            timestamp_ms: now_ms(),
            rows_scanned: runtime.rows_scanned,
            rows_returned: runtime.rows_returned,
            elapsed_us: runtime.elapsed_us,
            parallel_ops: runtime.parallel_ops,
        };
        match &mut self.txn {
            Some(t) => t.log_buf.push(entry),
            None => {
                let mut state = self.db.state.write();
                flush_logs(&mut state, vec![entry], vec![]);
            }
        }
    }
}

/// A statement prepared by [`Session::prepare`] for repeated execution.
/// Holding one keeps the `prepared_statements_active` gauge up; dropping
/// it decrements.
pub struct PreparedStatement {
    sql: String,
    kind: PreparedKind,
    user_params: usize,
    gauge: Arc<AtomicU64>,
}

impl PreparedStatement {
    /// Number of `?` placeholders to bind at execute time.
    pub fn param_count(&self) -> usize {
        self.user_params
    }

    /// The original statement text.
    pub fn sql(&self) -> &str {
        &self.sql
    }
}

impl Drop for PreparedStatement {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

enum PreparedKind {
    /// A subquery-free query: executes through the plan cache.
    Query {
        /// Normalized token stream (literals parameterized out).
        tokens: Vec<Token>,
        /// How each `?` in `tokens` is filled at execute time.
        slots: Vec<ParamSlot>,
    },
    /// Everything else (DML, DDL, subquery-bearing queries): parameters
    /// are bound into the AST on every execute.
    Other { stmt: Box<Statement> },
}

/// Whether a query contains scalar / IN / EXISTS subqueries anywhere,
/// including inside derived tables. Those execute during planning, so such
/// a query can neither stay parameter-generic nor be cached safely.
/// Rewrite every `PREDICT(...)` still carrying `PredictStrategy::Auto`
/// anywhere in `plan` to use `strategy` instead. Explicit per-statement
/// strategies (`PREDICT(... USING ...)` variants) are left untouched.
fn override_auto_predict(plan: LogicalPlan, strategy: PredictStrategy) -> Result<LogicalPlan> {
    fn over(e: Expr, s: PredictStrategy) -> Result<Expr> {
        rewrite_expr(e, &mut |e| {
            Ok(match e {
                Expr::Predict {
                    model,
                    args,
                    strategy: PredictStrategy::Auto,
                } => Expr::Predict {
                    model,
                    args,
                    strategy: s,
                },
                other => other,
            })
        })
    }
    let s = strategy;
    Ok(match plan {
        leaf @ LogicalPlan::Scan { .. } => leaf,
        LogicalPlan::Values { schema, rows } => LogicalPlan::Values {
            schema,
            rows: rows
                .into_iter()
                .map(|row| row.into_iter().map(|e| over(e, s)).collect::<Result<_>>())
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(override_auto_predict(*input, s)?),
            predicate: over(predicate, s)?,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(override_auto_predict(*input, s)?),
            exprs: exprs
                .into_iter()
                .map(|e| over(e, s))
                .collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(override_auto_predict(*input, s)?),
            group: group
                .into_iter()
                .map(|e| over(e, s))
                .collect::<Result<_>>()?,
            aggs: aggs
                .into_iter()
                .map(|a| {
                    let crate::plan::AggCall {
                        func,
                        arg,
                        distinct,
                    } = a;
                    Ok(crate::plan::AggCall {
                        func,
                        arg: arg.map(|e| over(e, s)).transpose()?,
                        distinct,
                    })
                })
                .collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(override_auto_predict(*left, s)?),
            right: Box::new(override_auto_predict(*right, s)?),
            join_type,
            on: on
                .into_iter()
                .map(|(l, r)| Ok((over(l, s)?, over(r, s)?)))
                .collect::<Result<_>>()?,
            filter: filter.map(|e| over(e, s)).transpose()?,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(override_auto_predict(*input, s)?),
            keys: keys
                .into_iter()
                .map(|(e, asc)| Ok((over(e, s)?, asc)))
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(override_auto_predict(*input, s)?),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(override_auto_predict(*input, s)?),
        },
        LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| override_auto_predict(p, s))
                .collect::<Result<_>>()?,
            schema,
        },
    })
}

fn query_has_subqueries(q: &crate::ast::Query) -> bool {
    fn expr_has(e: &Expr) -> bool {
        let mut found = false;
        e.walk(&mut |x| {
            if matches!(
                x,
                Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. }
            ) {
                found = true;
            }
        });
        found
    }
    fn table_ref_has(tr: &crate::ast::TableRef) -> bool {
        match tr {
            crate::ast::TableRef::Table { .. } => false,
            crate::ast::TableRef::Subquery { query, .. } => query_has_subqueries(query),
            crate::ast::TableRef::Join {
                left, right, on, ..
            } => {
                table_ref_has(left)
                    || table_ref_has(right)
                    || on.as_ref().is_some_and(expr_has)
            }
        }
    }
    fn select_has(sel: &crate::ast::Select) -> bool {
        sel.from.iter().any(table_ref_has)
            || sel.selection.as_ref().is_some_and(expr_has)
            || sel.having.as_ref().is_some_and(expr_has)
            || sel.group_by.iter().any(expr_has)
            || sel.projection.iter().any(|p| match p {
                crate::ast::SelectItem::Expr { expr, .. } => expr_has(expr),
                _ => false,
            })
    }
    select_has(&q.select)
        || q.order_by.iter().any(|o| expr_has(&o.expr))
        || q.unions.iter().any(|arm| select_has(&arm.select))
}

/// Wrap every `?i` whose bound value has a known type in an identity
/// `CAST`, so expression type derivation sees the parameter's runtime
/// type instead of a default. Used on the plan-cache miss path.
fn annotate_param_types(
    q: crate::ast::Query,
    types: &[Option<DataType>],
) -> Result<crate::ast::Query> {
    let mut bind = |e: Expr| -> Result<Expr> {
        rewrite_expr(e, &mut |x| match x {
            Expr::Parameter(i) => Ok(match types.get(i).copied().flatten() {
                Some(t) => Expr::Cast {
                    expr: Box::new(Expr::Parameter(i)),
                    to: t,
                },
                None => Expr::Parameter(i),
            }),
            other => Ok(other),
        })
    };
    bind_query(q, &mut bind)
}

/// Flush log/audit entries outside a commit (rollback audit records, and
/// logging done with no transaction open). Records go to the WAL first; if
/// the log rejects them they are dropped from memory too, keeping the
/// invariant that in-memory state never runs ahead of the WAL.
fn flush_logs(state: &mut DbState, log: Vec<QueryLogEntry>, audit: Vec<AuditRecord>) {
    let mut log = log;
    let mut next_log_id = state.next_log_id;
    for e in &mut log {
        e.id = next_log_id;
        next_log_id += 1;
    }
    let mut audit = audit;
    let mut next_audit_seq = state.next_audit_seq;
    for a in &mut audit {
        a.seq = next_audit_seq;
        next_audit_seq += 1;
    }
    if let Some(wal) = &mut state.wal {
        let records: Vec<WalRecord> = log
            .iter()
            .cloned()
            .map(WalRecord::QueryLog)
            .chain(audit.iter().cloned().map(WalRecord::Audit))
            .collect();
        if !records.is_empty() && wal.append(&records).is_err() {
            return;
        }
    }
    state.next_log_id = next_log_id;
    state.next_audit_seq = next_audit_seq;
    state.query_log.extend(log);
    state.audit_log.extend(audit);
}

/// Table versions pinned by extension-object lineage: every version of
/// every extension object (deployed models included) whose metadata says
/// `lineage.training_table == table` pins `lineage.training_table_version`.
/// The engine does not interpret extension payloads, but the lineage keys
/// are part of the catalog contract shared with `flock-core`.
fn lineage_pinned_versions(catalog: &Catalog, table: &str) -> Vec<u64> {
    let table = table.to_ascii_lowercase();
    let mut pinned = Vec::new();
    for obj in catalog.extensions_all() {
        for v in &obj.versions {
            let Some(lineage) = v.metadata.get("lineage") else {
                continue;
            };
            let trained_on = lineage
                .get("training_table")
                .and_then(|t| t.as_str())
                .is_some_and(|t| t.eq_ignore_ascii_case(&table));
            if trained_on {
                if let Some(pin) =
                    lineage.get("training_table_version").and_then(|v| v.as_u64())
                {
                    pinned.push(pin);
                }
            }
            // multi-table pins from `CREATE MODEL ... AS SELECT` joins:
            // `training_tables` is an array of [name, version] pairs
            if let Some(all) = lineage.get("training_tables").and_then(|t| t.as_array()) {
                for pair in all {
                    let Some(pair) = pair.as_array() else { continue };
                    let named = pair
                        .first()
                        .and_then(|n| n.as_str())
                        .is_some_and(|n| n.eq_ignore_ascii_case(&table));
                    if named {
                        if let Some(pin) = pair.get(1).and_then(|v| v.as_u64()) {
                            pinned.push(pin);
                        }
                    }
                }
            }
        }
    }
    pinned
}

/// Stamp provenance onto a trained model's metadata: the raw training
/// statement (re-run verbatim by RETRAIN), the exact committed version of
/// every scanned table, the training user, and the wall-clock timestamp.
/// The first pin doubles as `training_table`/`training_table_version` so
/// single-table lineage consumers (history truncation, provenance export)
/// keep working unchanged.
fn stamp_lineage(
    mut metadata: serde_json::Value,
    sql: &str,
    pins: &[(String, u64)],
    user: &str,
) -> Result<serde_json::Value> {
    let obj = metadata.as_object_mut().ok_or_else(|| {
        SqlError::Plan("trainer returned non-object model metadata".into())
    })?;
    let lineage = obj
        .entry("lineage".to_string())
        .or_insert_with(|| serde_json::Value::Object(serde_json::Map::new()));
    let lineage = lineage.as_object_mut().ok_or_else(|| {
        SqlError::Plan("trainer returned non-object model lineage".into())
    })?;
    let sql = sql.trim().trim_end_matches(';').to_string();
    lineage.insert("training_query".into(), serde_json::Value::String(sql));
    lineage.insert("trained_by".into(), serde_json::Value::String(user.into()));
    lineage.insert("created_ms".into(), serde_json::json!(now_ms()));
    match pins.first() {
        Some((t, v)) => {
            lineage.insert(
                "training_table".into(),
                serde_json::Value::String(t.clone()),
            );
            lineage.insert("training_table_version".into(), serde_json::Value::from(*v));
        }
        None => {
            lineage.insert("training_table".into(), serde_json::Value::Null);
            lineage.insert("training_table_version".into(), serde_json::Value::Null);
        }
    }
    let all: Vec<serde_json::Value> = pins
        .iter()
        .map(|(t, v)| {
            serde_json::Value::Array(vec![
                serde_json::Value::String(t.clone()),
                serde_json::Value::from(*v),
            ])
        })
        .collect();
    lineage.insert("training_tables".into(), serde_json::Value::Array(all));
    Ok(metadata)
}

/// Streams are append-only: INSERT is the only mutation they accept.
fn reject_stream_write(catalog: &Catalog, name: &str, op: &str) -> Result<()> {
    if catalog.has_extension(STREAM_KIND, name) {
        return Err(SqlError::Constraint(format!(
            "stream '{name}' is append-only; {op} is not allowed"
        )));
    }
    Ok(())
}

/// Extract event times (ms) from a stream batch's event-time column.
/// A NULL or non-integer event time is a hard error — the watermark
/// cannot advance past a row whose position in time is unknown.
fn event_times(batch: &RecordBatch, et_index: usize) -> Result<Vec<i64>> {
    let col = batch.column(et_index);
    let mut out = Vec::with_capacity(batch.num_rows());
    for i in 0..batch.num_rows() {
        match col.get(i) {
            Value::Int(t) => out.push(t),
            other => {
                return Err(SqlError::Constraint(format!(
                    "event-time column holds non-integer value {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// Current committed state of a namespaced object key
/// (`table:x`, `view:x`, `ext:kind:x`).
fn object_state(catalog: &Catalog, key: &str) -> BaseState {
    if let Some(name) = key.strip_prefix("table:") {
        return match catalog.table(name) {
            Ok(t) => BaseState::TableAt(t.current_version()),
            Err(_) => BaseState::Absent,
        };
    }
    if let Some(name) = key.strip_prefix("view:") {
        return if catalog.view(name).is_some() {
            BaseState::ViewPresent
        } else {
            BaseState::Absent
        };
    }
    if let Some(rest) = key.strip_prefix("ext:") {
        let mut parts = rest.splitn(2, ':');
        let kind = parts.next().unwrap_or("");
        let name = parts.next().unwrap_or("");
        return match catalog.extension(kind, name) {
            Ok(e) => BaseState::ExtensionAt(e.current().version),
            Err(_) => BaseState::Absent,
        };
    }
    BaseState::Absent
}

/// Copy the final state of `key` from `src` into `dst` (or remove it).
fn apply_object(dst: &mut Catalog, src: &Catalog, key: &str) {
    if let Some(name) = key.strip_prefix("table:") {
        match src.table(name) {
            Ok(t) => {
                let t = t.clone();
                let _ = dst.drop_table(name);
                let _ = dst.create_table(t);
            }
            Err(_) => {
                let _ = dst.drop_table(name);
            }
        }
        return;
    }
    if let Some(name) = key.strip_prefix("view:") {
        match src.view(name) {
            Some(v) => {
                let v = v.clone();
                let _ = dst.drop_view(name);
                let _ = dst.create_view(v);
            }
            None => {
                let _ = dst.drop_view(name);
            }
        }
        return;
    }
    if let Some(rest) = key.strip_prefix("ext:") {
        let mut parts = rest.splitn(2, ':');
        let kind = parts.next().unwrap_or("").to_string();
        let name = parts.next().unwrap_or("").to_string();
        match src.extension(&kind, &name) {
            Ok(obj) => {
                let obj = obj.clone();
                let _ = dst.drop_extension(&kind, &name);
                let _ = restore_extension(dst, obj);
            }
            Err(_) => {
                let _ = dst.drop_extension(&kind, &name);
            }
        }
    }
}

fn restore_extension(dst: &mut Catalog, obj: crate::catalog::ExtensionObject) -> Result<()> {
    // Recreate with the first version, then append the rest, preserving ids.
    let mut versions = obj.versions.into_iter();
    let first = versions
        .next()
        .expect("extension objects always have one version");
    dst.create_extension(
        &obj.kind,
        &obj.name,
        &obj.owner,
        first.payload,
        first.metadata,
        first.txn_id,
    )?;
    for v in versions {
        dst.update_extension(&obj.kind, &obj.name, v.payload, v.metadata, v.txn_id)?;
    }
    Ok(())
}

/// Bind `?` placeholders in a statement.
pub fn bind_parameters(stmt: Statement, params: &[Value]) -> Result<Statement> {
    let mut bind = |e: Expr| -> Result<Expr> {
        rewrite_expr(e, &mut |x| match x {
            Expr::Parameter(i) => params
                .get(i)
                .cloned()
                .map(Expr::Literal)
                .ok_or_else(|| SqlError::Plan(format!("missing parameter ?{i}"))),
            other => Ok(other),
        })
    };
    Ok(match stmt {
        Statement::Query(q) => Statement::Query(bind_query(q, &mut bind)?),
        Statement::Insert {
            table,
            columns,
            source,
        } => Statement::Insert {
            table,
            columns,
            source: match source {
                InsertSource::Values(rows) => InsertSource::Values(
                    rows.into_iter()
                        .map(|r| r.into_iter().map(&mut bind).collect::<Result<_>>())
                        .collect::<Result<_>>()?,
                ),
                InsertSource::Query(q) => InsertSource::Query(Box::new(bind_query(*q, &mut bind)?)),
            },
        },
        Statement::Update {
            table,
            assignments,
            selection,
        } => Statement::Update {
            table,
            assignments: assignments
                .into_iter()
                .map(|(c, e)| Ok((c, bind(e)?)))
                .collect::<Result<_>>()?,
            selection: selection.map(&mut bind).transpose()?,
        },
        Statement::Delete { table, selection } => Statement::Delete {
            table,
            selection: selection.map(&mut bind).transpose()?,
        },
        other => other,
    })
}

fn bind_query(
    mut q: crate::ast::Query,
    bind: &mut impl FnMut(Expr) -> Result<Expr>,
) -> Result<crate::ast::Query> {
    q.select.from = q
        .select
        .from
        .into_iter()
        .map(|tr| bind_table_ref(tr, bind))
        .collect::<Result<_>>()?;
    q.select.selection = q.select.selection.map(&mut *bind).transpose()?;
    q.select.having = q.select.having.map(&mut *bind).transpose()?;
    q.select.projection = q
        .select
        .projection
        .into_iter()
        .map(|item| {
            Ok(match item {
                crate::ast::SelectItem::Expr { expr, alias } => crate::ast::SelectItem::Expr {
                    expr: bind(expr)?,
                    alias,
                },
                other => other,
            })
        })
        .collect::<Result<_>>()?;
    q.select.group_by = q
        .select
        .group_by
        .into_iter()
        .map(&mut *bind)
        .collect::<Result<_>>()?;
    q.unions = q
        .unions
        .into_iter()
        .map(|arm| {
            let mut sub = crate::ast::Query {
                select: arm.select,
                unions: vec![],
                order_by: vec![],
                limit: None,
                offset: None,
            };
            sub = bind_query(sub, bind)?;
            Ok(crate::ast::UnionArm {
                select: sub.select,
                all: arm.all,
            })
        })
        .collect::<Result<_>>()?;
    q.order_by = q
        .order_by
        .into_iter()
        .map(|o| {
            Ok(crate::ast::OrderItem {
                expr: bind(o.expr)?,
                asc: o.asc,
            })
        })
        .collect::<Result<_>>()?;
    Ok(q)
}

/// Descend into FROM-clause table references (derived tables and join
/// conditions carry expressions too) applying `bind` to every expression.
fn bind_table_ref(
    tr: crate::ast::TableRef,
    bind: &mut impl FnMut(Expr) -> Result<Expr>,
) -> Result<crate::ast::TableRef> {
    use crate::ast::TableRef;
    Ok(match tr {
        TableRef::Subquery { query, alias } => TableRef::Subquery {
            query: Box::new(bind_query(*query, bind)?),
            alias,
        },
        TableRef::Join {
            left,
            right,
            join_type,
            on,
        } => TableRef::Join {
            left: Box::new(bind_table_ref(*left, bind)?),
            right: Box::new(bind_table_ref(*right, bind)?),
            join_type,
            on: on.map(&mut *bind).transpose()?,
        },
        t @ TableRef::Table { .. } => t,
    })
}

/// Recursive subquery runner backed by the session's working catalog.
/// Carries the outer statement's cancellation token so a timeout also
/// interrupts subquery materialization.
struct EngineSubqueryRunner<'a> {
    catalog: &'a Catalog,
    db: &'a Database,
    user: &'a str,
    cancel: CancelToken,
}

impl SubqueryRunner for EngineSubqueryRunner<'_> {
    fn run(&self, query: &crate::ast::Query) -> Result<RecordBatch> {
        let provider = self.db.inference_provider();
        let options = self.db.exec_options();
        let ctx = PlanContext::new(self.catalog, provider.as_ref()).with_subqueries(self);
        let plan = plan_query(query, &ctx)?;
        let plan = self.db.apply_rewriters(plan, self.catalog)?;
        let plan = optimize(plan, &self.db.optimizer_config())?;
        let physical = create_physical_plan(&plan, self.catalog, provider.as_ref(), &options)?;
        let eval_ctx = EvalContext::new(provider, self.user.to_string(), options.threads)
            .with_cancel(self.cancel.clone());
        physical.execute(&eval_ctx)
    }
}
