//! On-disk part format and per-column lightweight compression.
//!
//! A part is one framed, checksummed record (the same `[len][fnv64][payload]`
//! frame as WAL records, so torn or bit-flipped part files are detected by
//! the frame checksum alone):
//!
//! ```text
//! payload := format(u8) id(u64) level(u8) rows(u32) schema
//!            ncols(u32) column*
//! column  := zone block(bytes)
//! zone    := has_min(bool) min(f64) has_max(bool) max(f64) nulls(u64)
//! block   := validity-bitmap enc_tag(u8) values
//! ```
//!
//! Column blocks are length-prefixed, so a projected read decodes the small
//! zone headers for every column but skips the value blocks of columns the
//! scan does not need. Encodings are chosen per column by computed size:
//!
//! * Int: raw i64 | RLE `(value,count)` runs | frame-of-reference bit-pack
//! * Bool: bitmap
//! * Text: raw | dictionary (<= 255 distinct, u8 indices)
//! * Float/Date: raw (IEEE-754 bits / i32), checksummed by the frame
//!
//! NULL slots are normalized to the type's default before encoding so the
//! raw buffers round-trip bit-exactly regardless of how the batch was built.

use crate::batch::RecordBatch;
use crate::column::{ColumnVector, RawColumn, RawColumnOwned};
use crate::types::DataType;
use crate::wal::codec::{frame, read_frame, Corrupt, Dec, DecodeResult, Enc};
use std::collections::HashMap;
use std::sync::Arc;

use super::{PartMeta, ZoneMap};

/// Version byte at the start of every part payload.
const PART_FORMAT: u8 = 1;

// Encoding tags, disjoint across types so a corrupt tag never aliases.
const ENC_INT_RAW: u8 = 0;
const ENC_INT_RLE: u8 = 1;
const ENC_INT_FOR: u8 = 2;
const ENC_BOOL_BITMAP: u8 = 3;
const ENC_FLOAT_RAW: u8 = 4;
const ENC_TEXT_RAW: u8 = 5;
const ENC_TEXT_DICT: u8 = 6;
const ENC_DATE_RAW: u8 = 7;

/// A fully decoded part: identity plus its rows.
pub struct DecodedPart {
    pub id: u64,
    pub level: u8,
    pub batch: RecordBatch,
}

// ----------------------------------------------------------- bit packing

fn pack_bits(bits: impl Iterator<Item = bool>, n: usize) -> Vec<u8> {
    let mut out = vec![0u8; n.div_ceil(8)];
    for (i, b) in bits.enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bit(bytes: &[u8], i: usize) -> bool {
    bytes[i / 8] & (1 << (i % 8)) != 0
}

// --------------------------------------------------------- int encodings

/// Count RLE runs without materializing them.
fn rle_runs(vals: &[i64]) -> usize {
    let mut runs = 0;
    let mut prev = None;
    for v in vals {
        if prev != Some(*v) {
            runs += 1;
            prev = Some(*v);
        }
    }
    runs
}

/// Bits needed per value for frame-of-reference packing, and the base.
fn for_params(vals: &[i64]) -> (i64, u32) {
    let base = vals.iter().copied().min().unwrap_or(0);
    let max = vals.iter().copied().max().unwrap_or(0);
    let span = (max as i128 - base as i128) as u128;
    let width = 128 - span.leading_zeros();
    (base, width.min(64))
}

fn encode_int(e: &mut Enc, vals: &[i64]) {
    let n = vals.len();
    let raw_size = 8 * n;
    let runs = rle_runs(vals);
    let rle_size = 4 + 12 * runs;
    let (base, width) = for_params(vals);
    let for_size = 9 + (n * width as usize).div_ceil(8);
    if rle_size < raw_size && rle_size <= for_size {
        e.u8(ENC_INT_RLE);
        e.u32(runs as u32);
        let mut i = 0;
        while i < n {
            let v = vals[i];
            let mut j = i + 1;
            while j < n && vals[j] == v {
                j += 1;
            }
            e.i64(v);
            e.u32((j - i) as u32);
            i = j;
        }
    } else if for_size < raw_size && width < 64 {
        e.u8(ENC_INT_FOR);
        e.i64(base);
        e.u8(width as u8);
        // The accumulator must be wider than width + 7 bits: at the top of
        // each iteration up to 7 residual bits sit in `acc`, and a width-63
        // delta shifted past them needs 70 bits. A u64 here silently drops
        // the high bits of wide deltas (the wide-FOR round-trip bug).
        let mut acc: u128 = 0;
        let mut nbits: u32 = 0;
        for &v in vals {
            // Deltas are computed in i128 so `v - base` cannot overflow even
            // for base = i64::MIN, v = i64::MAX; the result always fits in
            // u64 because width <= 63 < 64.
            let diff = (v as i128 - base as i128) as u64;
            acc |= (diff as u128) << nbits;
            nbits += width;
            while nbits >= 8 {
                e.u8((acc & 0xff) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            e.u8((acc & 0xff) as u8);
        }
    } else {
        e.u8(ENC_INT_RAW);
        for &v in vals {
            e.i64(v);
        }
    }
}

fn decode_int(d: &mut Dec, n: usize, tag: u8) -> DecodeResult<Vec<i64>> {
    match tag {
        ENC_INT_RAW => (0..n).map(|_| d.i64()).collect(),
        ENC_INT_RLE => {
            let runs = d.seq_len()?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..runs {
                let v = d.i64()?;
                let count = d.u32()? as usize;
                if out.len() + count > n {
                    return Err(Corrupt);
                }
                out.resize(out.len() + count, v);
            }
            if out.len() != n {
                return Err(Corrupt);
            }
            Ok(out)
        }
        ENC_INT_FOR => {
            let base = d.i64()?;
            let width = d.u8()? as u32;
            // Encode never picks width >= 64 (it falls back to RAW), so a
            // wider tag can only come from corruption — and a 64-bit shift
            // below would be UB-adjacent anyway.
            if width >= 64 {
                return Err(Corrupt);
            }
            let mut out = Vec::with_capacity(n);
            // u128 accumulator mirrors the encoder: with up to 7 leftover
            // bits plus a fresh byte shifted in at offset nbits (< width),
            // live bits can exceed 64 for widths > 57.
            let mut acc: u128 = 0;
            let mut nbits: u32 = 0;
            let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
            for _ in 0..n {
                while nbits < width {
                    acc |= (d.u8()? as u128) << nbits;
                    nbits += 8;
                }
                let diff = (acc as u64) & mask;
                acc >>= width;
                nbits -= width;
                // base + diff stays within i64 for any delta the encoder can
                // produce; corrupt inputs may wrap, which `as i64` makes a
                // defined (if meaningless) value caught by nothing worse
                // than a wrong row.
                out.push((base as i128 + diff as i128) as i64);
            }
            Ok(out)
        }
        _ => Err(Corrupt),
    }
}

// -------------------------------------------------------- text encodings

fn encode_text(e: &mut Enc, vals: &[String]) {
    let n = vals.len();
    let raw_size: usize = vals.iter().map(|s| 4 + s.len()).sum();
    let mut dict: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, u8> = HashMap::new();
    let mut too_many = false;
    for s in vals {
        if !index.contains_key(s.as_str()) {
            if dict.len() == 256 {
                too_many = true;
                break;
            }
            index.insert(s.as_str(), dict.len() as u8);
            dict.push(s.as_str());
        }
    }
    let dict_size = 2 + dict.iter().map(|s| 4 + s.len()).sum::<usize>() + n;
    if !too_many && dict.len() <= 256 && dict_size < raw_size {
        e.u8(ENC_TEXT_DICT);
        e.u32(dict.len() as u32);
        for s in &dict {
            e.str(s);
        }
        for s in vals {
            e.u8(index[s.as_str()]);
        }
    } else {
        e.u8(ENC_TEXT_RAW);
        for s in vals {
            e.str(s);
        }
    }
}

fn decode_text(d: &mut Dec, n: usize, tag: u8) -> DecodeResult<Vec<String>> {
    match tag {
        ENC_TEXT_RAW => (0..n).map(|_| d.str()).collect(),
        ENC_TEXT_DICT => {
            let ndict = d.seq_len()?;
            if ndict > 256 {
                return Err(Corrupt);
            }
            let dict: Vec<String> = (0..ndict).map(|_| d.str()).collect::<DecodeResult<_>>()?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = d.u8()? as usize;
                out.push(dict.get(idx).ok_or(Corrupt)?.clone());
            }
            Ok(out)
        }
        _ => Err(Corrupt),
    }
}

// -------------------------------------------------------- column blocks

/// Logical (uncompressed) size of a column's values, used for the
/// compression-ratio counters: what a raw encoding would occupy.
fn uncompressed_size(col: &ColumnVector) -> usize {
    match col.raw() {
        RawColumn::Bool(v) => v.len(),
        RawColumn::Int(v) => 8 * v.len(),
        RawColumn::Float(v) => 8 * v.len(),
        RawColumn::Text(v) => v.iter().map(|s| 4 + s.len()).sum(),
        RawColumn::Date(v) => 4 * v.len(),
    }
}

/// Zone map for one column: min/max use the same numeric view as
/// [`TableStats`](crate::stats::TableStats) (`get_f64`), so planner
/// comparisons against zone bounds and against table stats agree.
/// Text columns carry only a null count (not prunable). A NaN anywhere
/// poisons min/max to `None` — pruning must stay conservative.
fn zone_of(col: &ColumnVector) -> ZoneMap {
    let mut min: Option<f64> = None;
    let mut max: Option<f64> = None;
    let mut nulls: u64 = 0;
    let mut poisoned = matches!(col.data_type(), DataType::Text);
    for i in 0..col.len() {
        if col.is_null(i) {
            nulls += 1;
            continue;
        }
        if poisoned {
            continue;
        }
        match col.get_f64(i) {
            Some(v) if v.is_nan() => poisoned = true,
            Some(v) => {
                min = Some(min.map_or(v, |m: f64| m.min(v)));
                max = Some(max.map_or(v, |m: f64| m.max(v)));
            }
            None => poisoned = true,
        }
    }
    if poisoned {
        min = None;
        max = None;
    }
    ZoneMap {
        min,
        max,
        null_count: nulls,
    }
}

fn put_zone(e: &mut Enc, z: &ZoneMap) {
    e.bool(z.min.is_some());
    e.f64(z.min.unwrap_or(0.0));
    e.bool(z.max.is_some());
    e.f64(z.max.unwrap_or(0.0));
    e.u64(z.null_count);
}

fn get_zone(d: &mut Dec) -> DecodeResult<ZoneMap> {
    let has_min = d.bool()?;
    let min = d.f64()?;
    let has_max = d.bool()?;
    let max = d.f64()?;
    let null_count = d.u64()?;
    Ok(ZoneMap {
        min: has_min.then_some(min),
        max: has_max.then_some(max),
        null_count,
    })
}

/// Encode one column's value block (validity bitmap + tagged values),
/// normalizing NULL slots to the type default first so the encoding is a
/// pure function of the column's logical contents.
fn encode_block(col: &ColumnVector) -> Vec<u8> {
    let n = col.len();
    let validity = col.validity_slice();
    let has_nulls = validity.iter().any(|v| !*v);
    let mut e = Enc::new();
    e.buf.extend_from_slice(&pack_bits(validity.iter().copied(), n));
    match col.raw() {
        RawColumn::Bool(v) => {
            e.u8(ENC_BOOL_BITMAP);
            let bits = (0..n).map(|i| v[i] && validity[i]);
            e.buf.extend_from_slice(&pack_bits(bits, n));
        }
        RawColumn::Int(v) => {
            if has_nulls {
                let norm: Vec<i64> = (0..n).map(|i| if validity[i] { v[i] } else { 0 }).collect();
                encode_int(&mut e, &norm);
            } else {
                encode_int(&mut e, v);
            }
        }
        RawColumn::Float(v) => {
            e.u8(ENC_FLOAT_RAW);
            for i in 0..n {
                e.f64(if validity[i] { v[i] } else { 0.0 });
            }
        }
        RawColumn::Text(v) => {
            if has_nulls {
                let norm: Vec<String> = (0..n)
                    .map(|i| if validity[i] { v[i].clone() } else { String::new() })
                    .collect();
                encode_text(&mut e, &norm);
            } else {
                encode_text(&mut e, v);
            }
        }
        RawColumn::Date(v) => {
            e.u8(ENC_DATE_RAW);
            for i in 0..n {
                e.i32(if validity[i] { v[i] } else { 0 });
            }
        }
    }
    e.buf
}

fn decode_block(block: &[u8], n: usize, data_type: DataType) -> DecodeResult<ColumnVector> {
    let mut d = Dec::new(block);
    let vbytes = n.div_ceil(8);
    let validity_bits = {
        let mut tmp = Vec::with_capacity(vbytes);
        for _ in 0..vbytes {
            tmp.push(d.u8()?);
        }
        tmp
    };
    let validity: Vec<bool> = (0..n).map(|i| unpack_bit(&validity_bits, i)).collect();
    let tag = d.u8()?;
    let raw = match data_type {
        DataType::Bool => {
            if tag != ENC_BOOL_BITMAP {
                return Err(Corrupt);
            }
            let mut bytes = Vec::with_capacity(vbytes);
            for _ in 0..vbytes {
                bytes.push(d.u8()?);
            }
            RawColumnOwned::Bool((0..n).map(|i| unpack_bit(&bytes, i)).collect())
        }
        DataType::Int => RawColumnOwned::Int(decode_int(&mut d, n, tag)?),
        DataType::Float => {
            if tag != ENC_FLOAT_RAW {
                return Err(Corrupt);
            }
            RawColumnOwned::Float((0..n).map(|_| d.f64()).collect::<DecodeResult<_>>()?)
        }
        DataType::Text => RawColumnOwned::Text(decode_text(&mut d, n, tag)?),
        DataType::Date => {
            if tag != ENC_DATE_RAW {
                return Err(Corrupt);
            }
            RawColumnOwned::Date((0..n).map(|_| d.i32()).collect::<DecodeResult<_>>()?)
        }
    };
    d.finish()?;
    ColumnVector::from_raw(raw, validity).map_err(|_| Corrupt)
}

// ------------------------------------------------------------ part files

/// Encode a batch into a part file image (one checksummed frame) and its
/// manifest entry. The caller supplies the part id and merge level.
pub fn encode_part(id: u64, level: u8, batch: &RecordBatch) -> (Vec<u8>, PartMeta) {
    let mut e = Enc::new();
    e.u8(PART_FORMAT);
    e.u64(id);
    e.u8(level);
    e.u32(batch.num_rows() as u32);
    crate::wal::codec::put_schema(&mut e, batch.schema());
    e.u32(batch.num_columns() as u32);
    let mut zones = Vec::with_capacity(batch.num_columns());
    let mut uncompressed: u64 = 0;
    for col in batch.columns() {
        let zone = zone_of(col);
        put_zone(&mut e, &zone);
        zones.push(zone);
        uncompressed += uncompressed_size(col) as u64;
        let block = encode_block(col);
        e.bytes(&block);
    }
    let mut file = Vec::with_capacity(e.buf.len() + 16);
    frame(&mut file, &e.buf);
    let meta = PartMeta {
        id,
        rows: batch.num_rows() as u64,
        level,
        bytes_on_disk: file.len() as u64,
        bytes_uncompressed: uncompressed,
        zones,
    };
    (file, meta)
}

/// Decode a part file image. With `projection`, only the named columns'
/// value blocks are decoded (others are skipped via their length prefix)
/// and the batch's columns follow the projection's order.
pub fn decode_part(bytes: &[u8], projection: Option<&[usize]>) -> DecodeResult<DecodedPart> {
    let (payload, next) = read_frame(bytes, 0)?;
    if next != bytes.len() {
        return Err(Corrupt);
    }
    let mut d = Dec::new(payload);
    if d.u8()? != PART_FORMAT {
        return Err(Corrupt);
    }
    let id = d.u64()?;
    let level = d.u8()?;
    let rows = d.u32()? as usize;
    let schema = crate::wal::codec::get_schema(&mut d)?;
    let ncols = d.seq_len()?;
    if ncols != schema.len() {
        return Err(Corrupt);
    }
    if let Some(p) = projection {
        if p.iter().any(|&i| i >= ncols) {
            return Err(Corrupt);
        }
    }
    let mut decoded: Vec<Option<ColumnVector>> = (0..ncols).map(|_| None).collect();
    for (i, slot) in decoded.iter_mut().enumerate() {
        let _zone = get_zone(&mut d)?;
        let wanted = projection.is_none_or(|p| p.contains(&i));
        if wanted {
            let block = d.bytes_ref()?;
            *slot = Some(decode_block(block, rows, schema.column(i).data_type)?);
        } else {
            d.skip_bytes()?;
        }
    }
    d.finish()?;
    let (schema, columns) = match projection {
        Some(p) => (
            schema.project(p),
            p.iter()
                .map(|&i| decoded[i].take().expect("projected column decoded"))
                .collect(),
        ),
        None => (
            schema,
            decoded
                .into_iter()
                .map(|c| c.expect("all columns decoded"))
                .collect(),
        ),
    };
    let batch = RecordBatch::new(Arc::new(schema), columns).map_err(|_| Corrupt)?;
    Ok(DecodedPart { id, level, batch })
}

/// Cheap integrity check: the frame checksum covers the whole payload, so
/// a torn or bit-flipped part file fails here without a full decode.
pub fn validate_part_image(bytes: &[u8]) -> bool {
    match read_frame(bytes, 0) {
        Ok((_, next)) => next == bytes.len(),
        Err(Corrupt) => false,
    }
}

// -------------------------------------------------- checkpoint meta codec

/// Encode a part's manifest entry (checkpoints embed these so recovery
/// never decodes part data just to rebuild stats).
pub fn put_part_meta(e: &mut Enc, m: &PartMeta) {
    e.u64(m.id);
    e.u64(m.rows);
    e.u8(m.level);
    e.u64(m.bytes_on_disk);
    e.u64(m.bytes_uncompressed);
    e.u32(m.zones.len() as u32);
    for z in &m.zones {
        put_zone(e, z);
    }
}

pub fn get_part_meta(d: &mut Dec) -> DecodeResult<PartMeta> {
    let id = d.u64()?;
    let rows = d.u64()?;
    let level = d.u8()?;
    let bytes_on_disk = d.u64()?;
    let bytes_uncompressed = d.u64()?;
    let nzones = d.seq_len()?;
    let zones = (0..nzones).map(|_| get_zone(d)).collect::<DecodeResult<_>>()?;
    Ok(PartMeta {
        id,
        rows,
        level,
        bytes_on_disk,
        bytes_uncompressed,
        zones,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::Value;

    fn batch(cols: Vec<(&str, DataType, Vec<Value>)>) -> RecordBatch {
        let schema = Schema::new(
            cols.iter()
                .map(|(n, t, _)| crate::schema::ColumnDef::new(*n, *t))
                .collect(),
        );
        let columns = cols
            .iter()
            .map(|(_, t, vs)| ColumnVector::from_values(*t, vs).unwrap())
            .collect();
        RecordBatch::new(Arc::new(schema), columns).unwrap()
    }

    fn roundtrip(b: &RecordBatch) -> DecodedPart {
        let (file, meta) = encode_part(7, 2, b);
        assert_eq!(meta.rows as usize, b.num_rows());
        assert!(validate_part_image(&file));
        decode_part(&file, None).unwrap()
    }

    fn assert_batches_equal(a: &RecordBatch, b: &RecordBatch) {
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.num_columns(), b.num_columns());
        for c in 0..a.num_columns() {
            for r in 0..a.num_rows() {
                let (x, y) = (a.column(c).get(r), b.column(c).get(r));
                // Value's PartialEq is SQL-flavored (NULL != NULL).
                assert!(
                    (x.is_null() && y.is_null()) || x == y,
                    "col {c} row {r}: {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn all_types_roundtrip_with_nulls() {
        let b = batch(vec![
            (
                "i",
                DataType::Int,
                vec![Value::Int(5), Value::Null, Value::Int(-3)],
            ),
            (
                "f",
                DataType::Float,
                vec![Value::Float(1.5), Value::Float(-0.0), Value::Null],
            ),
            (
                "t",
                DataType::Text,
                vec![Value::Text("a".into()), Value::Null, Value::Text("a".into())],
            ),
            (
                "b",
                DataType::Bool,
                vec![Value::Bool(true), Value::Bool(false), Value::Null],
            ),
            (
                "d",
                DataType::Date,
                vec![Value::Date(19000), Value::Null, Value::Date(-5)],
            ),
        ]);
        let p = roundtrip(&b);
        assert_eq!(p.id, 7);
        assert_eq!(p.level, 2);
        assert_batches_equal(&b, &p.batch);
    }

    #[test]
    fn rle_and_for_and_dict_compress() {
        let n = 4096;
        let runs: Vec<Value> = (0..n).map(|i| Value::Int(i / 512)).collect();
        let seq: Vec<Value> = (0..n).map(|i| Value::Int(1_000_000 + i)).collect();
        let cat: Vec<Value> = (0..n)
            .map(|i| Value::Text(format!("cat{}", i % 7)))
            .collect();
        let b = batch(vec![
            ("runs", DataType::Int, runs),
            ("seq", DataType::Int, seq),
            ("cat", DataType::Text, cat),
        ]);
        let (file, meta) = encode_part(1, 0, &b);
        assert!(
            meta.bytes_on_disk < meta.bytes_uncompressed / 2,
            "compressible data must compress: {} on disk vs {} raw",
            meta.bytes_on_disk,
            meta.bytes_uncompressed
        );
        let p = decode_part(&file, None).unwrap();
        assert_batches_equal(&b, &p.batch);
    }

    #[test]
    fn extreme_ints_roundtrip() {
        let b = batch(vec![(
            "i",
            DataType::Int,
            vec![
                Value::Int(i64::MIN),
                Value::Int(i64::MAX),
                Value::Int(0),
                Value::Int(-1),
            ],
        )]);
        let p = roundtrip(&b);
        assert_batches_equal(&b, &p.batch);
    }

    /// The widest FOR encoding the format allows: base = i64::MIN with a
    /// span of 2^63 - 1 forces width 63 while staying on the FOR path
    /// (values are distinct so RLE loses, and 63 < 64 bits beats RAW).
    #[test]
    fn for_width_63_spanning_i64_min_roundtrips() {
        let n = 1000i64;
        let mut vals: Vec<Value> = (0..n)
            .map(|i| Value::Int(i64::MIN + i * (i64::MAX / n)))
            .collect();
        // Pin the exact corners: the minimum representable value and the
        // top of a 63-bit span above it (i64::MIN + (2^63 - 1) == -1).
        vals[0] = Value::Int(i64::MIN);
        vals[1] = Value::Int(-1);
        let b = batch(vec![("i", DataType::Int, vals.clone())]);
        let (file, _) = encode_part(1, 0, &b);
        let p = decode_part(&file, None).unwrap();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(p.batch.column(0).get(i), *v, "row {i}");
        }
    }

    /// A full-i64 span needs 64 delta bits; the encoder must fall back to
    /// RAW (decode refuses width >= 64) and still round-trip exactly.
    #[test]
    fn full_span_falls_back_to_raw_and_roundtrips() {
        let n = 1000i64;
        let mut vals: Vec<Value> = (0..n)
            .map(|i| Value::Int(i64::MIN.wrapping_add(i.wrapping_mul(i64::MAX / 499))))
            .collect();
        vals[0] = Value::Int(i64::MIN);
        vals[1] = Value::Int(i64::MAX);
        let b = batch(vec![("i", DataType::Int, vals.clone())]);
        let (file, _) = encode_part(1, 0, &b);
        let p = decode_part(&file, None).unwrap();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(p.batch.column(0).get(i), *v, "row {i}");
        }
    }

    /// Every FOR width 0..=63 round-trips, including deltas that straddle
    /// the accumulator's old 64-bit ceiling (width + 7 residual bits).
    #[test]
    fn for_every_width_roundtrips() {
        for width in 0u32..=63 {
            let span: u64 = if width == 0 { 0 } else { (1u64 << (width - 1)) | 1 };
            let vals: Vec<i64> = (0..257u64)
                .map(|i| {
                    let d = if span == 0 { 0 } else { (i.wrapping_mul(0x9E37_79B9)) % (span + 1) };
                    i64::MIN / 2 + d as i64
                })
                .collect();
            let mut e = Enc::new();
            encode_int(&mut e, &vals);
            let mut d = Dec::new(&e.buf);
            let tag = d.u8().unwrap();
            let back = decode_int(&mut d, vals.len(), tag).unwrap();
            d.finish().unwrap();
            assert_eq!(vals, back, "width {width}");
        }
    }

    /// A corrupt width byte >= 64 must be rejected, not shifted with.
    #[test]
    fn for_decode_rejects_width_64_and_up() {
        for width in [64u8, 65, 255] {
            let mut e = Enc::new();
            e.i64(0); // base
            e.u8(width);
            e.u8(0); // would-be packed bits
            let mut d = Dec::new(&e.buf);
            assert!(decode_int(&mut d, 1, ENC_INT_FOR).is_err(), "width {width}");
        }
    }

    #[test]
    fn zone_maps_track_min_max_nulls() {
        let b = batch(vec![
            (
                "i",
                DataType::Int,
                vec![Value::Int(10), Value::Null, Value::Int(-4)],
            ),
            (
                "t",
                DataType::Text,
                vec![Value::Text("x".into()), Value::Text("y".into()), Value::Null],
            ),
        ]);
        let (_, meta) = encode_part(0, 0, &b);
        assert_eq!(meta.zones[0].min, Some(-4.0));
        assert_eq!(meta.zones[0].max, Some(10.0));
        assert_eq!(meta.zones[0].null_count, 1);
        assert_eq!(meta.zones[1].min, None, "text columns are not prunable");
        assert_eq!(meta.zones[1].null_count, 1);
    }

    #[test]
    fn projection_skips_blocks_and_reorders() {
        let b = batch(vec![
            ("a", DataType::Int, vec![Value::Int(1), Value::Int(2)]),
            (
                "b",
                DataType::Text,
                vec![Value::Text("p".into()), Value::Text("q".into())],
            ),
            ("c", DataType::Float, vec![Value::Float(0.5), Value::Null]),
        ]);
        let (file, _) = encode_part(3, 0, &b);
        let p = decode_part(&file, Some(&[2, 0])).unwrap();
        assert_eq!(p.batch.schema().names(), vec!["c", "a"]);
        assert_eq!(p.batch.column(0).get(0), Value::Float(0.5));
        assert!(p.batch.column(0).get(1).is_null());
        assert_eq!(p.batch.column(1).get(1), Value::Int(2));
    }

    #[test]
    fn corruption_detected() {
        let b = batch(vec![("a", DataType::Int, vec![Value::Int(1)])]);
        let (mut file, _) = encode_part(0, 0, &b);
        // Torn tail.
        assert!(!validate_part_image(&file[..file.len() - 1]));
        assert!(decode_part(&file[..file.len() - 1], None).is_err());
        // Bit flip in the payload.
        let last = file.len() - 1;
        file[last] ^= 0x40;
        assert!(!validate_part_image(&file));
        assert!(decode_part(&file, None).is_err());
    }

    #[test]
    fn part_meta_roundtrips() {
        let m = PartMeta {
            id: 42,
            rows: 1000,
            level: 3,
            bytes_on_disk: 512,
            bytes_uncompressed: 9000,
            zones: vec![
                ZoneMap {
                    min: Some(-1.5),
                    max: Some(99.0),
                    null_count: 7,
                },
                ZoneMap {
                    min: None,
                    max: None,
                    null_count: 0,
                },
            ],
        };
        let mut e = Enc::new();
        put_part_meta(&mut e, &m);
        let mut d = Dec::new(&e.buf);
        let back = get_part_meta(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(m, back);
    }
}
