//! Disk-resident compressed columnar parts (data bigger than RAM).
//!
//! A table's committed history no longer has to be fully resident: when a
//! table outgrows the configured memory budget, its rows are flushed into
//! immutable, per-column-compressed **parts** on disk, and only a small
//! resident tail (plus per-part zone maps) stays in memory. The WAL is
//! still the commit log; checkpoints embed each table's part *manifest*
//! ([`PartMeta`] list) instead of the flushed rows, so recovery = newest
//! checkpoint whose referenced parts all pass their checksums + WAL tail
//! replay. Scans stream parts through the morsel executor one part at a
//! time — peak decoded bytes are bounded by the largest single part, not
//! the table — and per-column min/max zone maps let the planner skip whole
//! parts for selective predicates. A background size-tiered merge thread
//! compacts small parts so scan fan-in stays low.
//!
//! See DESIGN.md §5i for the format, merge policy, and budget semantics.

mod codec;
mod store;

pub use codec::{decode_part, encode_part, validate_part_image};
pub(crate) use codec::{get_part_meta, put_part_meta};
pub use store::{parse_part_name, part_file_name, PartStore};

/// Per-column min/max + null-count summary, the unit of scan pruning.
///
/// Bounds use the engine's numeric view of values (`get_f64`): ints,
/// floats, dates, and bools all map onto `f64`, matching how the planner
/// compares predicate literals against table stats. Text columns (and any
/// column containing a NaN) carry `None` bounds and are never pruned on.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub null_count: u64,
}

impl ZoneMap {
    /// Could any row in this zone satisfy `value ∈ [lo, hi]` (inclusive)?
    /// `None` bounds mean "unknown" — always scannable. A zone of all
    /// NULLs can never match a range predicate (SQL NULL comparisons are
    /// not true), so it *is* prunable even without bounds.
    pub fn overlaps(&self, lo: Option<f64>, hi: Option<f64>, rows: u64) -> bool {
        if self.null_count >= rows {
            return false;
        }
        if let (Some(hi), Some(min)) = (hi, self.min) {
            if min > hi {
                return false;
            }
        }
        if let (Some(lo), Some(max)) = (lo, self.max) {
            if max < lo {
                return false;
            }
        }
        true
    }
}

/// Manifest entry for one immutable part file: identity, shape, and the
/// zone maps the planner prunes with. Checkpoints embed these, so recovery
/// and plan-time pruning never touch part data.
#[derive(Debug, Clone, PartialEq)]
pub struct PartMeta {
    /// Globally unique, never reused (allocation resumes above every part
    /// file on disk at open).
    pub id: u64,
    pub rows: u64,
    /// Size-tier: freshly flushed parts are level 0; a merge of level-N
    /// parts produces a level-N+1 part.
    pub level: u8,
    pub bytes_on_disk: u64,
    pub bytes_uncompressed: u64,
    /// One per table column, in schema order.
    pub zones: Vec<ZoneMap>,
}

impl PartMeta {
    /// Approximate decoded in-memory size, consistent with how the query
    /// budget charges batches (8 bytes per cell).
    pub fn decoded_bytes(&self) -> u64 {
        self.rows * self.zones.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_overlap_logic() {
        let z = ZoneMap {
            min: Some(10.0),
            max: Some(20.0),
            null_count: 0,
        };
        assert!(z.overlaps(Some(15.0), Some(25.0), 100));
        assert!(z.overlaps(None, Some(10.0), 100), "boundary touch matches");
        assert!(!z.overlaps(Some(20.5), None, 100));
        assert!(!z.overlaps(None, Some(9.9), 100));
        // Unknown bounds: never prunable...
        let unknown = ZoneMap {
            min: None,
            max: None,
            null_count: 0,
        };
        assert!(unknown.overlaps(Some(0.0), Some(1.0), 100));
        // ...unless every row is NULL.
        let all_null = ZoneMap {
            min: None,
            max: None,
            null_count: 100,
        };
        assert!(!all_null.overlaps(Some(0.0), Some(1.0), 100));
        assert!(!all_null.overlaps(None, None, 100));
    }
}
