//! Disk-resident part storage: id allocation, atomic writes, counters.
//!
//! Parts live beside the WAL segments in the same flat database directory
//! as `part.{id}` files. Writes go through the write-tmp → fsync → rename
//! protocol, so a crash mid-write leaves only a `part.{id}.tmp` orphan that
//! the next open removes; a `part.{id}` file is complete by construction
//! (and its frame checksum proves it). A part becomes *reachable* only when
//! a checkpoint (the manifest) references it — the rename is physical
//! durability, the checkpoint is the atomic commit point.

use crate::batch::RecordBatch;
use crate::error::{Result, SqlError};
use crate::wal::DurableFs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::codec::{decode_part, encode_part, validate_part_image};
use super::PartMeta;

/// File name of a final part.
pub fn part_file_name(id: u64) -> String {
    format!("part.{id:08}")
}

/// Parse `part.{id}` (not `.tmp`) into its id.
pub fn parse_part_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("part.")?;
    if rest.len() < 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

fn is_part_tmp(name: &str) -> bool {
    name.starts_with("part.") && name.ends_with(".tmp")
}

/// Shared handle to the database directory's part files, plus the
/// engine-wide part counters surfaced through `flock_metrics`.
pub struct PartStore {
    fs: Arc<dyn DurableFs>,
    next_id: AtomicU64,
    /// Live part files (referenced or awaiting their first checkpoint).
    pub parts_total: Arc<AtomicU64>,
    /// Monotone count of parts retired by background merges.
    pub parts_merged: Arc<AtomicU64>,
    pub part_bytes_on_disk: Arc<AtomicU64>,
    pub part_bytes_uncompressed: Arc<AtomicU64>,
    /// Parts skipped by zone-map pruning at plan time.
    pub zonemap_parts_pruned: Arc<AtomicU64>,
    /// Parts actually fed to the scan (post-pruning).
    pub zonemap_parts_scanned: Arc<AtomicU64>,
    /// High-water mark of bytes decoded at once by a streaming part scan —
    /// the observable form of the memory-budget guarantee.
    pub part_scan_peak_bytes: Arc<AtomicU64>,
}

impl PartStore {
    /// Open the store over an existing database directory: sweep orphaned
    /// `part.*.tmp` files from interrupted writes and resume id allocation
    /// above every part file on disk (referenced or orphaned, so ids are
    /// never reused even for parts a prune will later delete).
    pub fn open(fs: Arc<dyn DurableFs>) -> std::io::Result<PartStore> {
        let mut max_id = 0u64;
        for name in fs.list()? {
            if is_part_tmp(&name) {
                let _ = fs.remove(&name);
            } else if let Some(id) = parse_part_name(&name) {
                max_id = max_id.max(id + 1);
            }
        }
        Ok(PartStore {
            fs,
            next_id: AtomicU64::new(max_id),
            parts_total: Arc::new(AtomicU64::new(0)),
            parts_merged: Arc::new(AtomicU64::new(0)),
            part_bytes_on_disk: Arc::new(AtomicU64::new(0)),
            part_bytes_uncompressed: Arc::new(AtomicU64::new(0)),
            zonemap_parts_pruned: Arc::new(AtomicU64::new(0)),
            zonemap_parts_scanned: Arc::new(AtomicU64::new(0)),
            part_scan_peak_bytes: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Counter handles for [`EngineMetrics`](crate::engine) registration.
    pub fn metric_counters(&self) -> Vec<(&'static str, Arc<AtomicU64>)> {
        vec![
            ("parts_total", self.parts_total.clone()),
            ("parts_merged", self.parts_merged.clone()),
            ("part_bytes_on_disk", self.part_bytes_on_disk.clone()),
            (
                "part_bytes_uncompressed",
                self.part_bytes_uncompressed.clone(),
            ),
            ("zonemap_parts_pruned", self.zonemap_parts_pruned.clone()),
            ("zonemap_parts_scanned", self.zonemap_parts_scanned.clone()),
            ("part_scan_peak_bytes", self.part_scan_peak_bytes.clone()),
        ]
    }

    /// Reset the inventory counters to an authoritative live-part set
    /// (called after recovery, when the catalog knows which parts exist).
    pub fn set_inventory<'a>(&self, parts: impl Iterator<Item = &'a PartMeta>) {
        let (mut n, mut disk, mut raw) = (0u64, 0u64, 0u64);
        for m in parts {
            n += 1;
            disk += m.bytes_on_disk;
            raw += m.bytes_uncompressed;
        }
        self.parts_total.store(n, Ordering::Relaxed);
        self.part_bytes_on_disk.store(disk, Ordering::Relaxed);
        self.part_bytes_uncompressed.store(raw, Ordering::Relaxed);
    }

    /// Write a batch as a new immutable part: encode, write `part.N.tmp`,
    /// fsync, rename to `part.N`. On any error the final file does not
    /// exist and the orphaned tmp (if any) is swept at the next open.
    pub fn write_part(&self, batch: &RecordBatch, level: u8) -> Result<PartMeta> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (file, meta) = encode_part(id, level, batch);
        let tmp = format!("{}.tmp", part_file_name(id));
        let io = |e: std::io::Error| SqlError::Io(format!("part write: {e}"));
        self.fs.write_all(&tmp, &file).map_err(io)?;
        self.fs.sync(&tmp).map_err(io)?;
        self.fs.rename(&tmp, &part_file_name(id)).map_err(io)?;
        self.parts_total.fetch_add(1, Ordering::Relaxed);
        self.part_bytes_on_disk
            .fetch_add(meta.bytes_on_disk, Ordering::Relaxed);
        self.part_bytes_uncompressed
            .fetch_add(meta.bytes_uncompressed, Ordering::Relaxed);
        Ok(meta)
    }

    /// Read and fully decode a part.
    pub fn read_part(&self, id: u64) -> Result<RecordBatch> {
        self.read_part_projected(id, None)
    }

    /// Read a part, decoding only the projected columns (arbitrary order).
    pub fn read_part_projected(
        &self,
        id: u64,
        projection: Option<&[usize]>,
    ) -> Result<RecordBatch> {
        let name = part_file_name(id);
        let bytes = self
            .fs
            .read(&name)
            .map_err(|e| SqlError::Io(format!("part read {name}: {e}")))?;
        let part = decode_part(&bytes, projection)
            .map_err(|_| SqlError::Io(format!("part file {name} is corrupt")))?;
        if part.id != id {
            return Err(SqlError::Io(format!(
                "part file {name} claims id {}",
                part.id
            )));
        }
        Ok(part.batch)
    }

    /// True iff the part file exists and passes its frame checksum.
    /// Recovery uses this to reject checkpoint generations that reference
    /// torn or missing parts.
    pub fn validate_part(&self, id: u64) -> bool {
        match self.fs.read(&part_file_name(id)) {
            Ok(bytes) => validate_part_image(&bytes),
            Err(_) => false,
        }
    }

    /// Delete a retired part file and release its inventory bytes.
    pub fn remove_part(&self, meta: &PartMeta) {
        if self.fs.remove(&part_file_name(meta.id)).is_ok() {
            sub_saturating(&self.parts_total, 1);
            sub_saturating(&self.part_bytes_on_disk, meta.bytes_on_disk);
            sub_saturating(&self.part_bytes_uncompressed, meta.bytes_uncompressed);
        }
    }

    /// Record that `retired` source parts were folded into a merged part.
    pub fn note_merged(&self, retired: u64) {
        self.parts_merged.fetch_add(retired, Ordering::Relaxed);
    }

    /// Raise the streaming-scan peak-bytes high-water mark.
    pub fn record_scan_peak(&self, bytes: u64) {
        self.part_scan_peak_bytes.fetch_max(bytes, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for PartStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartStore")
            .field("next_id", &self.next_id.load(Ordering::Relaxed))
            .field("parts_total", &self.parts_total.load(Ordering::Relaxed))
            .finish()
    }
}

fn sub_saturating(counter: &AtomicU64, by: u64) {
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(by);
        match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnVector;
    use crate::schema::Schema;
    use crate::types::DataType;
    use crate::wal::MemFs;

    fn sample_batch(n: i64) -> RecordBatch {
        let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
        RecordBatch::new(schema, vec![ColumnVector::from_i64(0..n)]).unwrap()
    }

    #[test]
    fn write_read_remove_lifecycle() {
        let fs: Arc<dyn DurableFs> = MemFs::new();
        let store = PartStore::open(fs.clone()).unwrap();
        let meta = store.write_part(&sample_batch(100), 0).unwrap();
        assert_eq!(meta.rows, 100);
        assert_eq!(store.parts_total.load(Ordering::Relaxed), 1);
        let back = store.read_part(meta.id).unwrap();
        assert_eq!(back.num_rows(), 100);
        assert!(store.validate_part(meta.id));
        store.remove_part(&meta);
        assert_eq!(store.parts_total.load(Ordering::Relaxed), 0);
        assert!(!store.validate_part(meta.id));
    }

    #[test]
    fn open_sweeps_tmps_and_resumes_ids() {
        let fs: Arc<dyn DurableFs> = MemFs::new();
        {
            let store = PartStore::open(fs.clone()).unwrap();
            store.write_part(&sample_batch(10), 0).unwrap();
            store.write_part(&sample_batch(10), 0).unwrap();
        }
        fs.write_all("part.00000009.tmp", b"torn").unwrap();
        let store = PartStore::open(fs.clone()).unwrap();
        assert!(
            !fs.list().unwrap().iter().any(|n| n.ends_with(".tmp")),
            "orphaned tmp must be swept at open"
        );
        let meta = store.write_part(&sample_batch(10), 0).unwrap();
        assert!(meta.id >= 2, "ids must not be reused after reopen");
    }

    #[test]
    fn part_names_parse() {
        assert_eq!(parse_part_name(&part_file_name(7)), Some(7));
        assert_eq!(parse_part_name("part.00000123"), Some(123));
        assert_eq!(parse_part_name("part.00000123.tmp"), None);
        assert_eq!(parse_part_name("wal.00000001"), None);
        assert_eq!(parse_part_name("checkpoint.00000001"), None);
    }
}
