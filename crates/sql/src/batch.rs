//! Record batches: the unit of data flowing between physical operators.

use crate::column::ColumnVector;
use crate::error::{Result, SqlError};
use crate::schema::Schema;
use crate::types::Value;
use std::sync::Arc;

/// A horizontal slice of a table: a schema plus equal-length columns.
#[derive(Debug, Clone)]
pub struct RecordBatch {
    schema: Arc<Schema>,
    columns: Vec<ColumnVector>,
    rows: usize,
}

impl RecordBatch {
    pub fn new(schema: Arc<Schema>, columns: Vec<ColumnVector>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(SqlError::Execution(format!(
                "schema has {} columns but batch has {}",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != rows) {
            return Err(SqlError::Execution("ragged record batch".into()));
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnVector::new(c.data_type))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Build a batch from row-major values, casting into the schema types.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Value>]) -> Result<Self> {
        let mut columns: Vec<ColumnVector> = schema
            .columns()
            .iter()
            .map(|c| ColumnVector::with_capacity(c.data_type, rows.len()))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(SqlError::Constraint(format!(
                    "row has {} values, expected {}",
                    row.len(),
                    schema.len()
                )));
            }
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v.clone())?;
            }
        }
        RecordBatch::new(schema, columns)
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, idx: usize) -> &ColumnVector {
        &self.columns[idx]
    }

    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    pub fn column_by_name(&self, name: &str) -> Option<&ColumnVector> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Read a full row as scalars.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<RecordBatch> {
        let columns = self.columns.iter().map(|c| c.filter(mask)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Gather rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Result<RecordBatch> {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Project columns at `indices` with a new schema.
    pub fn project(&self, indices: &[usize]) -> Result<RecordBatch> {
        let schema = Arc::new(self.schema.project(indices));
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        RecordBatch::new(schema, columns)
    }

    /// Slice rows `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> RecordBatch {
        let columns: Vec<ColumnVector> =
            self.columns.iter().map(|c| c.slice(start, len)).collect();
        let rows = columns.first().map_or(0, |c| c.len());
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            rows,
        }
    }

    /// Split into chunks of at most `chunk_rows` rows (for parallel
    /// scoring). An empty batch yields no chunks.
    pub fn chunks(&self, chunk_rows: usize) -> Vec<RecordBatch> {
        let chunk_rows = chunk_rows.max(1);
        (0..self.rows)
            .step_by(chunk_rows)
            .map(|start| self.slice(start, chunk_rows))
            .collect()
    }

    /// Vertically concatenate batches sharing a schema.
    pub fn concat(schema: Arc<Schema>, batches: &[RecordBatch]) -> Result<RecordBatch> {
        let mut out = RecordBatch::empty(schema);
        for b in batches {
            if b.num_columns() != out.num_columns() {
                return Err(SqlError::Execution("concat: column count mismatch".into()));
            }
            for (dst, src) in out.columns.iter_mut().zip(&b.columns) {
                dst.append(src)?;
            }
            out.rows += b.rows;
        }
        Ok(out)
    }

    /// Render as an ASCII table (for examples and debugging).
    pub fn pretty(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(r).to_string()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:<w$} |"));
        }
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn sample() -> RecordBatch {
        let schema = Arc::new(Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Text),
        ]));
        RecordBatch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Text("a".into())],
                vec![Value::Int(2), Value::Text("b".into())],
                vec![Value::Int(3), Value::Text("c".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_validates_arity() {
        let schema = Arc::new(Schema::from_pairs(&[("id", DataType::Int)]));
        let err = RecordBatch::from_rows(schema, &[vec![Value::Int(1), Value::Int(2)]]);
        assert!(err.is_err());
    }

    #[test]
    fn ragged_batch_rejected() {
        let schema = Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]));
        let cols = vec![
            ColumnVector::from_i64([1, 2]),
            ColumnVector::from_i64([1]),
        ];
        assert!(RecordBatch::new(schema, cols).is_err());
    }

    #[test]
    fn filter_take_project() {
        let b = sample();
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.row(1), vec![Value::Int(3), Value::Text("c".into())]);
        let p = b.project(&[1]).unwrap();
        assert_eq!(p.schema().names(), vec!["name"]);
        let t = b.take(&[2, 2]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column(0).get(0), Value::Int(3));
    }

    #[test]
    fn chunks_cover_all_rows() {
        let b = sample();
        let chunks = b.chunks(2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[1].num_rows(), 1);
        let total: usize = chunks.iter().map(|c| c.num_rows()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn concat_roundtrips_chunks() {
        let b = sample();
        let chunks = b.chunks(1);
        let whole = RecordBatch::concat(b.schema().clone(), &chunks).unwrap();
        assert_eq!(whole.num_rows(), b.num_rows());
        assert_eq!(whole.row(2), b.row(2));
    }

    #[test]
    fn pretty_renders_header() {
        let s = sample().pretty();
        assert!(s.contains("| id | name |"));
        assert!(s.contains("| 2  | b    |"));
    }
}
