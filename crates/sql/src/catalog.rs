//! The database catalog: tables, views, extension objects, and grants.
//!
//! The catalog is the enterprise heart of the paper's argument: models are
//! "derived data" and must live next to tables, versioned and access
//! controlled. Tables and *extension objects* (the generic mechanism the
//! `flock-core` crate uses to store models) both get version chains, and
//! both participate in the same grant model.

use crate::error::{Result, SqlError};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Kinds of securable catalog objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    Table,
    View,
    /// Extension objects are namespaced by their extension kind string
    /// (e.g. "model"); the grant model treats them all as `Extension`.
    Extension,
}

/// A reference to a securable object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectRef {
    pub kind: ObjectKind,
    pub name: String,
}

impl ObjectRef {
    pub fn table(name: impl Into<String>) -> Self {
        ObjectRef {
            kind: ObjectKind::Table,
            name: name.into().to_ascii_lowercase(),
        }
    }
    pub fn view(name: impl Into<String>) -> Self {
        ObjectRef {
            kind: ObjectKind::View,
            name: name.into().to_ascii_lowercase(),
        }
    }
    pub fn extension(name: impl Into<String>) -> Self {
        ObjectRef {
            kind: ObjectKind::Extension,
            name: name.into().to_ascii_lowercase(),
        }
    }
}

/// Privileges in the grant model. `Execute` covers scoring a model with
/// PREDICT — the paper: "Access to a deployed model must be controlled,
/// similar to how access to data or a view is controlled in a DBMS."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Privilege {
    Select,
    Insert,
    Update,
    Delete,
    Execute,
    Create,
    Drop,
    Grant,
}

impl Privilege {
    pub fn parse(s: &str) -> Option<Privilege> {
        match s.to_ascii_uppercase().as_str() {
            "SELECT" => Some(Privilege::Select),
            "INSERT" => Some(Privilege::Insert),
            "UPDATE" => Some(Privilege::Update),
            "DELETE" => Some(Privilege::Delete),
            "EXECUTE" => Some(Privilege::Execute),
            "CREATE" => Some(Privilege::Create),
            "DROP" => Some(Privilege::Drop),
            "GRANT" => Some(Privilege::Grant),
            _ => None,
        }
    }

    pub const ALL: [Privilege; 8] = [
        Privilege::Select,
        Privilege::Insert,
        Privilege::Update,
        Privilege::Delete,
        Privilege::Execute,
        Privilege::Create,
        Privilege::Drop,
        Privilege::Grant,
    ];
}

/// A SQL view: a named stored query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewDef {
    pub name: String,
    pub sql: String,
}

/// One version of an extension object (e.g. a serialized model).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtensionVersion {
    pub version: u64,
    pub txn_id: u64,
    /// Opaque payload (e.g. FONNX bytes for models).
    pub payload: Vec<u8>,
    /// Structured metadata the owning extension interprets (lineage,
    /// schemas, metrics, ...).
    pub metadata: serde_json::Value,
}

/// A versioned, typed extension object. The SQL engine stores and secures
/// these without interpreting the payload — that is the owning extension's
/// job (for Flock: `flock-core` stores models here).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtensionObject {
    /// Extension kind, e.g. "model".
    pub kind: String,
    pub name: String,
    pub owner: String,
    pub versions: Vec<ExtensionVersion>,
}

impl ExtensionObject {
    pub fn current(&self) -> &ExtensionVersion {
        self.versions.last().expect("extension objects have >=1 version")
    }

    pub fn at_version(&self, version: u64) -> Result<&ExtensionVersion> {
        self.versions
            .iter()
            .find(|v| v.version == version)
            .ok_or_else(|| {
                SqlError::Catalog(format!(
                    "object '{}' has no version {version}",
                    self.name
                ))
            })
    }
}

/// A canonical, order-stable dump of [`AccessControl`] used by the WAL and
/// checkpoint codecs. Users, grants, and privilege lists are sorted, so
/// two equal access states always produce byte-identical encodings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessDump {
    pub users: Vec<String>,
    pub superusers: Vec<String>,
    pub grants: Vec<(String, ObjectRef, Vec<Privilege>)>,
}

fn privilege_rank(p: Privilege) -> usize {
    Privilege::ALL
        .iter()
        .position(|x| *x == p)
        .expect("Privilege::ALL covers every variant")
}

fn object_rank(o: &ObjectRef) -> (u8, &str) {
    let kind = match o.kind {
        ObjectKind::Table => 0,
        ObjectKind::View => 1,
        ObjectKind::Extension => 2,
    };
    (kind, &o.name)
}

/// The access-control state: users and grants.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccessControl {
    users: HashSet<String>,
    grants: HashMap<String, HashMap<ObjectRef, HashSet<Privilege>>>,
    /// Users with unrestricted access (the bootstrap superuser).
    superusers: HashSet<String>,
}

impl AccessControl {
    pub fn new() -> Self {
        let mut ac = AccessControl::default();
        ac.users.insert("admin".to_string());
        ac.superusers.insert("admin".to_string());
        ac
    }

    pub fn create_user(&mut self, name: &str) {
        self.users.insert(name.to_ascii_lowercase());
    }

    pub fn user_exists(&self, name: &str) -> bool {
        self.users.contains(&name.to_ascii_lowercase())
    }

    pub fn grant(&mut self, user: &str, object: ObjectRef, privs: &[Privilege]) {
        let user = user.to_ascii_lowercase();
        self.users.insert(user.clone());
        let entry = self
            .grants
            .entry(user)
            .or_default()
            .entry(object)
            .or_default();
        entry.extend(privs.iter().copied());
    }

    pub fn revoke(&mut self, user: &str, object: &ObjectRef, privs: &[Privilege]) {
        if let Some(objs) = self.grants.get_mut(&user.to_ascii_lowercase()) {
            if let Some(set) = objs.get_mut(object) {
                for p in privs {
                    set.remove(p);
                }
            }
        }
    }

    pub fn check(&self, user: &str, object: &ObjectRef, priv_: Privilege) -> Result<()> {
        let user_lc = user.to_ascii_lowercase();
        if self.superusers.contains(&user_lc) {
            return Ok(());
        }
        let ok = self
            .grants
            .get(&user_lc)
            .and_then(|objs| objs.get(object))
            .is_some_and(|set| set.contains(&priv_));
        if ok {
            Ok(())
        } else {
            Err(SqlError::AccessDenied(format!(
                "user '{user}' lacks {priv_:?} on {} '{}'",
                match object.kind {
                    ObjectKind::Table => "table",
                    ObjectKind::View => "view",
                    ObjectKind::Extension => "object",
                },
                object.name
            )))
        }
    }

    /// Export the full state in canonical (sorted) order for durability.
    pub fn dump(&self) -> AccessDump {
        let mut users: Vec<String> = self.users.iter().cloned().collect();
        users.sort();
        let mut superusers: Vec<String> = self.superusers.iter().cloned().collect();
        superusers.sort();
        let mut grants = Vec::new();
        for (user, objs) in &self.grants {
            for (obj, privs) in objs {
                let mut privs: Vec<Privilege> = privs.iter().copied().collect();
                privs.sort_by_key(|p| privilege_rank(*p));
                grants.push((user.clone(), obj.clone(), privs));
            }
        }
        grants.sort_by(|a, b| {
            (a.0.as_str(), object_rank(&a.1)).cmp(&(b.0.as_str(), object_rank(&b.1)))
        });
        AccessDump {
            users,
            superusers,
            grants,
        }
    }

    /// Rebuild access state from a dump (recovery path). Does not seed the
    /// bootstrap superuser — the dump is the complete state.
    pub fn from_dump(dump: &AccessDump) -> AccessControl {
        let mut ac = AccessControl::default();
        ac.users.extend(dump.users.iter().cloned());
        ac.superusers.extend(dump.superusers.iter().cloned());
        for (user, obj, privs) in &dump.grants {
            ac.grants
                .entry(user.clone())
                .or_default()
                .entry(obj.clone())
                .or_default()
                .extend(privs.iter().copied());
        }
        ac
    }
}

/// The full catalog. Cloning a catalog is cheap-ish: table versions are
/// `Arc`-shared, only the maps are copied — this is what transaction
/// snapshots rely on.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, ViewDef>,
    extensions: BTreeMap<(String, String), ExtensionObject>,
    pub access: AccessControl,
    /// Handle to the database directory's part files, when the engine is
    /// durable. Rides along with catalog clones (it is just an `Arc`) so
    /// planners and executors holding a catalog snapshot can open the
    /// part-backed versions it references. `None` for in-memory engines —
    /// whose tables never have parts.
    part_store: Option<Arc<crate::parts::PartStore>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            tables: BTreeMap::new(),
            views: BTreeMap::new(),
            extensions: BTreeMap::new(),
            access: AccessControl::new(),
            part_store: None,
        }
    }

    /// Attach the part store (done once at database open, after recovery).
    pub fn set_part_store(&mut self, store: Arc<crate::parts::PartStore>) {
        self.part_store = Some(store);
    }

    pub fn part_store(&self) -> Option<&Arc<crate::parts::PartStore>> {
        self.part_store.as_ref()
    }

    // ---- tables ----

    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::Catalog(format!(
                "table '{}' already exists",
                table.name()
            )));
        }
        if self.views.contains_key(&key) {
            return Err(SqlError::Catalog(format!(
                "a view named '{}' already exists",
                table.name()
            )));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| SqlError::Catalog(format!("table '{name}' does not exist")))
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::Catalog(format!("table '{name}' does not exist")))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::Catalog(format!("table '{name}' does not exist")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    // ---- views ----

    pub fn create_view(&mut self, view: ViewDef) -> Result<()> {
        let key = view.name.to_ascii_lowercase();
        if self.views.contains_key(&key) || self.tables.contains_key(&key) {
            return Err(SqlError::Catalog(format!(
                "object '{}' already exists",
                view.name
            )));
        }
        self.views.insert(key, view);
        Ok(())
    }

    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// All views in catalog-key (sorted) order.
    pub fn views(&self) -> impl Iterator<Item = &ViewDef> {
        self.views.values()
    }

    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        self.views
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| SqlError::Catalog(format!("view '{name}' does not exist")))
    }

    // ---- extension objects (models, ...) ----

    /// Create a new extension object with its initial version.
    pub fn create_extension(
        &mut self,
        kind: &str,
        name: &str,
        owner: &str,
        payload: Vec<u8>,
        metadata: serde_json::Value,
        txn_id: u64,
    ) -> Result<()> {
        let key = (kind.to_ascii_lowercase(), name.to_ascii_lowercase());
        if self.extensions.contains_key(&key) {
            return Err(SqlError::Catalog(format!(
                "{kind} '{name}' already exists"
            )));
        }
        self.extensions.insert(
            key,
            ExtensionObject {
                kind: kind.to_ascii_lowercase(),
                name: name.to_ascii_lowercase(),
                owner: owner.to_string(),
                versions: vec![ExtensionVersion {
                    version: 1,
                    txn_id,
                    payload,
                    metadata,
                }],
            },
        );
        Ok(())
    }

    /// Append a new version to an existing extension object.
    pub fn update_extension(
        &mut self,
        kind: &str,
        name: &str,
        payload: Vec<u8>,
        metadata: serde_json::Value,
        txn_id: u64,
    ) -> Result<u64> {
        let obj = self.extension_mut(kind, name)?;
        let version = obj.current().version + 1;
        obj.versions.push(ExtensionVersion {
            version,
            txn_id,
            payload,
            metadata,
        });
        Ok(version)
    }

    pub fn drop_extension(&mut self, kind: &str, name: &str) -> Result<()> {
        let key = (kind.to_ascii_lowercase(), name.to_ascii_lowercase());
        self.extensions
            .remove(&key)
            .map(|_| ())
            .ok_or_else(|| SqlError::Catalog(format!("{kind} '{name}' does not exist")))
    }

    pub fn extension(&self, kind: &str, name: &str) -> Result<&ExtensionObject> {
        let key = (kind.to_ascii_lowercase(), name.to_ascii_lowercase());
        self.extensions
            .get(&key)
            .ok_or_else(|| SqlError::Catalog(format!("{kind} '{name}' does not exist")))
    }

    fn extension_mut(&mut self, kind: &str, name: &str) -> Result<&mut ExtensionObject> {
        let key = (kind.to_ascii_lowercase(), name.to_ascii_lowercase());
        self.extensions
            .get_mut(&key)
            .ok_or_else(|| SqlError::Catalog(format!("{kind} '{name}' does not exist")))
    }

    pub fn has_extension(&self, kind: &str, name: &str) -> bool {
        let key = (kind.to_ascii_lowercase(), name.to_ascii_lowercase());
        self.extensions.contains_key(&key)
    }

    /// All extension objects in catalog-key (sorted) order.
    pub fn extensions_all(&self) -> impl Iterator<Item = &ExtensionObject> {
        self.extensions.values()
    }

    /// Install a fully-formed extension object (recovery path: checkpoint
    /// restore re-creates objects with their complete version chains).
    pub fn install_extension(&mut self, obj: ExtensionObject) -> Result<()> {
        let key = (obj.kind.to_ascii_lowercase(), obj.name.to_ascii_lowercase());
        if obj.versions.is_empty() {
            return Err(SqlError::Catalog(format!(
                "{} '{}' has no versions",
                obj.kind, obj.name
            )));
        }
        if self.extensions.contains_key(&key) {
            return Err(SqlError::Catalog(format!(
                "{} '{}' already exists",
                obj.kind, obj.name
            )));
        }
        self.extensions.insert(key, obj);
        Ok(())
    }

    pub fn extensions_of_kind(&self, kind: &str) -> Vec<&ExtensionObject> {
        let kind = kind.to_ascii_lowercase();
        self.extensions
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, v)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn table(name: &str) -> Table {
        Table::new(name, Schema::from_pairs(&[("id", DataType::Int)]), 1).unwrap()
    }

    #[test]
    fn table_lifecycle_and_case_insensitivity() {
        let mut c = Catalog::new();
        c.create_table(table("Orders")).unwrap();
        assert!(c.has_table("ORDERS"));
        assert!(c.table("orders").is_ok());
        assert!(c.create_table(table("orders")).is_err());
        c.drop_table("Orders").unwrap();
        assert!(c.table("orders").is_err());
    }

    #[test]
    fn view_name_collides_with_table() {
        let mut c = Catalog::new();
        c.create_table(table("t")).unwrap();
        let err = c.create_view(ViewDef {
            name: "T".into(),
            sql: "SELECT 1".into(),
        });
        assert!(err.is_err());
    }

    #[test]
    fn extension_objects_version() {
        let mut c = Catalog::new();
        c.create_extension("model", "churn", "admin", vec![1, 2], serde_json::json!({}), 5)
            .unwrap();
        let v = c
            .update_extension("model", "churn", vec![3], serde_json::json!({"n": 2}), 6)
            .unwrap();
        assert_eq!(v, 2);
        let obj = c.extension("model", "CHURN").unwrap();
        assert_eq!(obj.current().payload, vec![3]);
        assert_eq!(obj.at_version(1).unwrap().payload, vec![1, 2]);
        assert!(obj.at_version(9).is_err());
        assert_eq!(c.extensions_of_kind("model").len(), 1);
        c.drop_extension("model", "churn").unwrap();
        assert!(c.extension("model", "churn").is_err());
    }

    #[test]
    fn access_control_grant_revoke() {
        let mut ac = AccessControl::new();
        let t = ObjectRef::table("patients");
        // superuser passes, unknown user fails
        ac.check("admin", &t, Privilege::Select).unwrap();
        assert!(ac.check("alice", &t, Privilege::Select).is_err());
        ac.grant("alice", t.clone(), &[Privilege::Select]);
        ac.check("ALICE", &t, Privilege::Select).unwrap();
        assert!(ac.check("alice", &t, Privilege::Insert).is_err());
        ac.revoke("alice", &t, &[Privilege::Select]);
        assert!(ac.check("alice", &t, Privilege::Select).is_err());
    }

    #[test]
    fn model_execute_privilege_is_separate() {
        let mut ac = AccessControl::new();
        let m = ObjectRef::extension("risk_model");
        ac.grant("bob", m.clone(), &[Privilege::Execute]);
        ac.check("bob", &m, Privilege::Execute).unwrap();
        assert!(ac.check("bob", &m, Privilege::Drop).is_err());
    }
}
