//! Columnar storage: typed column vectors with validity bitmaps.

use crate::error::{Result, SqlError};
use crate::types::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Physical storage for one column. Values are stored densely in a typed
/// vector; NULLs occupy a default slot and are masked by `validity`.
///
/// Buffers are `Arc`-shared: cloning a column (scans, projections,
/// PREDICT argument evaluation) is O(1); mutation copies on write.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnVector {
    data: Arc<ColumnData>,
    validity: Arc<Vec<bool>>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<String>),
    Date(Vec<i32>),
}

impl ColumnVector {
    /// Create an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        Self::with_capacity(data_type, 0)
    }

    pub fn with_capacity(data_type: DataType, cap: usize) -> Self {
        let data = match data_type {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Text => ColumnData::Text(Vec::with_capacity(cap)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(cap)),
        };
        ColumnVector {
            data: Arc::new(data),
            validity: Arc::new(Vec::with_capacity(cap)),
        }
    }

    /// Build a column from scalar values, casting each to `data_type`.
    pub fn from_values(data_type: DataType, values: &[Value]) -> Result<Self> {
        let mut col = Self::with_capacity(data_type, values.len());
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }

    /// Fast constructor from raw f64 data (used by the ML integration).
    pub fn from_f64(values: impl IntoIterator<Item = f64>) -> Self {
        let data: Vec<f64> = values.into_iter().collect();
        let validity = vec![true; data.len()];
        ColumnVector {
            data: Arc::new(ColumnData::Float(data)),
            validity: Arc::new(validity),
        }
    }

    /// Fast constructor from raw i64 data.
    pub fn from_i64(values: impl IntoIterator<Item = i64>) -> Self {
        let data: Vec<i64> = values.into_iter().collect();
        let validity = vec![true; data.len()];
        ColumnVector {
            data: Arc::new(ColumnData::Int(data)),
            validity: Arc::new(validity),
        }
    }

    /// Fast constructor from raw bool data.
    pub fn from_bool(values: impl IntoIterator<Item = bool>) -> Self {
        let data: Vec<bool> = values.into_iter().collect();
        let validity = vec![true; data.len()];
        ColumnVector {
            data: Arc::new(ColumnData::Bool(data)),
            validity: Arc::new(validity),
        }
    }

    pub fn data_type(&self) -> DataType {
        match &*self.data {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Text(_) => DataType::Text,
            ColumnData::Date(_) => DataType::Date,
        }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    pub fn is_null(&self, idx: usize) -> bool {
        !self.validity[idx]
    }

    pub fn null_count(&self) -> usize {
        self.validity.iter().filter(|v| !**v).count()
    }

    /// Read the value at `idx` as a scalar.
    pub fn get(&self, idx: usize) -> Value {
        if !self.validity[idx] {
            return Value::Null;
        }
        match &*self.data {
            ColumnData::Bool(v) => Value::Bool(v[idx]),
            ColumnData::Int(v) => Value::Int(v[idx]),
            ColumnData::Float(v) => Value::Float(v[idx]),
            ColumnData::Text(v) => Value::Text(v[idx].clone()),
            ColumnData::Date(v) => Value::Date(v[idx]),
        }
    }

    /// Numeric view of a row: NULL -> None, non-numeric -> None.
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        if !self.validity[idx] {
            return None;
        }
        match &*self.data {
            ColumnData::Bool(v) => Some(v[idx] as i64 as f64),
            ColumnData::Int(v) => Some(v[idx] as f64),
            ColumnData::Float(v) => Some(v[idx]),
            ColumnData::Date(v) => Some(v[idx] as f64),
            ColumnData::Text(_) => None,
        }
    }

    /// Borrow the raw f64 buffer when this is a Float column with no NULLs.
    /// The vectorized inference path uses this to avoid per-row boxing.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match &*self.data {
            ColumnData::Float(v) if self.validity.iter().all(|b| *b) => Some(v),
            _ => None,
        }
    }

    /// Borrow the raw bool buffer when this column is all-valid bools.
    pub fn as_bool_slice(&self) -> Option<&[bool]> {
        match &*self.data {
            ColumnData::Bool(v) if self.validity.iter().all(|b| *b) => Some(v),
            _ => None,
        }
    }

    /// Borrow the raw i64 buffer when this column is all-valid ints.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match &*self.data {
            ColumnData::Int(v) if self.validity.iter().all(|b| *b) => Some(v),
            _ => None,
        }
    }

    /// Borrow the raw string buffer when this is a Text column.
    pub fn as_text_slice(&self) -> Option<&[String]> {
        match &*self.data {
            ColumnData::Text(v) => Some(v),
            _ => None,
        }
    }

    /// Append a value, casting it to the column type. NULL is accepted for
    /// any type.
    pub fn push(&mut self, value: Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let value = value.cast(self.data_type()).map_err(|_| {
            SqlError::Constraint(format!(
                "value {value} does not fit column of type {}",
                self.data_type()
            ))
        })?;
        Arc::make_mut(&mut self.validity).push(true);
        match (Arc::make_mut(&mut self.data), value) {
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(x),
            (ColumnData::Int(v), Value::Int(x)) => v.push(x),
            (ColumnData::Float(v), Value::Float(x)) => v.push(x),
            (ColumnData::Text(v), Value::Text(x)) => v.push(x),
            (ColumnData::Date(v), Value::Date(x)) => v.push(x),
            _ => unreachable!("cast guarantees matching variant"),
        }
        Ok(())
    }

    pub fn push_null(&mut self) {
        Arc::make_mut(&mut self.validity).push(false);
        match Arc::make_mut(&mut self.data) {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Text(v) => v.push(String::new()),
            ColumnData::Date(v) => v.push(0),
        }
    }

    /// Gather rows at `indices` into a new column (join/sort materialize).
    pub fn take(&self, indices: &[usize]) -> ColumnVector {
        let mut out = Self::with_capacity(self.data_type(), indices.len());
        for &i in indices {
            // push of an already-typed value cannot fail
            out.push(self.get(i)).expect("same-type push");
        }
        out
    }

    /// Keep rows where `mask` is true (filter).
    pub fn filter(&self, mask: &[bool]) -> ColumnVector {
        debug_assert_eq!(mask.len(), self.len());
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take(&indices)
    }

    /// Zero-copy slice of rows `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> ColumnVector {
        let end = (start + len).min(self.len());
        let validity = self.validity[start..end].to_vec();
        let data = match &*self.data {
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Text(v) => ColumnData::Text(v[start..end].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[start..end].to_vec()),
        };
        ColumnVector {
            data: Arc::new(data),
            validity: Arc::new(validity),
        }
    }

    /// Append all rows of `other` (must have the same type).
    pub fn append(&mut self, other: &ColumnVector) -> Result<()> {
        if other.data_type() != self.data_type() {
            return Err(SqlError::Execution(format!(
                "cannot append {} column to {} column",
                other.data_type(),
                self.data_type()
            )));
        }
        Arc::make_mut(&mut self.validity).extend_from_slice(&other.validity);
        match (Arc::make_mut(&mut self.data), &*other.data) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (ColumnData::Text(a), ColumnData::Text(b)) => a.extend_from_slice(b),
            (ColumnData::Date(a), ColumnData::Date(b)) => a.extend_from_slice(b),
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// Iterate scalar values (allocates for Text rows only).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Borrow the validity bitmap (NULL slots are `false`).
    pub(crate) fn validity_slice(&self) -> &[bool] {
        &self.validity
    }

    /// Borrow the raw typed buffer *including* NULL slots (which hold the
    /// type's default). The part codec encodes raw buffers plus the
    /// validity bitmap, so NULL slots must round-trip untouched.
    pub(crate) fn raw(&self) -> RawColumn<'_> {
        match &*self.data {
            ColumnData::Bool(v) => RawColumn::Bool(v),
            ColumnData::Int(v) => RawColumn::Int(v),
            ColumnData::Float(v) => RawColumn::Float(v),
            ColumnData::Text(v) => RawColumn::Text(v),
            ColumnData::Date(v) => RawColumn::Date(v),
        }
    }

    /// Rebuild a column from a raw buffer and validity bitmap. NULL slots
    /// must already hold the type's default value (the part codec
    /// normalizes them on encode).
    pub(crate) fn from_raw(raw: RawColumnOwned, validity: Vec<bool>) -> Result<Self> {
        let data = match raw {
            RawColumnOwned::Bool(v) => ColumnData::Bool(v),
            RawColumnOwned::Int(v) => ColumnData::Int(v),
            RawColumnOwned::Float(v) => ColumnData::Float(v),
            RawColumnOwned::Text(v) => ColumnData::Text(v),
            RawColumnOwned::Date(v) => ColumnData::Date(v),
        };
        let len = match &data {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Date(v) => v.len(),
        };
        if len != validity.len() {
            return Err(SqlError::Execution(format!(
                "column buffer has {len} rows but validity has {}",
                validity.len()
            )));
        }
        Ok(ColumnVector {
            data: Arc::new(data),
            validity: Arc::new(validity),
        })
    }
}

/// Borrowed view of a column's raw typed buffer (NULL slots included).
pub(crate) enum RawColumn<'a> {
    Bool(&'a [bool]),
    Int(&'a [i64]),
    Float(&'a [f64]),
    Text(&'a [String]),
    Date(&'a [i32]),
}

/// Owned raw buffer for [`ColumnVector::from_raw`].
pub(crate) enum RawColumnOwned {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<String>),
    Date(Vec<i32>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = ColumnVector::new(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Float(3.7)).unwrap(); // casts to 3
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.get(1).is_null());
        assert_eq!(c.get(2), Value::Int(3));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn incompatible_push_rejected() {
        let mut c = ColumnVector::new(DataType::Int);
        assert!(c.push(Value::Text("xyz".into())).is_err());
        assert_eq!(c.len(), 0, "failed push must not grow the column");
    }

    #[test]
    fn filter_and_take() {
        let c = ColumnVector::from_i64([10, 20, 30, 40]);
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(1), Value::Int(30));
        let t = c.take(&[3, 0]);
        assert_eq!(t.get(0), Value::Int(40));
        assert_eq!(t.get(1), Value::Int(10));
    }

    #[test]
    fn slice_bounds_are_clamped() {
        let c = ColumnVector::from_i64([1, 2, 3]);
        let s = c.slice(2, 10);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Value::Int(3));
    }

    #[test]
    fn append_checks_types() {
        let mut a = ColumnVector::from_i64([1]);
        let b = ColumnVector::from_i64([2, 3]);
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        let f = ColumnVector::from_f64([1.0]);
        assert!(a.append(&f).is_err());
    }

    #[test]
    fn f64_fast_path_requires_no_nulls() {
        let mut c = ColumnVector::from_f64([1.0, 2.0]);
        assert!(c.as_f64_slice().is_some());
        c.push_null();
        assert!(c.as_f64_slice().is_none());
        assert_eq!(c.get_f64(2), None);
    }
}
