//! Table schemas: named, typed, nullable columns.

use crate::error::{Result, SqlError};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Build a schema from `(name, type)` pairs; all columns nullable.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs
                .iter()
                .map(|(n, t)| ColumnDef::new(*n, *t))
                .collect(),
        }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Case-insensitive lookup of a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn field(&self, name: &str) -> Result<&ColumnDef> {
        self.index_of(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| SqlError::Plan(format!("unknown column '{name}'")))
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Concatenate two schemas (used for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Keep only the columns at `indices`, in the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Validate that no two columns share a (case-insensitive) name.
    pub fn check_unique_names(&self) -> Result<()> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(SqlError::Plan(format!("duplicate column name '{}'", c.name)));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                format!(
                    "{} {}{}",
                    c.name,
                    c.data_type,
                    if c.nullable { "" } else { " NOT NULL" }
                )
            })
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Text),
            ("score", DataType::Float),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Score"), Some(2));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn join_concatenates_columns() {
        let s = sample().join(&Schema::from_pairs(&[("extra", DataType::Bool)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("extra"), Some(3));
    }

    #[test]
    fn project_reorders() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.names(), vec!["score", "id"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("A", DataType::Text)]);
        assert!(s.check_unique_names().is_err());
        assert!(sample().check_unique_names().is_ok());
    }
}
