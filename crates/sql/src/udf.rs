//! Extension point for ML inference inside queries.
//!
//! The SQL engine does not know how to score models — that is `flock-core`'s
//! job. It only knows that `PREDICT(model, args...)` is a scalar expression
//! whose evaluation is delegated to a registered [`InferenceProvider`].
//! This keeps the substrate/contribution split of the paper explicit: the
//! DBMS provides the *operator surface*, the Flock layer provides the
//! *inference engine and cross-optimizer*.

use crate::ast::PredictStrategy;
use crate::column::ColumnVector;
use crate::error::{Result, SqlError};
use crate::types::DataType;
use std::sync::Arc;

/// Scores models over column batches. Implemented by `flock-core`.
pub trait InferenceProvider: Send + Sync {
    /// The output type of `PREDICT(model, ...)` (needed at planning time).
    fn output_type(&self, model: &str) -> Result<DataType>;

    /// The number of input arguments the model expects, when known.
    fn input_arity(&self, model: &str) -> Result<usize>;

    /// A short human-readable description of the model (kind plus any
    /// cross-optimizer transformations), surfaced by plan rendering.
    /// `None` when the provider has nothing to say.
    fn describe(&self, _model: &str) -> Option<String> {
        None
    }

    /// Score `model` over the given argument columns (all the same length)
    /// using the given execution strategy. Returns one output column of
    /// the same length.
    fn predict(
        &self,
        model: &str,
        inputs: &[ColumnVector],
        strategy: PredictStrategy,
        user: &str,
    ) -> Result<ColumnVector>;

    /// A monotonic epoch that moves whenever a plan built against this
    /// provider could become wrong — typically on model deploy/redeploy/
    /// drop, since the cross-optimizer may inline model internals into
    /// plans. The plan cache re-validates cached entries against it on
    /// every execute. Providers with immutable model sets keep the
    /// default constant.
    fn plan_epoch(&self) -> u64 {
        0
    }

    /// Cancellation-aware scoring. The default checks the token once and
    /// delegates to [`InferenceProvider::predict`], so simple providers
    /// stay oblivious; providers with long or chunked scoring loops (like
    /// `flock-core`'s) should override this and poll `cancel` between
    /// chunks so `statement_timeout` can interrupt a large batch mid-way.
    fn predict_cancellable(
        &self,
        model: &str,
        inputs: &[ColumnVector],
        strategy: PredictStrategy,
        user: &str,
        cancel: &crate::exec::CancelToken,
    ) -> Result<ColumnVector> {
        cancel.check()?;
        self.predict(model, inputs, strategy, user)
    }
}

/// The default provider: rejects every PREDICT call. Used when the engine
/// runs standalone, without the Flock inference layer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoInference;

impl InferenceProvider for NoInference {
    fn output_type(&self, model: &str) -> Result<DataType> {
        Err(SqlError::Plan(format!(
            "PREDICT({model}, ...) requires an inference provider; none is registered"
        )))
    }

    fn input_arity(&self, model: &str) -> Result<usize> {
        Err(SqlError::Plan(format!("no inference provider for '{model}'")))
    }

    fn predict(
        &self,
        model: &str,
        _inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
    ) -> Result<ColumnVector> {
        Err(SqlError::Execution(format!(
            "no inference provider registered (model '{model}')"
        )))
    }
}

/// Shared handle to the provider.
pub type ProviderRef = Arc<dyn InferenceProvider>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_inference_rejects_everything() {
        let p = NoInference;
        assert!(p.output_type("m").is_err());
        assert!(p.input_arity("m").is_err());
        assert!(p
            .predict("m", &[], PredictStrategy::Auto, "admin")
            .is_err());
    }
}
