//! SQL lexer.

use crate::error::{Result, SqlError};
use std::fmt;

/// A lexical token. Keywords are recognized later, in the parser, so any
/// word lexes to `Ident`; the parser compares case-insensitively.
/// (`Eq`/`Hash` let normalized token streams key the plan cache directly.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Token {
    Ident(String),
    /// A double-quoted identifier (exact case preserved).
    QuotedIdent(String),
    Number(String),
    StringLit(String),
    // punctuation & operators
    Comma,
    LParen,
    RParen,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Dot,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// String concatenation `||`.
    Concat,
    /// Parameter placeholder `?` (used by the provenance query-log replay).
    Question,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::Number(s) => write!(f, "{s}"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Comma => f.write_str(","),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Semicolon => f.write_str(";"),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Dot => f.write_str("."),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Concat => f.write_str("||"),
            Token::Question => f.write_str("?"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// Tokenize a SQL string. Comments (`-- ...` and `/* ... */`) are skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // decode the current char properly (inputs may be any UTF-8)
        let c = sql[i..].chars().next().expect("in-bounds char");
        match c {
            c if c.is_whitespace() => i += c.len_utf8(),
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(SqlError::Lex("unterminated block comment".into()));
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        break;
                    }
                    j += 1;
                }
                i = j + 2;
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(SqlError::Lex("unterminated string literal".into()));
                    }
                    if bytes[j] == b'\'' {
                        // doubled quote is an escaped quote
                        if bytes.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    // respect UTF-8: advance by char
                    let ch_len = utf8_len(bytes[j]);
                    s.push_str(std::str::from_utf8(&bytes[j..j + ch_len]).map_err(|_| {
                        SqlError::Lex("invalid UTF-8 in string literal".into())
                    })?);
                    j += ch_len;
                }
                tokens.push(Token::StringLit(s));
                i = j + 1;
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    let ch_len = utf8_len(bytes[j]);
                    s.push_str(std::str::from_utf8(&bytes[j..j + ch_len]).map_err(|_| {
                        SqlError::Lex("invalid UTF-8 in identifier".into())
                    })?);
                    j += ch_len;
                }
                if j >= bytes.len() {
                    return Err(SqlError::Lex("unterminated quoted identifier".into()));
                }
                tokens.push(Token::QuotedIdent(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // scientific notation
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Number(sql[start..i].to_string()));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                for ch in sql[i..].chars() {
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(sql[start..i].to_string()));
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        tokens.push(Token::LtEq);
                        i += 2;
                    }
                    Some(b'>') => {
                        tokens.push(Token::NotEq);
                        i += 2;
                    }
                    _ => {
                        tokens.push(Token::Lt);
                        i += 1;
                    }
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token::Concat);
                i += 2;
            }
            other => {
                return Err(SqlError::Lex(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 1.5;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Number("1.5".into())));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn string_escapes_and_comments() {
        let toks = tokenize("-- comment\nSELECT 'it''s' /* block */ , \"Weird Col\"").unwrap();
        assert!(toks.contains(&Token::StringLit("it's".into())));
        assert!(toks.contains(&Token::QuotedIdent("Weird Col".into())));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <> b != c || d <= e").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_) | Token::Eof))
            .collect();
        assert_eq!(
            ops,
            vec![&Token::NotEq, &Token::NotEq, &Token::Concat, &Token::LtEq]
        );
    }

    #[test]
    fn scientific_numbers() {
        let toks = tokenize("1e5 2.5E-3 7").unwrap();
        assert_eq!(toks[0], Token::Number("1e5".into()));
        assert_eq!(toks[1], Token::Number("2.5E-3".into()));
        assert_eq!(toks[2], Token::Number("7".into()));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(tokenize("SELECT @@@").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("SELECT 'héllo 世界'").unwrap();
        assert!(toks.contains(&Token::StringLit("héllo 世界".into())));
    }
}
