//! Stream tables and continuous queries.
//!
//! A *stream* is an append-only table plus a catalog extension object
//! (kind `"stream"`) that names its event-time column and late-arrival
//! allowance. A *continuous query* (kind `"cq"`) is a windowed aggregate
//! registered over a stream: the engine's scheduler feeds newly appended
//! events into incremental per-window aggregate state, closes windows as
//! the watermark (max event time minus lag) passes them, and emits each
//! closed window's rows into a queryable sink table — transactionally,
//! together with the query's durable progress cursor, so a crash replays
//! into exactly-once emission.
//!
//! Both object kinds ride the existing extension-object machinery: their
//! specs are stored as JSON metadata, WAL-logged through the
//! `CreateExtension`/`UpdateExtension` redo records, checkpointed, and
//! conflict-checked under `ext:<kind>:<name>` keys like any model.

use std::sync::Arc;

use crate::ast::{Expr, Query, SelectItem, TableRef, WindowSpec};
use crate::catalog::Catalog;
use crate::error::{Result, SqlError};
use crate::exec::PhysExpr;
use crate::udf::InferenceProvider;
use crate::plan::{plan_query, AggCall, LogicalPlan, PlanContext};
use crate::schema::{ColumnDef, Schema};
use crate::types::DataType;

/// Extension-object kind for stream tables.
pub const STREAM_KIND: &str = "stream";
/// Extension-object kind for continuous queries.
pub const CQ_KIND: &str = "cq";

/// Durable description of a stream (the backing table holds the data).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Event-time column name (must be an INT column, milliseconds).
    pub event_time: String,
    /// Late-arrival allowance: watermark = max(event_time) - lag_ms.
    pub lag_ms: i64,
}

impl StreamSpec {
    pub fn to_metadata(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        m.insert(
            "event_time".to_string(),
            serde_json::Value::String(self.event_time.clone()),
        );
        m.insert("lag_ms".to_string(), serde_json::Value::from(self.lag_ms));
        serde_json::Value::Object(m)
    }

    pub fn from_metadata(v: &serde_json::Value) -> Result<StreamSpec> {
        let event_time = v
            .get("event_time")
            .and_then(|x| x.as_str())
            .ok_or_else(|| SqlError::Catalog("stream metadata missing event_time".into()))?
            .to_string();
        let lag_ms = v
            .get("lag_ms")
            .and_then(|x| x.as_i64())
            .ok_or_else(|| SqlError::Catalog("stream metadata missing lag_ms".into()))?;
        Ok(StreamSpec { event_time, lag_ms })
    }
}

/// Durable description of a continuous query. Everything but
/// `next_emit_ms` is fixed at CREATE time; the cursor advances
/// transactionally with each emission.
#[derive(Debug, Clone, PartialEq)]
pub struct CqSpec {
    pub stream: String,
    pub window: WindowSpec,
    pub sink: String,
    /// The windowed aggregate, stored as re-parseable SQL text.
    pub query_sql: String,
    /// Optional breach predicate over the sink row (SQL expression text).
    pub when_sql: Option<String>,
    /// Model put on hold when the breach predicate fires.
    pub hold_model: Option<String>,
    /// Model retrained (its recorded training statement re-run) when the
    /// breach predicate fires.
    pub retrain_model: Option<String>,
    /// First window start not yet emitted (`None` = nothing emitted).
    /// Windows below this are suppressed during post-crash replay.
    pub next_emit_ms: Option<i64>,
}

impl CqSpec {
    pub fn to_metadata(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        m.insert(
            "stream".to_string(),
            serde_json::Value::String(self.stream.clone()),
        );
        m.insert(
            "size_ms".to_string(),
            serde_json::Value::from(self.window.size_ms),
        );
        m.insert(
            "slide_ms".to_string(),
            serde_json::Value::from(self.window.slide_ms),
        );
        m.insert(
            "sink".to_string(),
            serde_json::Value::String(self.sink.clone()),
        );
        m.insert(
            "query_sql".to_string(),
            serde_json::Value::String(self.query_sql.clone()),
        );
        if let Some(w) = &self.when_sql {
            m.insert("when_sql".to_string(), serde_json::Value::String(w.clone()));
        }
        if let Some(h) = &self.hold_model {
            m.insert(
                "hold_model".to_string(),
                serde_json::Value::String(h.clone()),
            );
        }
        if let Some(r) = &self.retrain_model {
            m.insert(
                "retrain_model".to_string(),
                serde_json::Value::String(r.clone()),
            );
        }
        if let Some(n) = self.next_emit_ms {
            m.insert("next_emit_ms".to_string(), serde_json::Value::from(n));
        }
        serde_json::Value::Object(m)
    }

    pub fn from_metadata(v: &serde_json::Value) -> Result<CqSpec> {
        let s = |k: &str| -> Result<String> {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| SqlError::Catalog(format!("cq metadata missing {k}")))
        };
        let i = |k: &str| -> Result<i64> {
            v.get(k)
                .and_then(|x| x.as_i64())
                .ok_or_else(|| SqlError::Catalog(format!("cq metadata missing {k}")))
        };
        Ok(CqSpec {
            stream: s("stream")?,
            window: WindowSpec {
                size_ms: i("size_ms")?,
                slide_ms: i("slide_ms")?,
            },
            sink: s("sink")?,
            query_sql: s("query_sql")?,
            when_sql: v.get("when_sql").and_then(|x| x.as_str()).map(str::to_string),
            hold_model: v
                .get("hold_model")
                .and_then(|x| x.as_str())
                .map(str::to_string),
            retrain_model: v
                .get("retrain_model")
                .and_then(|x| x.as_str())
                .map(str::to_string),
            next_emit_ms: v.get("next_emit_ms").and_then(|x| x.as_i64()),
        })
    }
}

/// Validate a window spec at CREATE time: positive sizes, slide no larger
/// than size, and size a multiple of slide (keeps window starts aligned
/// and the emission cursor arithmetic exact).
pub fn validate_window(w: &WindowSpec) -> Result<()> {
    if w.size_ms <= 0 || w.slide_ms <= 0 {
        return Err(SqlError::Plan(
            "window size and slide must be positive".into(),
        ));
    }
    if w.slide_ms > w.size_ms {
        return Err(SqlError::Plan(
            "window slide must not exceed window size".into(),
        ));
    }
    if w.size_ms % w.slide_ms != 0 {
        return Err(SqlError::Plan(
            "window size must be a multiple of the slide".into(),
        ));
    }
    Ok(())
}

/// Shape-check the CQ's SELECT at CREATE time: a single-table aggregate
/// over the stream, with none of the features the incremental runtime
/// cannot reproduce bit-equal to the batch plan (set ops, ORDER BY/LIMIT,
/// DISTINCT projection, joins, subqueries).
pub fn validate_cq_query(q: &Query, stream: &str) -> Result<()> {
    if !q.unions.is_empty() {
        return Err(SqlError::Plan("continuous query cannot use UNION".into()));
    }
    if !q.order_by.is_empty() || q.limit.is_some() || q.offset.is_some() {
        return Err(SqlError::Plan(
            "continuous query cannot use ORDER BY / LIMIT / OFFSET".into(),
        ));
    }
    if q.select.distinct {
        return Err(SqlError::Plan(
            "continuous query cannot use SELECT DISTINCT".into(),
        ));
    }
    if q.select.from.len() != 1 {
        return Err(SqlError::Plan(
            "continuous query must read exactly one stream".into(),
        ));
    }
    match &q.select.from[0] {
        TableRef::Table { name, version, .. } => {
            if !name.eq_ignore_ascii_case(stream) {
                return Err(SqlError::Plan(format!(
                    "continuous query must read stream '{stream}', found '{name}'"
                )));
            }
            if version.is_some() {
                return Err(SqlError::Plan(
                    "continuous query cannot pin a stream VERSION".into(),
                ));
            }
        }
        _ => {
            return Err(SqlError::Plan(
                "continuous query FROM must be the stream itself".into(),
            ))
        }
    }
    if q.select.group_by.is_empty() {
        // A global aggregate (no GROUP BY) is fine; but a bare projection
        // with no aggregate at all is not a windowed aggregate.
    }
    let mut has_subquery = false;
    let mut check_expr = |e: &Expr| {
        e.walk(&mut |x| {
            if matches!(
                x,
                Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. }
            ) {
                has_subquery = true;
            }
        });
    };
    for item in &q.select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            check_expr(expr);
        } else {
            return Err(SqlError::Plan(
                "continuous query projection cannot use '*'".into(),
            ));
        }
    }
    if let Some(e) = &q.select.selection {
        check_expr(e);
    }
    if let Some(e) = &q.select.having {
        check_expr(e);
    }
    for e in &q.select.group_by {
        check_expr(e);
    }
    if has_subquery {
        return Err(SqlError::Plan(
            "continuous query cannot contain subqueries".into(),
        ));
    }
    Ok(())
}

/// A continuous query compiled against the current catalog and provider:
/// physical expressions for every stage of the per-window pipeline.
/// Recompiled whenever the engine's options epoch moves (the provider or
/// exec options changed under it).
pub struct CompiledCq {
    /// Index of the event-time column in the stream schema.
    pub et_index: usize,
    /// WHERE predicate over stream rows (applied before windowing).
    pub where_pred: Option<PhysExpr>,
    /// Group-by expressions over stream rows.
    pub group_exprs: Vec<PhysExpr>,
    /// Aggregate argument expressions over stream rows (None = COUNT(*)).
    pub agg_args: Vec<Option<PhysExpr>>,
    /// Aggregate calls, positionally matching `agg_args`.
    pub agg_calls: Vec<AggCall>,
    /// Schema of the aggregate output (#g0.. group cols, #a0.. agg cols).
    pub agg_schema: Arc<Schema>,
    /// HAVING predicate over the aggregate output.
    pub having: Option<PhysExpr>,
    /// Projection expressions over the aggregate output. PREDICT calls
    /// here route each closed window through the batched serving kernel.
    pub proj_exprs: Vec<PhysExpr>,
    /// Schema of the projection (the sink columns after window_start).
    pub proj_schema: Arc<Schema>,
    /// Models referenced by PREDICT calls in the projection.
    pub predict_models: Vec<String>,
    /// Breach predicate compiled against the sink schema.
    pub when_pred: Option<PhysExpr>,
    /// Sink table schema: window_start INT, then the projection columns.
    pub sink_schema: Schema,
}

/// Compile a continuous query's stored SQL against a catalog snapshot.
/// PREDICT calls still carrying `Auto` are pinned to the `Batched`
/// strategy — each closed window is re-scored through the batched serving
/// kernel, the prepared/batched path the serving tier uses.
pub fn compile_cq(spec: &CqSpec, catalog: &Catalog, provider: &dyn InferenceProvider) -> Result<CompiledCq> {
    let query = crate::parser::parse_statement(&spec.query_sql).and_then(|s| match s {
        crate::ast::Statement::Query(q) => Ok(q),
        _ => Err(SqlError::Plan("stored continuous query is not a SELECT".into())),
    })?;
    validate_cq_query(&query, &spec.stream)?;
    let ctx = PlanContext::new(catalog, provider);
    let plan = plan_query(&query, &ctx)?;

    // Canonical aggregate shape straight from the planner (never
    // optimized, so the structure is stable):
    // Project(Filter[having]?(Aggregate(Filter[where]?(Scan))))
    let (proj_exprs_ast, proj_schema, rest) = match plan {
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => (exprs, schema, *input),
        _ => {
            return Err(SqlError::Plan(
                "continuous query must project its aggregate".into(),
            ))
        }
    };
    let (having_ast, rest) = match rest {
        LogicalPlan::Filter { input, predicate } => (Some(predicate), *input),
        other => (None, other),
    };
    let (group_ast, agg_calls, agg_schema, rest) = match rest {
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => (group, aggs, schema, *input),
        _ => {
            return Err(SqlError::Plan(
                "continuous query must contain an aggregate (GROUP BY or \
                 aggregate functions)"
                    .into(),
            ))
        }
    };
    let (where_ast, scan) = match rest {
        LogicalPlan::Filter { input, predicate } => (Some(predicate), *input),
        other => (None, other),
    };
    let stream_schema = match scan {
        LogicalPlan::Scan { schema, .. } => schema,
        _ => {
            return Err(SqlError::Plan(
                "continuous query must aggregate directly over the stream".into(),
            ))
        }
    };

    let stream_spec = StreamSpec::from_metadata(
        &catalog
            .extension(STREAM_KIND, &spec.stream)?
            .current()
            .metadata,
    )?;
    let et_index = stream_schema
        .index_of(&stream_spec.event_time)
        .ok_or_else(|| {
            SqlError::Plan(format!(
                "stream '{}' lost its event-time column '{}'",
                spec.stream, stream_spec.event_time
            ))
        })?;

    // Pin PREDICT Auto -> Batched and remember the referenced models.
    let mut predict_models = Vec::new();
    let pin = |e: &Expr, models: &mut Vec<String>| -> Result<Expr> {
        let mut out = Vec::new();
        let rewritten = crate::plan::rewrite_expr(e.clone(), &mut |x| {
            Ok(match x {
                Expr::Predict {
                    model,
                    args,
                    strategy: crate::ast::PredictStrategy::Auto,
                } => {
                    out.push(model.clone());
                    Expr::Predict {
                        model,
                        args,
                        strategy: crate::ast::PredictStrategy::Batched,
                    }
                }
                Expr::Predict { model, args, strategy } => {
                    out.push(model.clone());
                    Expr::Predict { model, args, strategy }
                }
                other => other,
            })
        })?;
        models.extend(out);
        Ok(rewritten)
    };

    let where_pred = where_ast
        .map(|e| PhysExpr::compile(&e, &stream_schema, provider))
        .transpose()?;
    let group_exprs = group_ast
        .iter()
        .map(|e| PhysExpr::compile(e, &stream_schema, provider))
        .collect::<Result<Vec<_>>>()?;
    let agg_args = agg_calls
        .iter()
        .map(|a| {
            a.arg
                .as_ref()
                .map(|e| PhysExpr::compile(e, &stream_schema, provider))
                .transpose()
        })
        .collect::<Result<Vec<_>>>()?;
    let having = having_ast
        .map(|e| PhysExpr::compile(&e, &agg_schema, provider))
        .transpose()?;
    let proj_exprs = proj_exprs_ast
        .iter()
        .map(|e| {
            let pinned = pin(e, &mut predict_models)?;
            PhysExpr::compile(&pinned, &agg_schema, provider)
        })
        .collect::<Result<Vec<_>>>()?;

    let mut sink_cols = vec![ColumnDef::new("window_start", DataType::Int)];
    sink_cols.extend(proj_schema.columns().iter().cloned());
    let sink_schema = Schema::new(sink_cols);

    let when_pred = spec
        .when_sql
        .as_deref()
        .map(|w| {
            let e = crate::parser::parse_expr(w)?;
            PhysExpr::compile(&e, &sink_schema, provider)
        })
        .transpose()?;

    Ok(CompiledCq {
        et_index,
        where_pred,
        group_exprs,
        agg_args,
        agg_calls,
        agg_schema,
        having,
        proj_exprs,
        proj_schema,
        predict_models,
        when_pred,
        sink_schema,
    })
}
