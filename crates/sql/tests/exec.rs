//! Edge-case tests of the physical execution layer.

use flock_sql::ast::PredictStrategy;
use flock_sql::exec::ExecOptions;
use flock_sql::{Database, Value};

fn db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE nums (x INT, y DOUBLE, s VARCHAR)").unwrap();
    db.execute(
        "INSERT INTO nums VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, NULL, 'c'), \
         (4, 4.5, NULL), (5, 5.5, 'e')",
    )
    .unwrap();
    db
}

#[test]
fn empty_table_operators() {
    let db = Database::new();
    db.execute("CREATE TABLE e (a INT, b VARCHAR)").unwrap();
    // every operator must handle zero rows
    assert_eq!(db.query("SELECT * FROM e").unwrap().num_rows(), 0);
    assert_eq!(
        db.query("SELECT COUNT(*), SUM(a) FROM e").unwrap().column(0).get(0),
        Value::Int(0)
    );
    assert!(db
        .query("SELECT SUM(a) FROM e")
        .unwrap()
        .column(0)
        .get(0)
        .is_null());
    assert_eq!(db.query("SELECT a FROM e ORDER BY a").unwrap().num_rows(), 0);
    assert_eq!(db.query("SELECT DISTINCT b FROM e").unwrap().num_rows(), 0);
    assert_eq!(
        db.query("SELECT b, COUNT(*) FROM e GROUP BY b").unwrap().num_rows(),
        0,
        "grouped aggregate over empty input has no groups"
    );
    db.execute("CREATE TABLE f (a INT)").unwrap();
    assert_eq!(
        db.query("SELECT * FROM e, f").unwrap().num_rows(),
        0,
        "cross join with empty side"
    );
    assert_eq!(
        db.query("SELECT * FROM e JOIN f ON e.a = f.a").unwrap().num_rows(),
        0
    );
    // left join: empty left -> empty output
    assert_eq!(
        db.query("SELECT * FROM e LEFT JOIN f ON e.a = f.a").unwrap().num_rows(),
        0
    );
}

#[test]
fn limit_and_offset_out_of_bounds() {
    let db = db();
    assert_eq!(db.query("SELECT x FROM nums LIMIT 100").unwrap().num_rows(), 5);
    assert_eq!(db.query("SELECT x FROM nums LIMIT 0").unwrap().num_rows(), 0);
    assert_eq!(
        db.query("SELECT x FROM nums LIMIT 10 OFFSET 99").unwrap().num_rows(),
        0
    );
    assert_eq!(
        db.query("SELECT x FROM nums ORDER BY x LIMIT 2 OFFSET 4")
            .unwrap()
            .num_rows(),
        1
    );
}

#[test]
fn nulls_in_join_keys_never_match() {
    let db = Database::new();
    db.execute("CREATE TABLE l (k INT)").unwrap();
    db.execute("INSERT INTO l VALUES (1), (NULL), (2)").unwrap();
    db.execute("CREATE TABLE r (k INT)").unwrap();
    db.execute("INSERT INTO r VALUES (NULL), (2), (3)").unwrap();
    let b = db
        .query("SELECT l.k FROM l JOIN r ON l.k = r.k")
        .unwrap();
    assert_eq!(b.num_rows(), 1);
    assert_eq!(b.column(0).get(0), Value::Int(2));
    // left join keeps null-key rows unmatched
    let b = db
        .query("SELECT l.k, r.k FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.k")
        .unwrap();
    assert_eq!(b.num_rows(), 3);
    assert!(b.column(1).get(0).is_null(), "NULL key row null-extended");
}

#[test]
fn duplicate_join_matches_multiply() {
    let db = Database::new();
    db.execute("CREATE TABLE a (k INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (1)").unwrap();
    db.execute("CREATE TABLE b (k INT)").unwrap();
    db.execute("INSERT INTO b VALUES (1), (1), (1)").unwrap();
    let rows = db
        .query("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k")
        .unwrap();
    assert_eq!(rows.column(0).get(0), Value::Int(6));
}

#[test]
fn non_equi_join_condition() {
    let db = Database::new();
    db.execute("CREATE TABLE lo (v INT)").unwrap();
    db.execute("INSERT INTO lo VALUES (1), (5), (9)").unwrap();
    db.execute("CREATE TABLE hi (w INT)").unwrap();
    db.execute("INSERT INTO hi VALUES (4), (8)").unwrap();
    let b = db
        .query("SELECT v, w FROM lo JOIN hi ON lo.v < hi.w ORDER BY v, w")
        .unwrap();
    // pairs: (1,4), (1,8), (5,8)
    assert_eq!(b.num_rows(), 3);
    assert_eq!(b.row(2), vec![Value::Int(5), Value::Int(8)]);
}

#[test]
fn sort_null_and_mixed_ordering() {
    // Regression test: ORDER BY used to put NULLs first ascending. The
    // documented default is NULLS LAST (ascending); DESC reverses the whole
    // order, so NULLs come first descending — PostgreSQL semantics.
    let db = db();
    let b = db.query("SELECT y FROM nums ORDER BY y").unwrap();
    assert!(
        b.column(0).get(b.num_rows() - 1).is_null(),
        "NULLs sort last ascending"
    );
    assert_eq!(b.column(0).get(0), Value::Float(1.5));
    let b = db.query("SELECT y FROM nums ORDER BY y DESC").unwrap();
    assert!(b.column(0).get(0).is_null(), "NULLs first descending");
    assert_eq!(b.column(0).get(b.num_rows() - 1), Value::Float(1.5));
}

#[test]
fn sort_places_nan_between_numbers_and_null() {
    let db = Database::new();
    db.execute("CREATE TABLE f (v DOUBLE)").unwrap();
    db.execute("INSERT INTO f VALUES (1.0), (NULL), (SQRT(-1.0)), (-1.0)")
        .unwrap();
    let b = db.query("SELECT v FROM f ORDER BY v").unwrap();
    assert_eq!(b.column(0).get(0), Value::Float(-1.0));
    assert_eq!(b.column(0).get(1), Value::Float(1.0));
    assert!(matches!(b.column(0).get(2), Value::Float(f) if f.is_nan()));
    assert!(b.column(0).get(3).is_null(), "NULL sorts after NaN ascending");
    let b = db.query("SELECT v FROM f ORDER BY v DESC").unwrap();
    assert!(b.column(0).get(0).is_null());
    assert!(matches!(b.column(0).get(1), Value::Float(f) if f.is_nan()));
    assert_eq!(b.column(0).get(3), Value::Float(-1.0));
}

#[test]
fn serial_and_parallel_exec_options_agree() {
    let db = db();
    let q = "SELECT x * 2, UPPER(s) FROM nums WHERE x > 1 ORDER BY x";
    db.set_exec_options(ExecOptions::serial());
    let serial = db.query(q).unwrap();
    db.set_exec_options(ExecOptions {
        threads: 4,
        parallel_row_threshold: 1,
        morsel_rows: 2,
        default_predict: PredictStrategy::Parallel(4),
        ..ExecOptions::default()
    });
    let parallel = db.query(q).unwrap();
    assert_eq!(serial.num_rows(), parallel.num_rows());
    for r in 0..serial.num_rows() {
        for (a, b) in serial.row(r).iter().zip(parallel.row(r)) {
            // group_eq: NULL == NULL (Value's SQL PartialEq has NULL != NULL)
            assert!(a.group_eq(&b), "row {r}: {a:?} vs {b:?}");
        }
    }
}

#[test]
fn group_by_expression_keys() {
    let db = db();
    let b = db
        .query("SELECT x % 2, COUNT(*) FROM nums GROUP BY x % 2 ORDER BY 1")
        .unwrap();
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.column(1).get(0), Value::Int(2)); // evens: 2, 4
    assert_eq!(b.column(1).get(1), Value::Int(3)); // odds: 1, 3, 5
}

#[test]
fn having_without_group_by() {
    let db = db();
    let some = db
        .query("SELECT COUNT(*) FROM nums HAVING COUNT(*) > 3")
        .unwrap();
    assert_eq!(some.num_rows(), 1);
    let none = db
        .query("SELECT COUNT(*) FROM nums HAVING COUNT(*) > 100")
        .unwrap();
    assert_eq!(none.num_rows(), 0);
}

#[test]
fn string_functions_on_null_rows() {
    let db = db();
    let b = db
        .query("SELECT UPPER(s), LENGTH(s) FROM nums ORDER BY x")
        .unwrap();
    assert!(b.column(0).get(3).is_null());
    assert!(b.column(1).get(3).is_null());
    assert_eq!(b.column(0).get(0), Value::Text("A".into()));
}

#[test]
fn three_way_join_chain() {
    let db = Database::new();
    db.execute("CREATE TABLE t1 (a INT)").unwrap();
    db.execute("CREATE TABLE t2 (a INT, b INT)").unwrap();
    db.execute("CREATE TABLE t3 (b INT, label VARCHAR)").unwrap();
    db.execute("INSERT INTO t1 VALUES (1), (2)").unwrap();
    db.execute("INSERT INTO t2 VALUES (1, 10), (2, 20)").unwrap();
    db.execute("INSERT INTO t3 VALUES (10, 'ten'), (20, 'twenty')").unwrap();
    let b = db
        .query(
            "SELECT t1.a, t3.label FROM t1 \
             JOIN t2 ON t1.a = t2.a JOIN t3 ON t2.b = t3.b ORDER BY t1.a",
        )
        .unwrap();
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.column(1).get(1), Value::Text("twenty".into()));
}

#[test]
fn division_and_modulo_by_zero_error_cleanly() {
    let db = db();
    assert!(db.query("SELECT x / 0 FROM nums").is_err());
    assert!(db.query("SELECT x % 0 FROM nums").is_err());
    // but only when rows actually flow through the expression
    let ok = db.query("SELECT x / 0 FROM nums WHERE x > 100");
    assert!(ok.is_ok(), "no rows -> no evaluation -> no error");
}

#[test]
fn float_modulo_by_zero_errors_like_integer_modulo() {
    // Regression test: `x % 0.0` is NaN in IEEE hardware, so the float
    // path used to silently return NaN while `x / 0.0` (and the integer
    // paths) raised "division by zero". Both paths now raise the same
    // typed error, in the vectorized column path and in scalar evaluation.
    let db = db();
    for q in [
        "SELECT y % 0.0 FROM nums",     // vectorized: column % literal
        "SELECT 5.5 % 0.0 FROM nums",   // scalar: literal % literal
        "SELECT x % 0.0 FROM nums",     // int column coerced to float
        "SELECT y % (1.0 - 1.0) FROM nums", // folded-to-zero divisor
    ] {
        let err = db.query(q).unwrap_err();
        assert!(
            err.to_string().contains("division by zero"),
            "{q}: expected division-by-zero, got {err}"
        );
    }
    // NULL propagation is unchanged: NULL divisor/dividend yields NULL,
    // not an error, matching the integer semantics.
    for q in [
        "SELECT y % NULL FROM nums",
        "SELECT NULL % 2.0 FROM nums",
        "SELECT x % NULL FROM nums",
    ] {
        let b = db.query(q).unwrap();
        for r in 0..b.num_rows() {
            assert!(b.column(0).get(r).is_null(), "{q}: row {r}");
        }
    }
    // A NULL *value* in the column still propagates per row while other
    // rows evaluate normally, and no NaN ever escapes.
    let b = db.query("SELECT y % 2.0 FROM nums ORDER BY x").unwrap();
    assert_eq!(b.column(0).get(0), Value::Float(1.5));
    assert!(b.column(0).get(2).is_null(), "NULL y row propagates NULL");
    for r in 0..b.num_rows() {
        if let Value::Float(f) = b.column(0).get(r) {
            assert!(!f.is_nan(), "row {r}: modulo leaked a NaN");
        }
    }
}

#[test]
fn case_without_else_yields_null() {
    let db = db();
    let b = db
        .query("SELECT CASE WHEN x > 3 THEN 'big' END FROM nums ORDER BY x")
        .unwrap();
    assert!(b.column(0).get(0).is_null());
    assert_eq!(b.column(0).get(4), Value::Text("big".into()));
}

#[test]
fn distinct_treats_nulls_as_one_group() {
    let db = Database::new();
    db.execute("CREATE TABLE d (v INT)").unwrap();
    db.execute("INSERT INTO d VALUES (NULL), (NULL), (1), (1)").unwrap();
    let b = db.query("SELECT DISTINCT v FROM d").unwrap();
    assert_eq!(b.num_rows(), 2);
}
