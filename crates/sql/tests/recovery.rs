//! Crash-recovery tests: a deterministic fault-injection harness that
//! kills the "process" at every write/fsync boundary of a mixed workload
//! and asserts the recovered state is bit-identical to a committed prefix
//! of the reference run. Also covers torn tails (mid-record truncation),
//! byte-flip corruption, missing/corrupt checkpoints, and the lineage pin
//! guard on `truncate_table_history`.

use flock_sql::{Database, DurabilityOptions, FailpointFs, MemFs, SqlError, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Number of steps in the deterministic workload.
const STEPS: usize = 16;

/// Apply workload step `i` against `db`. Every step is one autocommit
/// transaction (or a read that appends to the query log), so every
/// successful step is a valid recovery target.
fn apply_step(db: &Database, i: usize) -> flock_sql::Result<()> {
    let mut s = db.session("admin");
    match i {
        0 => s.execute("CREATE TABLE t (a INT, b DOUBLE, s VARCHAR)").map(|_| ()),
        1 => s
            .execute("INSERT INTO t VALUES (1, 1.5, 'x'), (2, 2.5, 'y')")
            .map(|_| ()),
        2 => s.execute("INSERT INTO t VALUES (3, NULL, NULL)").map(|_| ()),
        3 => s.execute("UPDATE t SET b = 9.5 WHERE a = 2").map(|_| ()),
        4 => s.execute("DELETE FROM t WHERE a = 1").map(|_| ()),
        5 => s.execute("ALTER TABLE t ADD COLUMN c INT").map(|_| ()),
        6 => s.execute("CREATE VIEW v AS SELECT a, b FROM t").map(|_| ()),
        7 => s.execute("CREATE TABLE scratch (z INT)").map(|_| ()),
        8 => s.execute("DROP TABLE scratch").map(|_| ()),
        9 => s.execute("CREATE USER analyst").map(|_| ()),
        10 => s.execute("GRANT SELECT ON TABLE t TO analyst").map(|_| ()),
        11 => s.execute("SELECT a, b FROM t ORDER BY a").map(|_| ()),
        12 => s.create_extension_object(
            "model",
            "churn",
            vec![1, 2, 3],
            serde_json::from_str(
                r#"{"lineage": {"training_table": "t", "training_table_version": 3}}"#,
            )
            .unwrap(),
        ),
        13 => s
            .update_extension_object(
                "model",
                "churn",
                vec![4, 5, 6],
                serde_json::from_str(r#"{"note": "retrained"}"#).unwrap(),
            )
            .map(|_| ()),
        14 => s.execute("INSERT INTO t VALUES (7, 7.5, 'z', 70)").map(|_| ()),
        15 => s.execute("SELECT COUNT(*) FROM v").map(|_| ()),
        _ => unreachable!("workload has {STEPS} steps"),
    }
}

fn opts_fsync() -> DurabilityOptions {
    DurabilityOptions {
        fsync_on_commit: true,
        checkpoint_every_commits: 4,
        keep_checkpoints: 2,
    }
}

/// Count how many durable-fs mutations the workload performs under `opts`.
fn count_ops(opts: DurabilityOptions) -> u64 {
    let mem = MemFs::new();
    let fp = FailpointFs::new(mem, u64::MAX);
    let db = Database::open_with_fs(fp.clone(), opts).unwrap();
    for i in 0..STEPS {
        apply_step(&db, i).unwrap();
    }
    fp.ops_attempted()
}

/// The kill-point matrix: for every write/fsync boundary `k`, run the
/// workload until the injected kill, take the crash image (only fsynced
/// bytes survive), recover, and check the recovered state.
///
/// Recovery targets are the digests of *this* run after each statement
/// (audit/query-log timestamps make digests run-specific), so "recovered a
/// committed prefix" means: bit-identical to the state some prefix of the
/// workload's acknowledged commits produced.
fn kill_matrix(opts: DurabilityOptions, exact_when_fsync: bool) {
    let total_ops = count_ops(opts);
    assert!(total_ops > 10, "workload too small to exercise kill points");

    for k in 0..=total_ops {
        let mem = MemFs::new();
        let fp = FailpointFs::new(mem.clone(), k);
        // Opening an empty database performs no durable writes, so it must
        // survive any kill point.
        let db = Database::open_with_fs(fp.clone(), opts)
            .unwrap_or_else(|e| panic!("open failed at kill point {k}: {e}"));
        let mut prefix_digests: HashSet<u64> = HashSet::from([db.state_digest()]);
        let mut steps_ok = 0usize;
        for i in 0..STEPS {
            match apply_step(&db, i) {
                Ok(()) => {
                    steps_ok += 1;
                    prefix_digests.insert(db.state_digest());
                }
                Err(e) => {
                    // Failures are legitimate only once the kill point has
                    // fired (the failed commit, or a cascade from an earlier
                    // step that never committed).
                    assert!(
                        fp.killed(),
                        "kill point {k} step {i}: failed before the kill: {e}"
                    );
                    prefix_digests.insert(db.state_digest());
                }
            }
        }
        let survivor = db.state_digest();

        // Recover from what survived the crash.
        let image = mem.crash_image();
        let rec = Database::open_with_fs(image, opts)
            .unwrap_or_else(|e| panic!("recovery failed at kill point {k}: {e}"));
        let recovered = rec.state_digest();

        assert!(
            prefix_digests.contains(&recovered),
            "kill point {k}: recovered digest {recovered:#x} is not any \
             committed prefix of the run ({steps_ok} steps committed)"
        );
        if exact_when_fsync {
            // fsync-on-commit: every acknowledged commit was synced before
            // install, so recovery reproduces the killed instance's memory
            // bit for bit.
            assert_eq!(
                recovered, survivor,
                "kill point {k}: fsynced recovery diverged from the \
                 surviving in-memory state ({steps_ok} steps committed)"
            );
        }
    }
}

#[test]
fn kill_point_matrix_fsync_recovers_exactly() {
    kill_matrix(opts_fsync(), true);
}

#[test]
fn kill_point_matrix_buffered_recovers_a_committed_prefix() {
    // Without fsync-on-commit a crash may lose a suffix of acknowledged
    // commits, but recovery must still land on a committed prefix.
    let opts = DurabilityOptions {
        fsync_on_commit: false,
        checkpoint_every_commits: 4,
        keep_checkpoints: 2,
    };
    kill_matrix(opts, false);
}

#[test]
fn clean_shutdown_reopen_is_bit_identical_and_writes_nothing() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    for i in 0..STEPS {
        apply_step(&db, i).unwrap();
    }
    let final_digest = db.state_digest();
    drop(db);

    let image = mem.clean_image();
    let before: Vec<(String, Vec<u8>)> = image
        .file_names()
        .into_iter()
        .map(|n| (n.clone(), image.file(&n).unwrap()))
        .collect();

    // Reopen through a counting failpoint that never fires: recovery of a
    // cleanly shut down database must not write a single byte.
    let fp = FailpointFs::new(image.clone(), u64::MAX);
    let db2 = Database::open_with_fs(fp.clone(), opts).unwrap();
    assert_eq!(db2.state_digest(), final_digest, "clean reopen must be bit-identical");
    assert_eq!(
        fp.ops_attempted(),
        0,
        "recovery of a clean log must not perform any durable writes"
    );
    let after: Vec<(String, Vec<u8>)> = image
        .file_names()
        .into_iter()
        .map(|n| (n.clone(), image.file(&n).unwrap()))
        .collect();
    assert_eq!(before, after, "reopen must leave the on-disk image untouched");
}

/// Frame boundaries (byte offsets) of a WAL segment:
/// `[len: u32 LE][checksum: u64 LE][payload]` per record.
fn frame_boundaries(segment: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut pos = 0usize;
    while pos + 12 <= segment.len() {
        let len = u32::from_le_bytes(segment[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 12 + len;
        if end > segment.len() {
            break;
        }
        pos = end;
        offsets.push(pos);
    }
    offsets
}

/// Build a single-segment image (checkpoints disabled) from the workload.
/// Returns the image, the segment name and bytes, the options, and the
/// digest of the live database at shutdown.
fn single_segment_image() -> (Arc<MemFs>, String, Vec<u8>, DurabilityOptions, u64) {
    let opts = DurabilityOptions {
        fsync_on_commit: true,
        checkpoint_every_commits: 0, // keep everything in one segment
        keep_checkpoints: 2,
    };
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    for i in 0..STEPS {
        apply_step(&db, i).unwrap();
    }
    let live = db.state_digest();
    drop(db);
    let image = mem.clean_image();
    let segments: Vec<String> = image
        .file_names()
        .into_iter()
        .filter(|n| n.starts_with("wal."))
        .collect();
    assert_eq!(segments.len(), 1, "expected one segment, got {segments:?}");
    let name = segments[0].clone();
    let bytes = image.file(&name).unwrap();
    (image, name, bytes, opts, live)
}

fn recover_digest(image: &Arc<MemFs>, opts: DurabilityOptions) -> u64 {
    Database::open_with_fs(image.clone(), opts)
        .expect("recovery must not fail")
        .state_digest()
}

#[test]
fn torn_tail_truncation_sweep_discards_partial_frames() {
    let (_, name, bytes, opts, _) = single_segment_image();
    let boundaries = frame_boundaries(&bytes);
    assert!(boundaries.len() > 10, "workload wrote too few records");

    // Digest recovered at each exact frame boundary.
    let mut boundary_digest = Vec::new();
    for &b in &boundaries {
        let img = MemFs::new();
        img.put_file(&name, bytes[..b].to_vec());
        boundary_digest.push(recover_digest(&img, opts));
    }

    // Truncating anywhere inside a frame must recover exactly the state of
    // the last complete frame before the cut. Sweep every boundary, its
    // neighbors, and a stride through the interior bytes.
    let mut cuts: Vec<usize> = Vec::new();
    for &b in &boundaries {
        cuts.extend([b, b.saturating_sub(1), b + 1]);
    }
    cuts.extend((0..bytes.len()).step_by(13));
    cuts.retain(|&c| c <= bytes.len());
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let img = MemFs::new();
        img.put_file(&name, bytes[..cut].to_vec());
        let got = recover_digest(&img, opts);
        // index of greatest boundary <= cut
        let idx = boundaries.partition_point(|&b| b <= cut) - 1;
        assert_eq!(
            got, boundary_digest[idx],
            "cut at byte {cut}: expected the state of frame boundary {} \
             (offset {})",
            idx, boundaries[idx]
        );
    }
}

#[test]
fn byte_flip_corruption_truncates_at_the_damaged_record() {
    let (_, name, bytes, opts, _) = single_segment_image();
    let boundaries = frame_boundaries(&bytes);
    let boundary_set: HashSet<u64> = boundaries
        .iter()
        .map(|&b| {
            let img = MemFs::new();
            img.put_file(&name, bytes[..b].to_vec());
            recover_digest(&img, opts)
        })
        .collect();

    for pos in (0..bytes.len()).step_by(11) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x40;
        let img = MemFs::new();
        img.put_file(&name, corrupted);
        // Recovery must neither fail nor surface torn state: the damaged
        // record and everything after it are discarded, landing on a state
        // that some clean prefix of the log also produces.
        let got = recover_digest(&img, opts);
        assert!(
            boundary_set.contains(&got),
            "flip at byte {pos}: recovered state matches no clean log prefix"
        );
    }
}

#[test]
fn recovery_without_any_checkpoint_replays_the_full_log() {
    // Pure WAL replay: no checkpoint file exists, so recovery starts from
    // an empty catalog and must replay the whole log to the final state.
    let (image, _, _, opts, live) = single_segment_image();
    assert!(
        !image.file_names().iter().any(|n| n.starts_with("checkpoint.")),
        "this test requires a checkpoint-free image"
    );
    assert_eq!(recover_digest(&image, opts), live);

    // Same workload with checkpointing on also recovers its own state.
    let opts_ck = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts_ck).unwrap();
    for i in 0..STEPS {
        apply_step(&db, i).unwrap();
    }
    let expect = db.state_digest();
    drop(db);
    assert_eq!(recover_digest(&mem.clean_image(), opts_ck), expect);
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_the_previous_one() {
    let opts = opts_fsync(); // checkpoint every 4 commits, keep 2
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    for i in 0..STEPS {
        apply_step(&db, i).unwrap();
    }
    let expect = db.state_digest();
    drop(db);
    let image = mem.clean_image();
    let mut checkpoints: Vec<String> = image
        .file_names()
        .into_iter()
        .filter(|n| n.starts_with("checkpoint."))
        .collect();
    checkpoints.sort();
    assert!(
        checkpoints.len() >= 2,
        "expected at least two retained checkpoints, got {checkpoints:?}"
    );
    let newest = checkpoints.last().unwrap().clone();

    // Corrupt the newest checkpoint: recovery must fall back to an older
    // one and replay the intervening segments to the same final state.
    let mut garbage = image.file(&newest).unwrap();
    let mid = garbage.len() / 2;
    garbage[mid] ^= 0xFF;
    image.put_file(&newest, garbage);
    assert_eq!(recover_digest(&image, opts), expect, "fallback after corruption");

    // Remove it entirely: same story.
    image.remove_file(&newest);
    assert_eq!(recover_digest(&image, opts), expect, "fallback after deletion");
}

#[test]
fn recovery_is_deterministic() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    for i in 0..STEPS {
        apply_step(&db, i).unwrap();
    }
    drop(db);
    let d1 = recover_digest(&mem.clean_image(), opts);
    let d2 = recover_digest(&mem.clean_image(), opts);
    assert_eq!(d1, d2);
}

#[test]
fn uncommitted_transaction_is_not_logged_and_not_recovered() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let committed = db.state_digest();

    let mut s = db.session("admin");
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (2)").unwrap();
    // crash with the transaction still open
    let image = mem.crash_image();
    let rec = Database::open_with_fs(image, opts).unwrap();
    // digest first: running queries on the recovered engine appends to its
    // (durable) query log, which is part of the state being digested
    assert_eq!(rec.state_digest(), committed);
    assert_eq!(
        rec.query("SELECT COUNT(*) FROM t").unwrap().column(0).get(0),
        Value::Int(1),
        "the uncommitted insert must not survive"
    );
}

#[test]
fn recovered_table_supports_time_travel_and_new_writes() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    drop(db);

    let img = mem.clean_image();
    let rec = Database::open_with_fs(img.clone(), opts).unwrap();
    // whole version chain restored, not just the tip
    assert_eq!(
        rec.query("SELECT COUNT(*) FROM t VERSION 2").unwrap().column(0).get(0),
        Value::Int(1)
    );
    assert_eq!(
        rec.query("SELECT COUNT(*) FROM t").unwrap().column(0).get(0),
        Value::Int(2)
    );
    // the recovered engine keeps logging: write, crash again, recover again
    rec.execute("INSERT INTO t VALUES (3)").unwrap();
    let digest = rec.state_digest();
    drop(rec);
    let rec2 = Database::open_with_fs(img.clean_image(), opts).unwrap();
    assert_eq!(rec2.state_digest(), digest);
    assert_eq!(
        rec2.query("SELECT COUNT(*) FROM t").unwrap().column(0).get(0),
        Value::Int(3)
    );
}

#[test]
fn audit_of_denied_access_survives_rollback_and_crash() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.execute("CREATE TABLE secrets (a INT)").unwrap();
    db.execute("CREATE USER intruder").unwrap();
    let mut s = db.session("intruder");
    assert!(matches!(
        s.execute("SELECT * FROM secrets"),
        Err(SqlError::AccessDenied(_))
    ));
    // the denial is audited even though the statement's txn aborted
    let denied = |a: &flock_sql::engine::AuditRecord| {
        a.user == "intruder" && a.action == "ACCESS DENIED"
    };
    assert!(db.audit_log().iter().any(denied));

    let rec = Database::open_with_fs(mem.crash_image(), opts).unwrap();
    assert!(
        rec.audit_log().iter().any(denied),
        "security audit records must survive a crash"
    );
}

#[test]
fn truncate_history_refuses_to_drop_lineage_pinned_versions() {
    let db = Database::new();
    db.execute("CREATE TABLE train (a INT)").unwrap();
    db.execute("INSERT INTO train VALUES (1)").unwrap();
    db.execute("INSERT INTO train VALUES (2)").unwrap();
    db.execute("INSERT INTO train VALUES (3)").unwrap();
    // versions now: 1 (empty), 2, 3, 4
    let mut s = db.session("admin");
    s.create_extension_object(
        "model",
        "m",
        vec![0xAB],
        serde_json::from_str(
            r#"{"lineage": {"training_table": "train", "training_table_version": 2}}"#,
        )
        .unwrap(),
    )
    .unwrap();

    // keep=2 would drop versions 1 and 2, but a deployed model trained on
    // version 2 pins it.
    let err = s.truncate_table_history("train", 2).unwrap_err();
    match err {
        SqlError::Constraint(msg) => {
            assert!(msg.contains("pinned"), "got: {msg}");
            assert!(msg.contains("2"), "should name the pinned version: {msg}");
        }
        other => panic!("expected constraint violation, got {other}"),
    }
    // keep=3 keeps the pinned version and succeeds.
    let dropped = s.truncate_table_history("train", 3).unwrap();
    assert_eq!(dropped, vec![1]);
    // once the model is gone the pin is lifted
    s.drop_extension_object("model", "m").unwrap();
    let dropped = s.truncate_table_history("train", 1).unwrap();
    assert_eq!(dropped, vec![2, 3]);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM train").unwrap().column(0).get(0),
        Value::Int(3)
    );
}

#[test]
fn truncate_history_is_durable() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    let mut s = db.session("admin");
    let dropped = s.truncate_table_history("t", 1).unwrap();
    assert_eq!(dropped, vec![1, 2]);
    let digest = db.state_digest();
    drop(s);
    drop(db);
    let rec = Database::open_with_fs(mem.crash_image(), opts).unwrap();
    assert_eq!(rec.state_digest(), digest);
    assert!(
        rec.query("SELECT * FROM t VERSION 1").is_err(),
        "truncated versions must stay truncated after recovery"
    );
}
