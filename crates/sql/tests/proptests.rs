//! Property-based tests of the SQL substrate invariants.

use flock_sql::exec::functions::like_match;
use flock_sql::types::{format_date, parse_date, Value};
use flock_sql::{DataType, Database};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and parser must never panic, whatever the input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = flock_sql::parser::parse_statement(&input);
        let _ = flock_sql::parser::parse_expr(&input);
        let _ = flock_sql::lexer::tokenize(&input);
    }

    /// SQL-ish inputs exercise deeper parser paths; still no panics.
    #[test]
    fn parser_survives_sql_shaped_garbage(
        kws in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("JOIN"), Just("ON"), Just("("), Just(")"),
                Just(","), Just("x"), Just("t"), Just("1"), Just("'s'"),
                Just("AND"), Just("="), Just("*"), Just("CASE"), Just("END"),
                Just("IN"), Just("NOT"), Just("NULL"), Just("AS"),
            ],
            0..30,
        )
    ) {
        let sql = kws.join(" ");
        let _ = flock_sql::parser::parse_statement(&sql);
    }

    /// Date conversion is a bijection over a wide range.
    #[test]
    fn date_roundtrip(days in -200_000i32..200_000) {
        let s = format_date(days);
        prop_assert_eq!(parse_date(&s), Some(days));
    }

    /// Casting a value to its own type is the identity.
    #[test]
    fn cast_to_own_type_is_identity(v in value_strategy()) {
        if let Some(t) = v.data_type() {
            let back = v.cast(t).unwrap();
            prop_assert!(back.group_eq(&v), "{:?} -> {:?}", v, back);
        }
    }

    /// Int -> Float -> Int roundtrips for safe magnitudes.
    #[test]
    fn int_float_roundtrip(i in -1_000_000_000i64..1_000_000_000) {
        let f = Value::Int(i).cast(DataType::Float).unwrap();
        let back = f.cast(DataType::Int).unwrap();
        prop_assert_eq!(back, Value::Int(i));
    }

    /// total_cmp is a total order: antisymmetric and transitive on triples.
    #[test]
    fn total_cmp_is_total_order(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// LIKE agrees with a simple reference implementation on %-only
    /// patterns.
    #[test]
    fn like_matches_reference_for_contains(
        text in "[a-c]{0,12}",
        needle in "[a-c]{0,4}",
    ) {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&text, &pattern), text.contains(&needle));
        // prefix / suffix forms
        prop_assert_eq!(
            like_match(&text, &format!("{needle}%")),
            text.starts_with(&needle)
        );
        prop_assert_eq!(
            like_match(&text, &format!("%{needle}")),
            text.ends_with(&needle)
        );
    }

    /// Inserted rows always come back in full, regardless of content.
    #[test]
    fn insert_select_roundtrip(
        rows in proptest::collection::vec(
            (any::<i32>(), -1e9f64..1e9, "[a-zA-Z0-9 ]{0,12}"),
            1..20,
        )
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (i INT, f DOUBLE, s VARCHAR)").unwrap();
        let values: Vec<String> = rows
            .iter()
            .map(|(i, f, s)| format!("({i}, {f:?}, '{s}')"))
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        let b = db.query("SELECT i, f, s FROM t").unwrap();
        prop_assert_eq!(b.num_rows(), rows.len());
        for (r, (i, f, s)) in rows.iter().enumerate() {
            prop_assert_eq!(b.column(0).get(r), Value::Int(*i as i64));
            let Value::Float(got) = b.column(1).get(r) else { panic!() };
            prop_assert!((got - f).abs() < 1e-9);
            prop_assert_eq!(b.column(2).get(r), Value::Text(s.clone()));
        }
    }

    /// ORDER BY produces a sorted permutation of the input.
    #[test]
    fn order_by_sorts_and_permutes(
        xs in proptest::collection::vec(-1000i64..1000, 1..40)
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        let values: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        let b = db.query("SELECT x FROM t ORDER BY x").unwrap();
        let got: Vec<i64> = (0..b.num_rows())
            .map(|r| b.column(0).get(r).as_i64().unwrap())
            .collect();
        let mut expected = xs.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Aggregates match straightforward recomputation.
    #[test]
    fn aggregates_match_reference(
        xs in proptest::collection::vec(-100i64..100, 1..50)
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        let values: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        let b = db
            .query("SELECT COUNT(*), SUM(x), MIN(x), MAX(x), AVG(x) FROM t")
            .unwrap();
        prop_assert_eq!(b.column(0).get(0), Value::Int(xs.len() as i64));
        prop_assert_eq!(b.column(1).get(0), Value::Int(xs.iter().sum()));
        prop_assert_eq!(b.column(2).get(0), Value::Int(*xs.iter().min().unwrap()));
        prop_assert_eq!(b.column(3).get(0), Value::Int(*xs.iter().max().unwrap()));
        let Value::Float(avg) = b.column(4).get(0) else { panic!() };
        let expected = xs.iter().sum::<i64>() as f64 / xs.len() as f64;
        prop_assert!((avg - expected).abs() < 1e-9);
    }

    /// WAL replay: whatever random mix of DDL/DML commits, crashing after
    /// a clean shutdown and recovering reproduces the state bit for bit,
    /// and crashing mid-run recovers a committed prefix.
    #[test]
    fn wal_replay_recovers_committed_state(
        steps in proptest::collection::vec(
            prop_oneof![
                (any::<i16>(), -1e3f64..1e3).prop_map(|(i, f)| format!("INSERT INTO t VALUES ({i}, {f:?})")),
                (-100i64..100).prop_map(|k| format!("UPDATE t SET f = f + 1.0 WHERE i > {k}")),
                (-100i64..100).prop_map(|k| format!("DELETE FROM t WHERE i = {k}")),
                Just("SELECT COUNT(*) FROM t".to_string()),
            ],
            1..12,
        ),
        kill_after in 0u64..40,
    ) {
        use flock_sql::{DurabilityOptions, FailpointFs, MemFs};
        let opts = DurabilityOptions {
            fsync_on_commit: true,
            checkpoint_every_commits: 3,
            keep_checkpoints: 2,
        };

        // Clean-shutdown roundtrip is exact.
        let mem = MemFs::new();
        let db = Database::open_with_fs(mem.clone(), opts).unwrap();
        db.execute("CREATE TABLE t (i INT, f DOUBLE)").unwrap();
        for s in &steps {
            db.execute(s).unwrap();
        }
        let live = db.state_digest();
        drop(db);
        let rec = Database::open_with_fs(mem.clean_image(), opts).unwrap();
        prop_assert_eq!(rec.state_digest(), live);

        // Mid-run kill recovers exactly the killed instance's committed
        // state (fsync-on-commit), which is some prefix of the workload.
        let mem = MemFs::new();
        let fp = FailpointFs::new(mem.clone(), kill_after);
        let db = Database::open_with_fs(fp, opts).unwrap();
        let mut digests = vec![db.state_digest()];
        if db.execute("CREATE TABLE t (i INT, f DOUBLE)").is_ok() {
            digests.push(db.state_digest());
            for s in &steps {
                let _ = db.execute(s);
                digests.push(db.state_digest());
            }
        }
        let survivor = db.state_digest();
        drop(db);
        let rec = Database::open_with_fs(mem.crash_image(), opts).unwrap();
        let recovered = rec.state_digest();
        prop_assert_eq!(recovered, survivor);
        prop_assert!(digests.contains(&recovered));
    }

    /// The optimizer never changes results on a family of generated
    /// filter + projection + sort queries.
    #[test]
    fn optimizer_preserves_generated_queries(
        threshold in -50i64..50,
        limit in 1usize..10,
        desc in any::<bool>(),
    ) {
        use flock_sql::optimizer::OptimizerConfig;
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        let values: Vec<String> = (0..40)
            .map(|i| format!("({}, {})", i - 20, (i * 7) % 23))
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        let q = format!(
            "SELECT a, b + 1 AS b1 FROM t WHERE a > {threshold} \
             ORDER BY b1 {}, a LIMIT {limit}",
            if desc { "DESC" } else { "ASC" }
        );
        db.set_optimizer_config(OptimizerConfig::default());
        let on = db.query(&q).unwrap();
        db.set_optimizer_config(OptimizerConfig::disabled());
        let off = db.query(&q).unwrap();
        prop_assert_eq!(on.num_rows(), off.num_rows());
        for r in 0..on.num_rows() {
            prop_assert_eq!(on.row(r), off.row(r));
        }
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Text),
        (-50_000i32..50_000).prop_map(Value::Date),
    ]
}
