//! End-to-end tests of the SQL engine: parse → plan → optimize → execute.

use flock_sql::types::parse_date;
use flock_sql::{Database, SqlError, Value};

fn db_with_people() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE people (id INT NOT NULL, name VARCHAR, age INT, salary DOUBLE, dept VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO people VALUES \
         (1, 'alice', 34, 95000.0, 'eng'), \
         (2, 'bob', 28, 72000.0, 'eng'), \
         (3, 'carol', 41, 120000.0, 'mgmt'), \
         (4, 'dan', 23, 51000.0, 'sales'), \
         (5, 'erin', 37, NULL, 'sales')",
    )
    .unwrap();
    db
}

#[test]
fn select_filter_project() {
    let db = db_with_people();
    let b = db
        .query("SELECT name, salary * 1.1 AS bumped FROM people WHERE age > 30 ORDER BY name")
        .unwrap();
    assert_eq!(b.num_rows(), 3);
    assert_eq!(b.schema().names(), vec!["name", "bumped"]);
    assert_eq!(b.column(0).get(0), Value::Text("alice".into()));
    let Value::Float(x) = b.column(1).get(0) else {
        panic!()
    };
    assert!((x - 104500.0).abs() < 1e-6);
    // NULL salary propagates
    assert!(b.column(1).get(2).is_null());
}

#[test]
fn select_star_and_limit_offset() {
    let db = db_with_people();
    let b = db
        .query("SELECT * FROM people ORDER BY id LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.column(0).get(0), Value::Int(2));
    assert_eq!(b.num_columns(), 5);
}

#[test]
fn aggregates_group_by_having() {
    let db = db_with_people();
    let b = db
        .query(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_sal, MAX(age) \
             FROM people GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept",
        )
        .unwrap();
    assert_eq!(b.num_rows(), 2); // eng, sales
    assert_eq!(b.column(0).get(0), Value::Text("eng".into()));
    assert_eq!(b.column(1).get(0), Value::Int(2));
    let Value::Float(avg) = b.column(2).get(0) else {
        panic!()
    };
    assert!((avg - 83500.0).abs() < 1e-6);
    // sales has one NULL salary -> AVG over the single non-null value
    let Value::Float(sales_avg) = b.column(2).get(1) else {
        panic!()
    };
    assert!((sales_avg - 51000.0).abs() < 1e-6);
}

#[test]
fn global_aggregate_without_group() {
    let db = db_with_people();
    let b = db
        .query("SELECT COUNT(*), SUM(salary), MIN(age), COUNT(salary) FROM people")
        .unwrap();
    assert_eq!(b.num_rows(), 1);
    assert_eq!(b.column(0).get(0), Value::Int(5));
    assert_eq!(b.column(3).get(0), Value::Int(4), "COUNT(col) skips NULL");
}

#[test]
fn count_distinct() {
    let db = db_with_people();
    let b = db.query("SELECT COUNT(DISTINCT dept) FROM people").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(3));
}

#[test]
fn order_by_aggregate_not_in_select() {
    let db = db_with_people();
    let b = db
        .query("SELECT dept FROM people GROUP BY dept ORDER BY COUNT(*) DESC, dept")
        .unwrap();
    assert_eq!(b.column(0).get(0), Value::Text("eng".into()));
    assert_eq!(b.num_columns(), 1, "hidden sort keys are dropped");
}

#[test]
fn joins_explicit_and_implicit() {
    let db = db_with_people();
    db.execute("CREATE TABLE depts (dept VARCHAR, floor INT)").unwrap();
    db.execute("INSERT INTO depts VALUES ('eng', 3), ('mgmt', 5), ('hr', 1)")
        .unwrap();

    // explicit JOIN .. ON
    let b = db
        .query(
            "SELECT p.name, d.floor FROM people p JOIN depts d ON p.dept = d.dept \
             ORDER BY p.name",
        )
        .unwrap();
    assert_eq!(b.num_rows(), 3); // alice, bob, carol
    assert_eq!(b.column(1).get(2), Value::Int(5));

    // implicit join via comma + WHERE
    let b2 = db
        .query(
            "SELECT p.name FROM people p, depts d \
             WHERE p.dept = d.dept AND d.floor = 3 ORDER BY p.name",
        )
        .unwrap();
    assert_eq!(b2.num_rows(), 2);

    // left join preserves unmatched rows with NULLs
    let b3 = db
        .query(
            "SELECT p.name, d.floor FROM people p LEFT JOIN depts d ON p.dept = d.dept \
             WHERE p.dept = 'sales' ORDER BY p.name",
        )
        .unwrap();
    assert_eq!(b3.num_rows(), 2);
    assert!(b3.column(1).get(0).is_null());
}

#[test]
fn self_join_with_aliases() {
    let db = db_with_people();
    let b = db
        .query(
            "SELECT a.name, b.name FROM people a JOIN people b ON a.dept = b.dept \
             WHERE a.id < b.id ORDER BY a.name",
        )
        .unwrap();
    // pairs within same dept: (alice,bob), (dan,erin)
    assert_eq!(b.num_rows(), 2);
}

#[test]
fn distinct_rows() {
    let db = db_with_people();
    let b = db.query("SELECT DISTINCT dept FROM people ORDER BY dept").unwrap();
    assert_eq!(b.num_rows(), 3);
}

#[test]
fn update_and_delete_create_versions() {
    let db = db_with_people();
    db.execute("UPDATE people SET salary = salary + 1000 WHERE dept = 'eng'")
        .unwrap();
    db.execute("DELETE FROM people WHERE id = 4").unwrap();

    let b = db.query("SELECT COUNT(*) FROM people").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(4));

    // time travel: version 2 (after initial insert) still has 5 rows
    let b = db.query("SELECT COUNT(*) FROM people VERSION 2").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(5));

    let catalog = db.catalog();
    let t = catalog.table("people").unwrap();
    assert_eq!(t.current_version(), 4); // create, insert, update, delete
}

#[test]
fn insert_from_select_and_column_list() {
    let db = db_with_people();
    db.execute("CREATE TABLE vips (id INT, name VARCHAR)").unwrap();
    db.execute("INSERT INTO vips SELECT id, name FROM people WHERE salary > 90000")
        .unwrap();
    let b = db.query("SELECT COUNT(*) FROM vips").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(2));

    db.execute("INSERT INTO vips (name) VALUES ('guest')").unwrap();
    let b = db
        .query("SELECT id FROM vips WHERE name = 'guest'")
        .unwrap();
    assert!(b.column(0).get(0).is_null(), "missing columns default NULL");
}

#[test]
fn not_null_constraint_enforced() {
    let db = db_with_people();
    let err = db.execute("INSERT INTO people (name) VALUES ('ghost')");
    assert!(matches!(err, Err(SqlError::Constraint(_))));
}

#[test]
fn transactions_commit_and_rollback() {
    let db = db_with_people();
    let mut s = db.session("admin");
    s.execute("BEGIN").unwrap();
    s.execute("DELETE FROM people").unwrap();
    let inside = s.query("SELECT COUNT(*) FROM people").unwrap();
    assert_eq!(inside.column(0).get(0), Value::Int(0));
    // other sessions still see the data
    let outside = db.query("SELECT COUNT(*) FROM people").unwrap();
    assert_eq!(outside.column(0).get(0), Value::Int(5));
    s.execute("ROLLBACK").unwrap();
    let after = db.query("SELECT COUNT(*) FROM people").unwrap();
    assert_eq!(after.column(0).get(0), Value::Int(5));

    s.execute("BEGIN").unwrap();
    s.execute("DELETE FROM people WHERE id = 1").unwrap();
    s.execute("COMMIT").unwrap();
    let after = db.query("SELECT COUNT(*) FROM people").unwrap();
    assert_eq!(after.column(0).get(0), Value::Int(4));
}

#[test]
fn write_write_conflict_detected() {
    let db = db_with_people();
    let mut s1 = db.session("admin");
    let mut s2 = db.session("admin");
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE people SET age = 99 WHERE id = 1").unwrap();
    s2.execute("UPDATE people SET age = 11 WHERE id = 2").unwrap();
    s1.execute("COMMIT").unwrap();
    let err = s2.execute("COMMIT");
    assert!(matches!(err, Err(SqlError::Transaction(_))));
}

#[test]
fn access_control_enforced_and_audited() {
    let db = db_with_people();
    db.execute("CREATE USER alice").unwrap();
    let mut alice = db.session("alice");
    let err = alice.query("SELECT * FROM people");
    assert!(matches!(err, Err(SqlError::AccessDenied(_))));

    db.execute("GRANT SELECT ON TABLE people TO alice").unwrap();
    alice.query("SELECT * FROM people").unwrap();
    let err = alice.execute("DELETE FROM people");
    assert!(matches!(err, Err(SqlError::AccessDenied(_))));

    db.execute("REVOKE SELECT ON TABLE people FROM alice").unwrap();
    assert!(alice.query("SELECT * FROM people").is_err());

    let audit = db.audit_log();
    assert!(audit.iter().any(|a| a.action == "ACCESS DENIED" && a.user == "alice"));
    assert!(audit.iter().any(|a| a.action == "GRANT"));
}

#[test]
fn views_expand() {
    let db = db_with_people();
    db.execute("CREATE VIEW engineers AS SELECT name, salary FROM people WHERE dept = 'eng'")
        .unwrap();
    let b = db.query("SELECT * FROM engineers ORDER BY name").unwrap();
    assert_eq!(b.num_rows(), 2);
    let b = db
        .query("SELECT e.name FROM engineers e WHERE e.salary > 80000")
        .unwrap();
    assert_eq!(b.num_rows(), 1);
}

#[test]
fn subqueries_in_where_and_from() {
    let db = db_with_people();
    let b = db
        .query(
            "SELECT name FROM people WHERE salary > (SELECT AVG(salary) FROM people) \
             ORDER BY name",
        )
        .unwrap();
    assert_eq!(b.num_rows(), 2); // alice, carol

    let b = db
        .query("SELECT name FROM people WHERE dept IN (SELECT dept FROM people WHERE age > 40)")
        .unwrap();
    assert_eq!(b.num_rows(), 1); // carol

    let b = db
        .query("SELECT COUNT(*) FROM (SELECT dept FROM people WHERE age > 25) t")
        .unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(4));
}

#[test]
fn exists_subquery() {
    let db = db_with_people();
    let b = db
        .query("SELECT COUNT(*) FROM people WHERE EXISTS (SELECT 1 FROM people WHERE age > 100)")
        .unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(0));
}

#[test]
fn scalar_expressions_and_functions() {
    let db = Database::new();
    let b = db
        .query("SELECT 1 + 2 * 3, UPPER('ab') || 'c', COALESCE(NULL, 42), ABS(-7)")
        .unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(7));
    assert_eq!(b.column(1).get(0), Value::Text("ABc".into()));
    assert_eq!(b.column(2).get(0), Value::Int(42));
    assert_eq!(b.column(3).get(0), Value::Int(7));
}

#[test]
fn date_literals_and_functions() {
    let db = Database::new();
    db.execute("CREATE TABLE ev (d DATE)").unwrap();
    db.execute("INSERT INTO ev VALUES ('1996-03-15'), ('1997-06-01')")
        .unwrap();
    let b = db
        .query("SELECT YEAR(d) FROM ev WHERE d >= DATE '1997-01-01'")
        .unwrap();
    assert_eq!(b.num_rows(), 1);
    assert_eq!(b.column(0).get(0), Value::Int(1997));
    let b = db.query("SELECT d + 17 FROM ev ORDER BY d LIMIT 1").unwrap();
    assert_eq!(
        b.column(0).get(0),
        Value::Date(parse_date("1996-04-01").unwrap())
    );
}

#[test]
fn explain_renders_plan() {
    let db = db_with_people();
    let res = db
        .execute("EXPLAIN SELECT name FROM people WHERE age > 30")
        .unwrap();
    let text: Vec<String> = {
        let b = res.batch.unwrap();
        (0..b.num_rows()).map(|i| b.column(0).get(i).to_string()).collect()
    };
    let joined = text.join("\n");
    assert!(joined.contains("Scan: people"));
    assert!(joined.contains("Filter:"));
    // projection pruning kicked in: scan carries a projection list
    assert!(joined.contains("projection="), "expected pruned scan: {joined}");
}

#[test]
fn query_log_records_reads_and_writes() {
    let db = db_with_people();
    db.query("SELECT * FROM people").unwrap();
    let log = db.query_log();
    let last = log.last().unwrap();
    assert_eq!(last.tables_read, vec!["people".to_string()]);
    let insert_entry = log
        .iter()
        .find(|e| e.kind == flock_sql::engine::StatementKind::Insert)
        .unwrap();
    assert_eq!(insert_entry.tables_written, vec!["people".to_string()]);
    assert_eq!(insert_entry.versions_written[0].1, 2);
}

#[test]
fn parameters_bind() {
    let db = db_with_people();
    let mut s = db.session("admin");
    let res = s
        .execute_with_params(
            "SELECT name FROM people WHERE age > ? AND dept = ?",
            &[Value::Int(30), Value::Text("eng".into())],
        )
        .unwrap();
    assert_eq!(res.batch.unwrap().num_rows(), 1);
}

#[test]
fn case_expressions_run() {
    let db = db_with_people();
    let b = db
        .query(
            "SELECT name, CASE WHEN age < 30 THEN 'young' WHEN age < 40 THEN 'mid' \
             ELSE 'senior' END AS bucket FROM people ORDER BY id",
        )
        .unwrap();
    assert_eq!(b.column(1).get(0), Value::Text("mid".into()));
    assert_eq!(b.column(1).get(3), Value::Text("young".into()));
    assert_eq!(b.column(1).get(2), Value::Text("senior".into()));
}

#[test]
fn failed_statement_aborts_transaction() {
    let db = db_with_people();
    let mut s = db.session("admin");
    s.execute("BEGIN").unwrap();
    s.execute("DELETE FROM people WHERE id = 1").unwrap();
    assert!(s.execute("SELECT * FROM nonexistent").is_err());
    assert!(!s.in_transaction(), "error aborts the transaction");
    // the delete was rolled back
    let b = db.query("SELECT COUNT(*) FROM people").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(5));
}

#[test]
fn in_list_and_between_and_like() {
    let db = db_with_people();
    let b = db
        .query("SELECT name FROM people WHERE dept IN ('eng', 'mgmt') ORDER BY name")
        .unwrap();
    assert_eq!(b.num_rows(), 3);
    let b = db
        .query("SELECT name FROM people WHERE age BETWEEN 28 AND 37 ORDER BY name")
        .unwrap();
    assert_eq!(b.num_rows(), 3);
    let b = db
        .query("SELECT name FROM people WHERE name LIKE '%a%' ORDER BY name")
        .unwrap();
    assert_eq!(b.num_rows(), 3); // alice, carol, dan
}

#[test]
fn show_tables_respects_grants() {
    let db = db_with_people();
    db.execute("CREATE TABLE secrets (k VARCHAR)").unwrap();
    db.execute("CREATE USER viewer").unwrap();
    db.execute("GRANT SELECT ON TABLE people TO viewer").unwrap();

    // admin sees everything
    let all = db.query("SHOW TABLES").unwrap();
    assert_eq!(all.num_rows(), 2);

    // viewer only sees granted tables
    let mut viewer = db.session("viewer");
    let visible = viewer.query("SHOW TABLES").unwrap();
    assert_eq!(visible.num_rows(), 1);
    assert_eq!(visible.column(0).get(0), Value::Text("people".into()));
    // row/version summary is present
    assert_eq!(visible.column(2).get(0), Value::Int(5));
}

#[test]
fn describe_profiles_columns_from_stats() {
    let db = db_with_people();
    let b = db.query("DESCRIBE people").unwrap();
    assert_eq!(b.num_rows(), 5);
    // salary column: one NULL, min/max from data
    let salary_row = (0..b.num_rows())
        .find(|&r| b.column(0).get(r) == Value::Text("salary".into()))
        .unwrap();
    assert_eq!(b.column(3).get(salary_row), Value::Int(1)); // nulls
    assert_eq!(b.column(5).get(salary_row), Value::Float(51000.0)); // min
    assert_eq!(b.column(6).get(salary_row), Value::Float(120000.0)); // max
    // text column has no numeric range
    let name_row = (0..b.num_rows())
        .find(|&r| b.column(0).get(r) == Value::Text("name".into()))
        .unwrap();
    assert!(b.column(5).get(name_row).is_null());
    assert_eq!(b.column(4).get(name_row), Value::Int(5)); // distinct names

    // DESCRIBE requires SELECT
    db.execute("CREATE USER nobody").unwrap();
    let mut nobody = db.session("nobody");
    assert!(matches!(
        nobody.execute("DESCRIBE people"),
        Err(SqlError::AccessDenied(_))
    ));
}

#[test]
fn union_and_union_all() {
    let db = db_with_people();
    // UNION ALL keeps duplicates
    let b = db
        .query("SELECT dept FROM people UNION ALL SELECT dept FROM people")
        .unwrap();
    assert_eq!(b.num_rows(), 10);
    // plain UNION dedupes
    let b = db
        .query("SELECT dept FROM people UNION SELECT dept FROM people ORDER BY dept")
        .unwrap();
    assert_eq!(b.num_rows(), 3);
    assert_eq!(b.column(0).get(0), Value::Text("eng".into()));
    // mixed types unify (INT + DOUBLE -> DOUBLE)
    let b = db
        .query("SELECT age FROM people UNION ALL SELECT salary FROM people WHERE salary IS NOT NULL")
        .unwrap();
    assert_eq!(b.num_rows(), 9);
    assert!(matches!(b.column(0).get(0), Value::Float(_) | Value::Int(_)));
    // arity mismatch rejected
    assert!(db
        .query("SELECT age FROM people UNION SELECT age, salary FROM people")
        .is_err());
    // aggregates over a union
    let b = db
        .query(
            "SELECT COUNT(*) FROM (SELECT name FROM people WHERE dept = 'eng' \
             UNION ALL SELECT name FROM people WHERE dept = 'sales') u",
        )
        .unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(4));
}

#[test]
fn stddev_and_variance_aggregates() {
    let db = db_with_people();
    let b = db
        .query("SELECT dept, STDDEV(age), VARIANCE(age) FROM people GROUP BY dept ORDER BY dept")
        .unwrap();
    assert_eq!(b.num_rows(), 3);
    // eng: ages 34, 28 -> mean 31, var 9, stddev 3
    assert_eq!(b.column(1).get(0), Value::Float(3.0));
    assert_eq!(b.column(2).get(0), Value::Float(9.0));
    // global form
    let g = db.query("SELECT STDDEV(salary) FROM people").unwrap();
    assert!(g.column(0).get(0).as_f64().unwrap() > 0.0);
}

#[test]
fn error_messages_are_actionable() {
    let db = db_with_people();
    let msg = |r: Result<flock_sql::RecordBatch, SqlError>| r.unwrap_err().to_string();

    // unknown objects name the object
    assert!(msg(db.query("SELECT * FROM ghosts")).contains("'ghosts'"));
    assert!(msg(db.query("SELECT ghost_col FROM people")).contains("'ghost_col'"));
    assert!(msg(db.query("SELECT NOSUCHFN(age) FROM people")).contains("'NOSUCHFN'"));

    // ambiguity is reported as such
    db.execute("CREATE TABLE people2 (id INT, name VARCHAR)").unwrap();
    db.execute("INSERT INTO people2 VALUES (1, 'x')").unwrap();
    let e = msg(db.query("SELECT id FROM people, people2"));
    assert!(e.contains("ambiguous"), "{e}");

    // aggregates in WHERE are rejected with a clear clause name
    let e = msg(db.query("SELECT * FROM people WHERE COUNT(*) > 1"));
    assert!(e.contains("WHERE"), "{e}");

    // non-grouped columns are called out
    let e = msg(db.query("SELECT name, COUNT(*) FROM people GROUP BY dept"));
    assert!(e.contains("'name'") && e.contains("GROUP BY"), "{e}");

    // bad ordinal in ORDER BY
    let e = msg(db.query("SELECT name FROM people ORDER BY 7"));
    assert!(e.contains("out of range"), "{e}");

    // time-travel to a missing version names the latest
    let e = msg(db.query("SELECT * FROM people VERSION 99"));
    assert!(e.contains("99") && e.contains("latest"), "{e}");
}

#[test]
fn type_errors_surface_at_plan_time() {
    let db = db_with_people();
    // incompatible arithmetic is a planning error, not a runtime panic
    let e = db.query("SELECT name + dept FROM people");
    assert!(matches!(e, Err(SqlError::Plan(_))), "{e:?}");
    // CASE branch type conflicts
    let e = db.query("SELECT CASE WHEN age > 30 THEN 'old' ELSE 1 END FROM people");
    assert!(matches!(e, Err(SqlError::Plan(_))), "{e:?}");
}

#[test]
fn alter_table_add_and_drop_columns() {
    let db = db_with_people();
    db.execute("ALTER TABLE people ADD COLUMN bonus DOUBLE").unwrap();
    // new column reads as NULL and is writable
    let b = db.query("SELECT bonus FROM people").unwrap();
    assert!(b.column(0).get(0).is_null());
    db.execute("UPDATE people SET bonus = salary * 0.1 WHERE dept = 'eng'")
        .unwrap();
    let b = db
        .query("SELECT COUNT(bonus) FROM people")
        .unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(2));

    // drop it; queries referencing it now fail
    db.execute("ALTER TABLE people DROP COLUMN bonus").unwrap();
    assert!(db.query("SELECT bonus FROM people").is_err());

    // but time travel still sees the old schema & data
    let b = db
        .query("SELECT bonus FROM people VERSION 4 WHERE bonus IS NOT NULL")
        .unwrap();
    assert_eq!(b.num_rows(), 2);

    // guard rails
    assert!(db.execute("ALTER TABLE people ADD COLUMN id INT").is_err());
    assert!(db.execute("ALTER TABLE people DROP COLUMN ghost").is_err());
    // audit captured the evolution
    assert!(db
        .audit_log()
        .iter()
        .any(|a| a.action == "ALTER TABLE" && a.detail.contains("bonus")));
}

// ------------------------------------------------------- observability

#[test]
fn explain_analyze_returns_annotated_plan_tree() {
    let db = db_with_people();
    let b = db
        .query("EXPLAIN ANALYZE SELECT dept, AVG(salary) FROM people WHERE age > 25 GROUP BY dept")
        .unwrap();
    let tree: String = (0..b.num_rows())
        .map(|i| match b.column(0).get(i) {
            Value::Text(s) => s + "\n",
            other => panic!("expected text plan line, got {other:?}"),
        })
        .collect();
    // annotated operators with measured row counts and timings
    assert!(tree.contains("HashAggregate"), "{tree}");
    assert!(tree.contains("Filter"), "{tree}");
    assert!(tree.contains("Scan"), "{tree}");
    assert!(tree.contains("time="), "{tree}");
    // the scan saw all 5 people
    assert!(tree.contains("Scan [rows=5] (rows=5"), "{tree}");
    // plain EXPLAIN stays a static tree without measurements
    let b = db
        .query("EXPLAIN SELECT dept FROM people")
        .unwrap();
    let static_tree: String = (0..b.num_rows())
        .map(|i| match b.column(0).get(i) {
            Value::Text(s) => s + "\n",
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(!static_tree.contains("time="), "{static_tree}");
}

#[test]
fn flock_metrics_table_reports_cumulative_counters() {
    let db = db_with_people();
    db.query("SELECT * FROM people").unwrap();
    db.query("SELECT COUNT(*) FROM people").unwrap();
    let b = db
        .query("SELECT value FROM flock_metrics WHERE metric = 'queries'")
        .unwrap();
    // two queries ran before this one
    assert_eq!(b.column(0).get(0), Value::Int(2));
    let b = db
        .query("SELECT value FROM flock_metrics WHERE metric = 'rows_scanned'")
        .unwrap();
    let Value::Int(scanned) = b.column(0).get(0) else {
        panic!()
    };
    // 5 rows per people scan, the metrics scans themselves excluded at read time
    assert!(scanned >= 10, "{scanned}");

    // a real user table of the same name shadows the virtual one
    db.execute("CREATE TABLE flock_metrics (metric VARCHAR, value INT)")
        .unwrap();
    db.execute("INSERT INTO flock_metrics VALUES ('mine', 42)")
        .unwrap();
    let b = db.query("SELECT value FROM flock_metrics").unwrap();
    assert_eq!(b.num_rows(), 1);
    assert_eq!(b.column(0).get(0), Value::Int(42));
}

#[test]
fn flock_metrics_is_readable_by_unprivileged_users() {
    let db = db_with_people();
    db.execute("CREATE USER intern").unwrap();
    let mut session = db.session("intern");
    // no grants on people...
    assert!(session.query("SELECT * FROM people").is_err());
    // ...but the virtual metrics table is world-readable
    let b = session.query("SELECT metric FROM flock_metrics").unwrap();
    assert!(b.num_rows() >= 6);
}

#[test]
fn query_log_records_runtime_metrics() {
    let db = db_with_people();
    db.query("SELECT * FROM people WHERE age > 30").unwrap();
    let log = db.query_log();
    let q = log
        .iter()
        .rfind(|e| e.sql.contains("age > 30"))
        .expect("query logged");
    assert_eq!(q.rows_scanned, 5);
    assert_eq!(q.rows_returned, 3);
    // insert entries carry no runtime numbers
    let ins = log
        .iter()
        .find(|e| e.sql.starts_with("INSERT"))
        .expect("insert logged");
    assert_eq!(ins.rows_scanned, 0);
    assert_eq!(ins.rows_returned, 0);
}

#[test]
fn last_query_metrics_expose_operator_breakdown() {
    let db = db_with_people();
    db.query("SELECT dept, COUNT(*) FROM people GROUP BY dept ORDER BY dept")
        .unwrap();
    let snap = db.last_query_metrics().expect("metrics recorded");
    let ops: Vec<&str> = snap.walk().iter().map(|(_, n)| n.name.as_str()).collect();
    assert!(ops.contains(&"Sort"), "{ops:?}");
    assert!(ops.contains(&"HashAggregate"), "{ops:?}");
    assert!(ops.contains(&"Scan"), "{ops:?}");
    assert_eq!(snap.rows_scanned(), 5);
    assert_eq!(snap.rows_out, 3); // eng, mgmt, sales
}
