//! Direct tests of the relational optimizer rules: each rule's plan
//! transformation, and end-to-end equivalence with the optimizer off.

use flock_sql::ast::Statement;
use flock_sql::optimizer::{optimize, OptimizerConfig};
use flock_sql::plan::{plan_query, LogicalPlan, PlanContext};
use flock_sql::udf::NoInference;
use flock_sql::{Database, Value};

fn setup() -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE orders (id INT, cust INT, total DOUBLE, status VARCHAR, d DATE)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO orders VALUES \
         (1, 10, 50.0, 'open', '2024-01-01'), (2, 11, 75.0, 'done', '2024-01-02'), \
         (3, 10, 20.0, 'done', '2024-02-01'), (4, 12, 95.0, 'open', '2024-02-10'), \
         (5, 11, 60.0, 'open', '2024-03-05')",
    )
    .unwrap();
    db.execute("CREATE TABLE custs (cid INT, name VARCHAR, tier VARCHAR)").unwrap();
    db.execute(
        "INSERT INTO custs VALUES (10, 'acme', 'gold'), (11, 'beta', 'silver'), \
         (12, 'corp', 'gold')",
    )
    .unwrap();
    db
}

fn plan_of(db: &Database, sql: &str, config: &OptimizerConfig) -> LogicalPlan {
    let Statement::Query(q) = flock_sql::parser::parse_statement(sql).unwrap() else {
        panic!("not a query")
    };
    let catalog = db.catalog();
    let ctx = PlanContext::new(&catalog, &NoInference);
    let plan = plan_query(&q, &ctx).unwrap();
    optimize(plan, config).unwrap()
}

fn explain(db: &Database, sql: &str, config: &OptimizerConfig) -> String {
    plan_of(db, sql, config).explain()
}

#[test]
fn predicate_pushdown_moves_filters_below_joins() {
    let db = setup();
    let cfg = OptimizerConfig::default();
    let text = explain(
        &db,
        "SELECT o.id, c.name FROM orders o JOIN custs c ON o.cust = c.cid \
         WHERE o.total > 50 AND c.tier = 'gold'",
        &cfg,
    );
    // both single-side predicates sit below the join (indented deeper)
    let join_line = text.lines().position(|l| l.contains("Join")).unwrap();
    let total_line = text.lines().position(|l| l.contains("total")).unwrap();
    let tier_line = text.lines().position(|l| l.contains("tier")).unwrap();
    assert!(total_line > join_line, "{text}");
    assert!(tier_line > join_line, "{text}");
}

#[test]
fn implicit_join_predicates_become_hash_keys() {
    let db = setup();
    let cfg = OptimizerConfig::default();
    let text = explain(
        &db,
        "SELECT o.id FROM orders o, custs c WHERE o.cust = c.cid AND o.total > 10",
        &cfg,
    );
    assert!(text.contains("on=[cust = cid]"), "equi key extracted: {text}");
}

#[test]
fn projection_pruning_narrows_scans() {
    let db = setup();
    let cfg = OptimizerConfig::default();
    let text = explain(&db, "SELECT id FROM orders WHERE total > 10", &cfg);
    assert!(text.contains("projection="), "{text}");
    assert!(!text.contains("status"), "unused column still present: {text}");
}

#[test]
fn constant_folding_simplifies_predicates() {
    let db = setup();
    let cfg = OptimizerConfig::default();
    let text = explain(&db, "SELECT id FROM orders WHERE 1 + 1 = 2 AND total > 10 * 5", &cfg);
    assert!(!text.contains("1 + 1"), "{text}");
    assert!(text.contains("50"), "folded literal expected: {text}");
}

#[test]
fn each_rule_is_individually_sound() {
    let db = setup();
    let queries = [
        "SELECT o.id, c.name, o.total FROM orders o JOIN custs c ON o.cust = c.cid \
         WHERE o.total > 30 AND c.tier = 'gold' ORDER BY o.id",
        "SELECT status, COUNT(*), SUM(total) FROM orders GROUP BY status ORDER BY status",
        "SELECT c.tier, AVG(o.total) FROM orders o, custs c \
         WHERE o.cust = c.cid GROUP BY c.tier ORDER BY c.tier",
        "SELECT DISTINCT status FROM orders ORDER BY status",
        "SELECT id, total * 2 FROM orders WHERE status = 'open' ORDER BY total DESC LIMIT 2",
        "SELECT o.id FROM orders o LEFT JOIN custs c ON o.cust = c.cid AND c.tier = 'gold' \
         ORDER BY o.id",
    ];
    let configs = [
        OptimizerConfig::default(),
        OptimizerConfig::disabled(),
        OptimizerConfig {
            predicate_pushdown: false,
            ..OptimizerConfig::default()
        },
        OptimizerConfig {
            projection_pruning: false,
            ..OptimizerConfig::default()
        },
        OptimizerConfig {
            join_extraction: false,
            ..OptimizerConfig::default()
        },
        OptimizerConfig {
            constant_folding: false,
            ..OptimizerConfig::default()
        },
    ];
    for q in queries {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for cfg in &configs {
            db.set_optimizer_config(*cfg);
            let batch = db.query(q).unwrap();
            let rows: Vec<Vec<Value>> =
                (0..batch.num_rows()).map(|r| batch.row(r)).collect();
            match &reference {
                None => reference = Some(rows),
                Some(expected) => assert_eq!(expected, &rows, "query {q} with {cfg:?}"),
            }
        }
        db.set_optimizer_config(OptimizerConfig::default());
    }
}

#[test]
fn left_join_filters_stay_above_null_side() {
    let db = setup();
    // a filter on the right side of a LEFT JOIN must not be pushed below
    // (it would remove null-extension candidates)
    db.execute("INSERT INTO orders VALUES (6, 99, 10.0, 'open', '2024-04-01')").unwrap();
    for cfg in [OptimizerConfig::default(), OptimizerConfig::disabled()] {
        db.set_optimizer_config(cfg);
        let b = db
            .query(
                "SELECT o.id, c.name FROM orders o LEFT JOIN custs c ON o.cust = c.cid \
                 WHERE c.name IS NULL",
            )
            .unwrap();
        assert_eq!(b.num_rows(), 1, "{cfg:?}");
        assert_eq!(b.column(0).get(0), Value::Int(6));
    }
}

#[test]
fn pruning_keeps_count_star_row_counts() {
    let db = setup();
    for cfg in [OptimizerConfig::default(), OptimizerConfig::disabled()] {
        db.set_optimizer_config(cfg);
        let b = db.query("SELECT COUNT(*) FROM orders").unwrap();
        assert_eq!(b.column(0).get(0), Value::Int(5), "{cfg:?}");
    }
}

#[test]
fn pushdown_through_projection_substitutes_exprs() {
    let db = setup();
    let cfg = OptimizerConfig::default();
    // the filter references a computed output; pushing substitutes total*2
    let text = explain(
        &db,
        "SELECT * FROM (SELECT id, total * 2 AS dbl FROM orders) t WHERE dbl > 100",
        &cfg,
    );
    let filter_line = text.lines().position(|l| l.contains("Filter")).unwrap();
    let scan_line = text.lines().position(|l| l.contains("Scan")).unwrap();
    assert!(filter_line < scan_line, "{text}");
    assert!(text.contains("total * 2") || text.contains("(total * 2)"), "{text}");
    // and the result is right
    let b = db
        .query("SELECT * FROM (SELECT id, total * 2 AS dbl FROM orders) t WHERE dbl > 100")
        .unwrap();
    assert_eq!(b.num_rows(), 3); // 150, 190, 120
}
