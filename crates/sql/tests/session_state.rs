//! Session-state hardening for reused connections (the server keeps one
//! engine `Session` alive per TCP connection, so any state a failed
//! statement leaves behind poisons every later statement on that wire).
//!
//! Two surfaces are pinned down here:
//!
//! * after a `Cancelled` / `Timeout` / `Budget` error — including inside
//!   an explicit transaction — the *next* statement on the same session
//!   must run normally, with fresh metrics;
//! * `SET statement_timeout` / `SET predict_strategy` with malformed
//!   values must fail with a typed error, never silently no-op, panic, or
//!   clobber the previously-set value.

use flock_sql::ast::PredictStrategy;
use flock_sql::column::ColumnVector;
use flock_sql::exec::{CancelToken, ExecOptions};
use flock_sql::types::DataType;
use flock_sql::udf::InferenceProvider;
use flock_sql::{Database, Result, SqlError};
use std::sync::Arc;
use std::time::Duration;

/// Provider whose predictions never finish on their own: only a cancel
/// flag or a statement deadline ends the loop.
struct BlockUntilStopped;

impl InferenceProvider for BlockUntilStopped {
    fn output_type(&self, _model: &str) -> Result<DataType> {
        Ok(DataType::Float)
    }
    fn input_arity(&self, _model: &str) -> Result<usize> {
        Ok(1)
    }
    fn predict(
        &self,
        _model: &str,
        inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
    ) -> Result<ColumnVector> {
        Ok(ColumnVector::from_f64(vec![0.0; inputs[0].len()]))
    }
    fn predict_cancellable(
        &self,
        _model: &str,
        _inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
        cancel: &CancelToken,
    ) -> Result<ColumnVector> {
        loop {
            cancel.check()?;
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn blocking_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (x DOUBLE)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0), (2.0), (3.0)").unwrap();
    db.set_inference_provider(Arc::new(BlockUntilStopped));
    db
}

fn metric(db: &Database, name: &str) -> u64 {
    db.engine_metrics()
        .rows()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

#[test]
fn statement_after_timeout_succeeds_with_fresh_metrics() {
    let db = blocking_db();
    let mut s = db.session("admin");

    s.execute("SET statement_timeout = 30").unwrap();
    let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Timeout(_)), "got {err:?}");
    assert_eq!(metric(&db, "queries_timed_out"), 1);

    // The very next statement on the SAME session must succeed: the
    // deadline is per-statement, not sticky, and no transaction or
    // admission slot may linger from the unwound statement.
    let batch = s.query("SELECT x FROM t").unwrap();
    assert_eq!(batch.num_rows(), 3);
    assert!(!s.in_transaction(), "timeout must not leave a transaction open");
    assert_eq!(db.admission().active(), 0, "admission slot leaked");

    // Metrics describe the *new* statement, not the aborted one: the
    // successful scan read all 3 rows.
    let snap = s.last_query_metrics().expect("metrics for the new statement");
    assert_eq!(snap.rows_scanned(), 3);
    assert_eq!(metric(&db, "queries_timed_out"), 1, "no double-count");
}

#[test]
fn statement_after_sticky_cancel_succeeds() {
    let db = blocking_db();
    let mut s = db.session("admin");
    let handle = s.cancel_handle();

    // Cancel with NO statement running: the flag is now sticky-set. The
    // next statement must still run — the engine re-arms the flag at
    // statement start rather than inheriting a stale cancellation.
    handle.cancel();
    assert!(handle.is_cancelled());
    let batch = s.query("SELECT x FROM t").unwrap();
    assert_eq!(batch.num_rows(), 3);

    // And a real mid-flight cancellation doesn't poison the session
    // either: cancel in a loop until the statement aborts, stop, then the
    // session keeps working.
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session("admin");
            tx.send(s.cancel_handle()).unwrap();
            let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
            assert!(matches!(err, SqlError::Cancelled(_)), "got {err:?}");
            let batch = s.query("SELECT x FROM t WHERE x < 2.5").unwrap();
            assert_eq!(batch.num_rows(), 2);
        })
    };
    let handle = rx.recv().unwrap();
    let started = std::time::Instant::now();
    while !worker.is_finished() {
        assert!(started.elapsed() < Duration::from_secs(30), "cancel never landed");
        handle.cancel();
        std::thread::sleep(Duration::from_millis(1));
    }
    worker.join().unwrap();
    assert_eq!(db.admission().active(), 0);
    assert!(metric(&db, "queries_cancelled") >= 1);
}

#[test]
fn timeout_inside_explicit_transaction_aborts_it_cleanly() {
    let db = blocking_db();
    let mut s = db.session("admin");
    s.execute("SET statement_timeout = 30").unwrap();

    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (9.0)").unwrap();
    let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Timeout(_)), "got {err:?}");

    // The failed statement aborted the transaction; the session is back
    // in autocommit and the INSERT rolled back.
    assert!(!s.in_transaction(), "aborted transaction left open");
    let batch = s.query("SELECT x FROM t").unwrap();
    assert_eq!(batch.num_rows(), 3, "aborted transaction leaked a write");

    // Autocommit works again on the same session.
    s.execute("INSERT INTO t VALUES (4.0)").unwrap();
    assert_eq!(s.query("SELECT x FROM t").unwrap().num_rows(), 4);
}

#[test]
fn statement_after_budget_abort_succeeds() {
    let db = Database::new();
    db.execute("CREATE TABLE big (n INT)").unwrap();
    for chunk in 0..4 {
        let values: Vec<String> =
            (0..256).map(|i| format!("({})", chunk * 256 + i)).collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(", "))).unwrap();
    }

    let mut opts = db.exec_options();
    opts.max_rows_budget = 100; // far below the 1024-row scan
    db.set_exec_options(opts);
    let mut s = db.session("admin");
    let err = s.query("SELECT n FROM big").unwrap_err();
    assert!(matches!(err, SqlError::Budget(_)), "got {err:?}");
    assert_eq!(metric(&db, "budget_rejected"), 1);
    assert_eq!(db.admission().active(), 0);

    // Restore unlimited: the SAME session runs the same scan fine — the
    // budget abort left nothing sticky behind.
    db.set_exec_options(ExecOptions::default());
    assert_eq!(s.query("SELECT n FROM big").unwrap().num_rows(), 1024);
    assert_eq!(metric(&db, "budget_rejected"), 1, "no double-count");
}

// ---------------------------------------------------------------------------
// SET validation
// ---------------------------------------------------------------------------

#[test]
fn malformed_set_values_fail_typed_and_preserve_prior_value() {
    let db = blocking_db();
    let mut s = db.session("admin");

    // A valid baseline both variables must keep through the failures.
    s.execute("SET statement_timeout = 30").unwrap();
    s.execute("SET predict_strategy = 'vectorized'").unwrap();

    struct Case {
        sql: &'static str,
        ok: bool,
    }
    let cases = [
        // statement_timeout: integer milliseconds or DEFAULT.
        Case { sql: "SET statement_timeout = DEFAULT", ok: true },
        Case { sql: "SET statement_timeout = 0", ok: true },
        Case { sql: "SET statement_timeout = 15 + 15", ok: true }, // folds
        Case { sql: "SET statement_timeout = -1", ok: false },
        Case { sql: "SET statement_timeout = -9223372036854775809", ok: false },
        // i64 overflow lexes as a float literal -> type error, not wrap.
        Case { sql: "SET statement_timeout = 99999999999999999999999", ok: false },
        Case { sql: "SET statement_timeout = 2.5", ok: false },
        Case { sql: "SET statement_timeout = 'soon'", ok: false },
        Case { sql: "SET statement_timeout = TRUE", ok: false },
        Case { sql: "SET statement_timeout = banana", ok: false },
        Case { sql: "SET statement_timeout = NULL", ok: false },
        // predict_strategy: known string literals or DEFAULT.
        Case { sql: "SET predict_strategy = DEFAULT", ok: true },
        Case { sql: "SET predict_strategy = 'row'", ok: true },
        Case { sql: "SET predict_strategy = 'batched'", ok: true },
        Case { sql: "SET predict_strategy = 'PARALLEL'", ok: true }, // case-folded
        Case { sql: "SET predict_strategy = 'warp'", ok: false },
        Case { sql: "SET predict_strategy = 5", ok: false },
        Case { sql: "SET predict_strategy = 1.5", ok: false },
        Case { sql: "SET predict_strategy = FALSE", ok: false },
        Case { sql: "SET predict_strategy = vectorized", ok: false }, // unquoted
        // Unknown variables are typed errors, not silent no-ops.
        Case { sql: "SET warp_speed = 9", ok: false },
    ];
    for case in cases {
        // Re-arm the baseline before every case so a failure case can be
        // checked for "prior value preserved" behaviorally below.
        s.execute("SET statement_timeout = 30").unwrap();
        s.execute("SET predict_strategy = 'vectorized'").unwrap();
        let result = s.execute(case.sql);
        match (case.ok, &result) {
            (true, Ok(_)) => {}
            (false, Err(SqlError::Plan(_))) => {}
            (false, Err(SqlError::Parse(_))) => {}
            (expected_ok, got) => panic!(
                "{}: expected {} got {:?}",
                case.sql,
                if expected_ok { "Ok" } else { "typed Plan/Parse error" },
                got
            ),
        }
        // Whatever happened, the session is not poisoned.
        s.query("SELECT x FROM t WHERE x = 1.0").unwrap();
    }

    // Behavioral proof that a failed SET preserved the previous timeout:
    // the 30ms deadline set before the garbage SET still fires.
    s.execute("SET statement_timeout = 30").unwrap();
    let _ = s.execute("SET statement_timeout = 'garbage'").unwrap_err();
    let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
    assert!(
        matches!(err, SqlError::Timeout(_)),
        "prior statement_timeout lost after failed SET: {err:?}"
    );

    // And DEFAULT really clears it: with no deadline the statement now
    // runs until cancelled instead of timing out.
    s.execute("SET statement_timeout = DEFAULT").unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session("admin");
            s.execute("SET statement_timeout = DEFAULT").unwrap();
            tx.send(s.cancel_handle()).unwrap();
            let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
            assert!(matches!(err, SqlError::Cancelled(_)), "got {err:?}");
        })
    };
    let handle = rx.recv().unwrap();
    std::thread::sleep(Duration::from_millis(100)); // would have timed out at 30ms
    let started = std::time::Instant::now();
    while !worker.is_finished() {
        assert!(started.elapsed() < Duration::from_secs(30), "cancel never landed");
        handle.cancel();
        std::thread::sleep(Duration::from_millis(1));
    }
    worker.join().unwrap();
}

#[test]
fn set_statement_timeout_zero_disables_engine_default() {
    let db = blocking_db();
    // Engine-wide default would kill the statement quickly...
    let mut opts = db.exec_options();
    opts.statement_timeout_ms = 30;
    db.set_exec_options(opts);

    // ...but an explicit session-level 0 means "off for this session".
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session("admin");
            s.execute("SET statement_timeout = 0").unwrap();
            tx.send(s.cancel_handle()).unwrap();
            let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
            // Cancelled, NOT Timeout: the 30ms engine default was shadowed.
            assert!(matches!(err, SqlError::Cancelled(_)), "got {err:?}");
        })
    };
    let handle = rx.recv().unwrap();
    std::thread::sleep(Duration::from_millis(120));
    let started = std::time::Instant::now();
    while !worker.is_finished() {
        assert!(started.elapsed() < Duration::from_secs(30), "cancel never landed");
        handle.cancel();
        std::thread::sleep(Duration::from_millis(1));
    }
    worker.join().unwrap();

    // Meanwhile a fresh session (no SET) does inherit the engine default.
    let mut s = db.session("admin");
    let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Timeout(_)), "got {err:?}");
}

#[test]
fn wire_error_codes_for_session_failures() {
    // The server-facing contract: each failure class keeps its stable
    // code and only admission is retryable (checked end-to-end here, not
    // just in the unit tests next to the enum).
    let db = blocking_db();
    let mut s = db.session("admin");
    s.execute("SET statement_timeout = 30").unwrap();
    let e = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
    let wire = e.to_wire();
    assert_eq!(wire.code, "timeout");
    assert!(!wire.retryable);

    let mut opts = db.exec_options();
    opts.max_concurrent_queries = 0;
    db.set_exec_options(opts);
    let e = SqlError::Admission("db full".into()).to_wire();
    assert!(e.retryable);
    assert_eq!(e.to_sql_error().code(), "admission");
}
