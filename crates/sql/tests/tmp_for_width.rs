use flock_sql::parts::{decode_part, encode_part};
use flock_sql::batch::RecordBatch;
use flock_sql::column::ColumnVector;
use flock_sql::schema::Schema;
use flock_sql::types::DataType;
use std::sync::Arc;

#[test]
fn wide_for_roundtrip() {
    // distinct values spanning ~2^61 so FOR with width 61-63 is chosen
    let vals: Vec<i64> = (0..1000i64).map(|i| i * 3_000_000_000_000_000).collect();
    let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
    let b = RecordBatch::new(schema, vec![ColumnVector::from_i64(vals.clone())]).unwrap();
    let (file, _) = encode_part(1, 0, &b);
    let p = decode_part(&file, None).unwrap();
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(p.batch.column(0).get(i), flock_sql::types::Value::Int(*v), "row {i}");
    }
}
