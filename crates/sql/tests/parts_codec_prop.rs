//! Seeded property sweep over the part codec: every encoding path
//! (INT_RAW / INT_RLE / INT_FOR at widths 0–63, BOOL_BITMAP, FLOAT_RAW,
//! TEXT_RAW / TEXT_DICT at the 256-entry cliff, DATE_RAW), with empty,
//! all-null, and mixed-validity columns, must round-trip **byte-exactly**:
//! decoded values equal the originals (NULLs normalized), and re-encoding
//! the decoded batch reproduces the original part image bit-for-bit
//! (encoding is a pure function of logical content).
//!
//! Deterministic via flock-rng; seed count defaults to 256 (the CI gate)
//! and is overridable with `FLOCK_CODEC_SEEDS`.

use flock_rng::{rngs::StdRng, Rng, SeedableRng};
use flock_sql::batch::RecordBatch;
use flock_sql::column::ColumnVector;
use flock_sql::parts::{decode_part, encode_part, validate_part_image};
use flock_sql::schema::{ColumnDef, Schema};
use flock_sql::types::{DataType, Value};
use std::sync::Arc;

fn seeds() -> u64 {
    std::env::var("FLOCK_CODEC_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Sprinkle NULLs over a value vector: `mode` 0 = none, 1 = all, else ~1/4.
fn with_nulls(rng: &mut StdRng, vals: Vec<Value>, mode: u8) -> Vec<Value> {
    match mode {
        0 => vals,
        1 => vals.iter().map(|_| Value::Null).collect(),
        _ => vals
            .into_iter()
            .map(|v| if rng.gen_range(0..4u32) == 0 { Value::Null } else { v })
            .collect(),
    }
}

/// Ints engineered for the FOR path at an exact bit width: random base
/// (clamped so base + span cannot overflow), deltas filling `width` bits.
fn for_ints(rng: &mut StdRng, n: usize, width: u32) -> Vec<Value> {
    let span: u64 = if width == 0 { 0 } else { ((1u128 << width) - 1) as u64 };
    let base: i64 = if span >= i64::MAX as u64 {
        i64::MIN
    } else {
        let hi = i64::MAX - span as i64;
        rng.gen_range(i64::MIN..hi)
    };
    (0..n)
        .map(|i| {
            let d = if span == 0 {
                0
            } else if i == 0 {
                span // pin the top so the chosen width is exactly `width`
            } else {
                rng.gen_range(0..=span)
            };
            Value::Int((base as i128 + d as i128) as i64)
        })
        .collect()
}

/// Ints engineered for RLE: few distinct values, long runs.
fn rle_ints(rng: &mut StdRng, n: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = rng.gen_range(-5i64..5);
        let run = rng.gen_range(1usize..64).min(n - out.len());
        out.extend(std::iter::repeat_n(Value::Int(v), run));
    }
    out
}

/// Text at the dictionary cliff: exactly `distinct` distinct strings.
/// 255/256 stay on the dict path; 257 must fall back to RAW.
fn cliff_text(rng: &mut StdRng, n: usize, distinct: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            let k = if i < distinct { i } else { rng.gen_range(0..distinct) };
            Value::Text(format!("s{k:04}"))
        })
        .collect()
}

fn random_batch(rng: &mut StdRng, seed: u64) -> RecordBatch {
    // Row count: occasionally empty, mostly a few hundred (big enough for
    // dict's 257-distinct fallback and multi-byte FOR accumulator states).
    let n = match seed % 13 {
        0 => 0,
        1 => 1,
        _ => rng.gen_range(260..400usize),
    };
    let width = (seed % 64) as u32; // sweep FOR widths 0..=63 across seeds
    let distinct = [255usize, 256, 257][(seed % 3) as usize];
    let null_mode = (seed % 5) as u8; // includes all-null (mode 1) columns
    let mut cols: Vec<(&str, DataType, Vec<Value>)> = Vec::new();
    let for_vals = for_ints(rng, n, width);
    cols.push(("i_for", DataType::Int, with_nulls(rng, for_vals, null_mode % 3)));
    let rle_vals = rle_ints(rng, n);
    cols.push(("i_rle", DataType::Int, with_nulls(rng, rle_vals, null_mode)));
    // Full-span ints: FOR needs 64 bits, so RAW must be chosen.
    let raw_vals: Vec<Value> = (0..n)
        .map(|i| {
            if i == 0 {
                Value::Int(i64::MIN)
            } else if i == 1 {
                Value::Int(i64::MAX)
            } else {
                Value::Int(rng.gen_range(i64::MIN..i64::MAX))
            }
        })
        .collect();
    cols.push(("i_raw", DataType::Int, with_nulls(rng, raw_vals, null_mode)));
    let text_vals = cliff_text(rng, n, distinct);
    cols.push(("t", DataType::Text, with_nulls(rng, text_vals, null_mode)));
    let bool_vals: Vec<Value> = (0..n).map(|_| Value::Bool(rng.gen_range(0..2u32) == 1)).collect();
    cols.push(("b", DataType::Bool, with_nulls(rng, bool_vals, null_mode)));
    let float_vals: Vec<Value> = (0..n).map(|_| Value::Float(rng.gen_range(-1e12..1e12))).collect();
    cols.push(("f", DataType::Float, with_nulls(rng, float_vals, null_mode)));
    let date_vals: Vec<Value> =
        (0..n).map(|_| Value::Date(rng.gen_range(-100_000i64..100_000) as i32)).collect();
    cols.push(("d", DataType::Date, with_nulls(rng, date_vals, null_mode)));
    let schema = Schema::new(cols.iter().map(|(nm, t, _)| ColumnDef::new(*nm, *t)).collect());
    let columns = cols
        .iter()
        .map(|(_, t, vs)| ColumnVector::from_values(*t, vs).unwrap())
        .collect();
    RecordBatch::new(Arc::new(schema), columns).unwrap()
}

fn assert_logically_equal(a: &RecordBatch, b: &RecordBatch, seed: u64) {
    assert_eq!(a.num_rows(), b.num_rows(), "seed {seed}");
    assert_eq!(a.num_columns(), b.num_columns(), "seed {seed}");
    for c in 0..a.num_columns() {
        for r in 0..a.num_rows() {
            let (x, y) = (a.column(c).get(r), b.column(c).get(r));
            // Value's PartialEq is SQL-flavored (NULL != NULL).
            assert!(
                (x.is_null() && y.is_null()) || x == y,
                "seed {seed} col {c} row {r}: {x:?} vs {y:?}"
            );
        }
    }
}

#[test]
fn codec_roundtrip_sweep() {
    for seed in 0..seeds() {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = random_batch(&mut rng, seed);
        let (file, meta) = encode_part(seed, (seed % 4) as u8, &batch);
        assert!(validate_part_image(&file), "seed {seed}");
        assert_eq!(meta.rows as usize, batch.num_rows(), "seed {seed}");
        assert_eq!(meta.zones.len(), batch.num_columns(), "seed {seed}");
        let p = decode_part(&file, None).unwrap_or_else(|_| panic!("seed {seed}: decode failed"));
        assert_logically_equal(&batch, &p.batch, seed);
        // Byte-exact: re-encoding the decoded batch reproduces the image.
        let (file2, meta2) = encode_part(seed, (seed % 4) as u8, &p.batch);
        assert_eq!(file, file2, "seed {seed}: re-encode not byte-identical");
        assert_eq!(meta, meta2, "seed {seed}");
        // Projected read of a random column subset matches the full decode.
        if batch.num_columns() > 0 {
            let proj: Vec<usize> = (0..batch.num_columns())
                .filter(|_| rng.gen_range(0..2u32) == 1)
                .collect();
            if !proj.is_empty() {
                let pp = decode_part(&file, Some(&proj)).unwrap();
                for (k, &c) in proj.iter().enumerate() {
                    for r in 0..batch.num_rows() {
                        let (x, y) = (batch.column(c).get(r), pp.batch.column(k).get(r));
                        assert!(
                            (x.is_null() && y.is_null()) || x == y,
                            "seed {seed} projected col {c} row {r}"
                        );
                    }
                }
            }
        }
    }
}
